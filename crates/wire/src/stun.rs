//! STUN and TURN wire format (RFC 3489, 5389, 8489; TURN: RFC 5766, 8656).
//!
//! TURN reuses the STUN message format, so this module covers both, plus the
//! TURN *ChannelData* framing. The view accepts any 16-bit message type and
//! any attribute type: the compliance layer, not the parser, decides whether
//! a type is defined. Structural constraints that *are* enforced here:
//!
//! * the two most significant bits of the message type must be zero
//!   (RFC 5389 §6 — this is what distinguishes STUN from RTP/RTCP on the
//!   same socket),
//! * the message length field must be present and consistent with TLV
//!   attribute walking,
//! * attribute values are padded to 4-byte boundaries (padding bytes are not
//!   part of the value).
//!
//! RFC 3489 ("classic" STUN) lacks the magic cookie; [`Message::has_magic_cookie`]
//! distinguishes the two generations, and [`Message::transaction_id`] returns
//! the 12-byte modern transaction ID while [`Message::legacy_transaction_id`]
//! returns the full 16 bytes a classic endpoint would use.

use crate::{field, Result, WireError, WireProtocol};

/// Protocol tag for every error this module raises.
const P: WireProtocol = WireProtocol::Stun;

/// The STUN magic cookie introduced by RFC 5389 §6.
pub const MAGIC_COOKIE: u32 = 0x2112_A442;

/// The XOR mask applied to the CRC-32 in FINGERPRINT (RFC 8489 §14.7,
/// ASCII "STUN").
pub const FINGERPRINT_XOR: u32 = 0x5354_554E;

/// CRC-32 (IEEE 802.3, reflected) — used by the FINGERPRINT attribute.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Length of the fixed STUN message header.
pub const HEADER_LEN: usize = 20;

/// Message class, encoded in bits C1/C0 of the message type (RFC 5389 §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// 0b00 — request.
    Request,
    /// 0b01 — indication.
    Indication,
    /// 0b10 — success response.
    SuccessResponse,
    /// 0b11 — error response.
    ErrorResponse,
}

impl MessageClass {
    /// Decode the class bits of a raw 16-bit message type.
    pub fn of(message_type: u16) -> MessageClass {
        match ((message_type >> 7) & 0b10) | ((message_type >> 4) & 0b01) {
            0b00 => MessageClass::Request,
            0b01 => MessageClass::Indication,
            0b10 => MessageClass::SuccessResponse,
            _ => MessageClass::ErrorResponse,
        }
    }

    /// The class bits as they appear OR-ed into a message type.
    pub fn bits(self) -> u16 {
        match self {
            MessageClass::Request => 0x0000,
            MessageClass::Indication => 0x0010,
            MessageClass::SuccessResponse => 0x0100,
            MessageClass::ErrorResponse => 0x0110,
        }
    }
}

/// Extract the 12-bit method from a raw message type (RFC 5389 §6).
pub fn method_of(message_type: u16) -> u16 {
    (message_type & 0x000F) | ((message_type & 0x00E0) >> 1) | ((message_type & 0x3E00) >> 2)
}

/// Compose a message type from a method and class.
pub fn compose_type(method: u16, class: MessageClass) -> u16 {
    let m = ((method & 0x0F80) << 2) | ((method & 0x0070) << 1) | (method & 0x000F);
    m | class.bits()
}

/// Well-known STUN/TURN message types, as raw 16-bit type values.
///
/// The inventory mirrors the observed vocabulary in the paper's Table 4 plus
/// the standard request/response families those types belong to.
pub mod msg_type {
    /// Binding Request (RFC 8489).
    pub const BINDING_REQUEST: u16 = 0x0001;
    /// Binding Indication (RFC 8489).
    pub const BINDING_INDICATION: u16 = 0x0011;
    /// Binding Success Response.
    pub const BINDING_SUCCESS: u16 = 0x0101;
    /// Binding Error Response.
    pub const BINDING_ERROR: u16 = 0x0111;
    /// Shared Secret Request (RFC 3489, deprecated by RFC 5389).
    pub const SHARED_SECRET_REQUEST: u16 = 0x0002;
    /// Shared Secret Success Response (RFC 3489).
    pub const SHARED_SECRET_SUCCESS: u16 = 0x0102;
    /// Shared Secret Error Response (RFC 3489).
    pub const SHARED_SECRET_ERROR: u16 = 0x0112;
    /// TURN Allocate Request (RFC 8656).
    pub const ALLOCATE_REQUEST: u16 = 0x0003;
    /// TURN Allocate Success Response.
    pub const ALLOCATE_SUCCESS: u16 = 0x0103;
    /// TURN Allocate Error Response.
    pub const ALLOCATE_ERROR: u16 = 0x0113;
    /// TURN Refresh Request.
    pub const REFRESH_REQUEST: u16 = 0x0004;
    /// TURN Refresh Success Response.
    pub const REFRESH_SUCCESS: u16 = 0x0104;
    /// TURN Refresh Error Response.
    pub const REFRESH_ERROR: u16 = 0x0114;
    /// TURN Send Indication.
    pub const SEND_INDICATION: u16 = 0x0016;
    /// TURN Data Indication.
    pub const DATA_INDICATION: u16 = 0x0017;
    /// TURN CreatePermission Request.
    pub const CREATE_PERMISSION_REQUEST: u16 = 0x0008;
    /// TURN CreatePermission Success Response.
    pub const CREATE_PERMISSION_SUCCESS: u16 = 0x0108;
    /// TURN CreatePermission Error Response.
    pub const CREATE_PERMISSION_ERROR: u16 = 0x0118;
    /// TURN ChannelBind Request.
    pub const CHANNEL_BIND_REQUEST: u16 = 0x0009;
    /// TURN ChannelBind Success Response.
    pub const CHANNEL_BIND_SUCCESS: u16 = 0x0109;
    /// TURN ChannelBind Error Response.
    pub const CHANNEL_BIND_ERROR: u16 = 0x0119;
    /// GOOG-PING Request (libwebrtc extension, publicly documented; method 0x080).
    pub const GOOG_PING_REQUEST: u16 = 0x0200;
    /// GOOG-PING Success Response (libwebrtc extension).
    pub const GOOG_PING_SUCCESS: u16 = 0x0300;
}

/// Well-known STUN/TURN attribute types.
pub mod attr {
    /// MAPPED-ADDRESS (RFC 8489).
    pub const MAPPED_ADDRESS: u16 = 0x0001;
    /// RESPONSE-ADDRESS (RFC 3489, deprecated).
    pub const RESPONSE_ADDRESS: u16 = 0x0002;
    /// CHANGE-REQUEST (RFC 3489 / 5780).
    pub const CHANGE_REQUEST: u16 = 0x0003;
    /// SOURCE-ADDRESS (RFC 3489, deprecated).
    pub const SOURCE_ADDRESS: u16 = 0x0004;
    /// CHANGED-ADDRESS (RFC 3489, deprecated).
    pub const CHANGED_ADDRESS: u16 = 0x0005;
    /// USERNAME.
    pub const USERNAME: u16 = 0x0006;
    /// PASSWORD (RFC 3489, deprecated).
    pub const PASSWORD: u16 = 0x0007;
    /// MESSAGE-INTEGRITY (HMAC-SHA1, 20 bytes).
    pub const MESSAGE_INTEGRITY: u16 = 0x0008;
    /// ERROR-CODE.
    pub const ERROR_CODE: u16 = 0x0009;
    /// UNKNOWN-ATTRIBUTES.
    pub const UNKNOWN_ATTRIBUTES: u16 = 0x000A;
    /// REFLECTED-FROM (RFC 3489, deprecated).
    pub const REFLECTED_FROM: u16 = 0x000B;
    /// CHANNEL-NUMBER (TURN).
    pub const CHANNEL_NUMBER: u16 = 0x000C;
    /// LIFETIME (TURN).
    pub const LIFETIME: u16 = 0x000D;
    /// XOR-PEER-ADDRESS (TURN).
    pub const XOR_PEER_ADDRESS: u16 = 0x0012;
    /// DATA (TURN).
    pub const DATA: u16 = 0x0013;
    /// REALM.
    pub const REALM: u16 = 0x0014;
    /// NONCE.
    pub const NONCE: u16 = 0x0015;
    /// XOR-RELAYED-ADDRESS (TURN).
    pub const XOR_RELAYED_ADDRESS: u16 = 0x0016;
    /// REQUESTED-ADDRESS-FAMILY (RFC 8656).
    pub const REQUESTED_ADDRESS_FAMILY: u16 = 0x0017;
    /// EVEN-PORT (TURN).
    pub const EVEN_PORT: u16 = 0x0018;
    /// REQUESTED-TRANSPORT (TURN).
    pub const REQUESTED_TRANSPORT: u16 = 0x0019;
    /// DONT-FRAGMENT (TURN).
    pub const DONT_FRAGMENT: u16 = 0x001A;
    /// MESSAGE-INTEGRITY-SHA256 (RFC 8489).
    pub const MESSAGE_INTEGRITY_SHA256: u16 = 0x001C;
    /// PASSWORD-ALGORITHM (RFC 8489).
    pub const PASSWORD_ALGORITHM: u16 = 0x001D;
    /// USERHASH (RFC 8489).
    pub const USERHASH: u16 = 0x001E;
    /// XOR-MAPPED-ADDRESS (RFC 8489).
    pub const XOR_MAPPED_ADDRESS: u16 = 0x0020;
    /// RESERVATION-TOKEN (TURN, 8 bytes).
    pub const RESERVATION_TOKEN: u16 = 0x0022;
    /// PRIORITY (ICE, RFC 8445).
    pub const PRIORITY: u16 = 0x0024;
    /// USE-CANDIDATE (ICE, RFC 8445).
    pub const USE_CANDIDATE: u16 = 0x0025;
    /// PADDING (RFC 5780).
    pub const PADDING: u16 = 0x0026;
    /// RESPONSE-PORT (RFC 5780).
    pub const RESPONSE_PORT: u16 = 0x0027;
    /// CONNECTION-ID (RFC 6062).
    pub const CONNECTION_ID: u16 = 0x002A;
    /// ADDITIONAL-ADDRESS-FAMILY (RFC 8656).
    pub const ADDITIONAL_ADDRESS_FAMILY: u16 = 0x8000;
    /// ADDRESS-ERROR-CODE (RFC 8656).
    pub const ADDRESS_ERROR_CODE: u16 = 0x8001;
    /// PASSWORD-ALGORITHMS (RFC 8489).
    pub const PASSWORD_ALGORITHMS: u16 = 0x8002;
    /// ALTERNATE-DOMAIN (RFC 8489).
    pub const ALTERNATE_DOMAIN: u16 = 0x8003;
    /// ICMP (RFC 8656).
    pub const ICMP: u16 = 0x8004;
    /// SOFTWARE.
    pub const SOFTWARE: u16 = 0x8022;
    /// ALTERNATE-SERVER.
    pub const ALTERNATE_SERVER: u16 = 0x8023;
    /// FINGERPRINT (CRC-32 of the message, 4 bytes).
    pub const FINGERPRINT: u16 = 0x8028;
    /// ICE-CONTROLLED (RFC 8445).
    pub const ICE_CONTROLLED: u16 = 0x8029;
    /// ICE-CONTROLLING (RFC 8445).
    pub const ICE_CONTROLLING: u16 = 0x802A;
    /// RESPONSE-ORIGIN (RFC 5780).
    pub const RESPONSE_ORIGIN: u16 = 0x802B;
    /// OTHER-ADDRESS (RFC 5780).
    pub const OTHER_ADDRESS: u16 = 0x802C;
    /// GOOG-NETWORK-INFO (libwebrtc extension, publicly documented).
    pub const GOOG_NETWORK_INFO: u16 = 0xC057;
}

/// Address families used in STUN address attributes.
pub mod family {
    /// IPv4 (0x01).
    pub const IPV4: u8 = 0x01;
    /// IPv6 (0x02).
    pub const IPV6: u8 = 0x02;
}

/// A parsed attribute: raw type and its (unpadded) value bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attribute<'a> {
    /// Raw 16-bit attribute type.
    pub typ: u16,
    /// Attribute value, excluding the padding bytes.
    pub value: &'a [u8],
}

/// A checked view of a STUN/TURN message.
///
/// ```
/// use rtc_wire::stun::{attr, msg_type, Message, MessageBuilder};
///
/// let bytes = MessageBuilder::new(msg_type::BINDING_REQUEST, [7; 12])
///     .attribute(attr::PRIORITY, vec![0, 0, 1, 0])
///     .build_with_fingerprint();
/// let msg = Message::new_checked(&bytes).unwrap();
/// assert_eq!(msg.message_type(), msg_type::BINDING_REQUEST);
/// assert!(msg.has_magic_cookie());
/// assert_eq!(msg.verify_fingerprint(), Some(true));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Message<'a> {
    buf: &'a [u8],
}

impl<'a> Message<'a> {
    /// Parse a STUN message starting at byte 0 of `buf`.
    ///
    /// `buf` may extend past the message; use [`Message::wire_len`] to find
    /// where the message ends. Fails if the buffer is shorter than the
    /// declared message, if the top two type bits are set, or if the length
    /// field is not 4-byte aligned (RFC 5389 §6).
    pub fn new_checked(buf: &'a [u8]) -> Result<Message<'a>> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::truncated(P, buf.len()));
        }
        let raw_type = field::u16_at(P, buf, 0)?;
        if raw_type & 0xC000 != 0 {
            return Err(WireError::malformed(P, 0, "type top bits"));
        }
        let length = field::u16_at(P, buf, 2)? as usize;
        if !length.is_multiple_of(4) {
            return Err(WireError::malformed(P, 2, "length alignment"));
        }
        if buf.len() < HEADER_LEN + length {
            return Err(WireError::truncated(P, buf.len()));
        }
        #[cfg(feature = "cov-probes")]
        {
            let cookie = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]) == MAGIC_COOKIE;
            if cookie {
                rtc_cov::probe!("stun.msg.accept-modern");
            } else {
                rtc_cov::probe!("stun.msg.accept-legacy");
            }
            if length == 0 {
                rtc_cov::probe!("stun.msg.no-attributes");
            }
        }
        Ok(Message { buf })
    }

    /// Raw 16-bit message type.
    pub fn message_type(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Message class decoded from the type bits.
    pub fn class(&self) -> MessageClass {
        MessageClass::of(self.message_type())
    }

    /// 12-bit method decoded from the type bits.
    pub fn method(&self) -> u16 {
        method_of(self.message_type())
    }

    /// Declared length of the attribute section in bytes.
    pub fn declared_length(&self) -> usize {
        u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize
    }

    /// Total size of the message on the wire (header + attributes).
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.declared_length()
    }

    /// The exact bytes of this message (header + attribute section).
    pub fn as_bytes(&self) -> &'a [u8] {
        &self.buf[..HEADER_LEN + self.declared_length()]
    }

    /// Whether bytes 4..8 hold the RFC 5389 magic cookie.
    ///
    /// Classic RFC 3489 messages have no cookie — those four bytes are part
    /// of the 128-bit transaction ID.
    pub fn has_magic_cookie(&self) -> bool {
        u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]) == MAGIC_COOKIE
    }

    /// The modern 96-bit transaction ID (bytes 8..20).
    pub fn transaction_id(&self) -> &'a [u8] {
        &self.buf[8..20]
    }

    /// The classic RFC 3489 128-bit transaction ID (bytes 4..20).
    pub fn legacy_transaction_id(&self) -> &'a [u8] {
        &self.buf[4..20]
    }

    /// Iterate over the TLV attributes in declaration order.
    pub fn attributes(&self) -> AttributeIter<'a> {
        AttributeIter { buf: &self.buf[HEADER_LEN..HEADER_LEN + self.declared_length()], offset: 0 }
    }

    /// Find the first attribute with the given type.
    pub fn attribute(&self, typ: u16) -> Option<Attribute<'a>> {
        self.attributes().flatten().find(|a| a.typ == typ)
    }

    /// Verify the FINGERPRINT attribute, if one is present: `None` when the
    /// message carries no FINGERPRINT, otherwise whether the CRC matches
    /// RFC 8489 §14.7 (computed over the message up to the attribute, with
    /// the declared length unchanged — compliant senders size the length to
    /// include the FINGERPRINT they append).
    pub fn verify_fingerprint(&self) -> Option<bool> {
        let mut offset = HEADER_LEN;
        for a in self.attributes() {
            let Ok(a) = a else { return Some(false) };
            if a.typ == attr::FINGERPRINT {
                if a.value.len() != 4 {
                    rtc_cov::probe!("stun.fingerprint.bad-length");
                    return Some(false);
                }
                let expected = crc32(&self.buf[..offset]) ^ FINGERPRINT_XOR;
                let got = u32::from_be_bytes([a.value[0], a.value[1], a.value[2], a.value[3]]);
                #[cfg(feature = "cov-probes")]
                if expected == got {
                    rtc_cov::probe!("stun.fingerprint.match");
                } else {
                    rtc_cov::probe!("stun.fingerprint.mismatch");
                }
                return Some(expected == got);
            }
            offset += 4 + a.value.len() + (4 - a.value.len() % 4) % 4;
        }
        None
    }
}

/// Iterator over the attributes of a [`Message`].
///
/// Yields `Err` (and then stops) if an attribute overruns the declared
/// message length — the paper's validation step discards such candidates.
#[derive(Debug, Clone)]
pub struct AttributeIter<'a> {
    buf: &'a [u8],
    offset: usize,
}

impl<'a> Iterator for AttributeIter<'a> {
    type Item = Result<Attribute<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.offset >= self.buf.len() {
            return None;
        }
        let typ = match field::u16_at(P, self.buf, self.offset) {
            Ok(t) => t,
            Err(e) => {
                self.offset = self.buf.len();
                return Some(Err(e));
            }
        };
        let len = match field::u16_at(P, self.buf, self.offset + 2) {
            Ok(l) => l as usize,
            Err(e) => {
                self.offset = self.buf.len();
                return Some(Err(e));
            }
        };
        let value = match field::slice_at(P, self.buf, self.offset + 4, len) {
            Ok(v) => v,
            Err(e) => {
                self.offset = self.buf.len();
                return Some(Err(e));
            }
        };
        // Advance past the value and its padding to the 4-byte boundary.
        self.offset += 4 + len + (4 - len % 4) % 4;
        rtc_cov::probe!("stun.attr.step");
        Some(Ok(Attribute { typ, value }))
    }
}

/// Builder for STUN/TURN messages.
///
/// The builder intentionally allows *anything* a real implementation might
/// put on the wire — undefined types, undefined attributes, wrong lengths —
/// because the application models in `rtc-apps` must generate the
/// non-compliant traffic the paper observed.
#[derive(Debug, Clone)]
pub struct MessageBuilder {
    message_type: u16,
    transaction_id: [u8; 12],
    magic_cookie: Option<u32>,
    legacy_prefix: [u8; 4],
    attributes: Vec<(u16, Vec<u8>)>,
}

impl MessageBuilder {
    /// Start building a message of the given raw type with the RFC 5389+
    /// magic cookie.
    pub fn new(message_type: u16, transaction_id: [u8; 12]) -> MessageBuilder {
        MessageBuilder {
            message_type,
            transaction_id,
            magic_cookie: Some(MAGIC_COOKIE),
            legacy_prefix: [0; 4],
            attributes: Vec::new(),
        }
    }

    /// Start building a classic RFC 3489 message: no magic cookie, a full
    /// 128-bit transaction ID (`prefix` supplies the first 4 bytes).
    pub fn new_legacy(message_type: u16, prefix: [u8; 4], transaction_id: [u8; 12]) -> MessageBuilder {
        MessageBuilder {
            message_type,
            transaction_id,
            magic_cookie: None,
            legacy_prefix: prefix,
            attributes: Vec::new(),
        }
    }

    /// Append an attribute (type + value). Padding is added automatically.
    pub fn attribute(mut self, typ: u16, value: impl Into<Vec<u8>>) -> MessageBuilder {
        self.attributes.push((typ, value.into()));
        self
    }

    /// Serialize the message, appending a correctly computed FINGERPRINT
    /// attribute (RFC 8489 §14.7): the CRC-32 of the message up to the
    /// FINGERPRINT attribute — with the length field already covering it —
    /// XOR'd with 0x5354554E.
    pub fn build_with_fingerprint(&self) -> Vec<u8> {
        let mut out = self.serialize(8);
        let crc = crc32(&out) ^ FINGERPRINT_XOR;
        out.extend_from_slice(&attr::FINGERPRINT.to_be_bytes());
        out.extend_from_slice(&4u16.to_be_bytes());
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Serialize the message.
    pub fn build(&self) -> Vec<u8> {
        self.serialize(0)
    }

    fn serialize(&self, extra_len: usize) -> Vec<u8> {
        let attrs_len: usize =
            self.attributes.iter().map(|(_, v)| 4 + v.len() + (4 - v.len() % 4) % 4).sum::<usize>() + extra_len;
        let mut out = Vec::with_capacity(HEADER_LEN + attrs_len);
        out.extend_from_slice(&self.message_type.to_be_bytes());
        out.extend_from_slice(&(attrs_len as u16).to_be_bytes());
        match self.magic_cookie {
            Some(c) => out.extend_from_slice(&c.to_be_bytes()),
            None => out.extend_from_slice(&self.legacy_prefix),
        }
        out.extend_from_slice(&self.transaction_id);
        for (typ, value) in &self.attributes {
            out.extend_from_slice(&typ.to_be_bytes());
            out.extend_from_slice(&(value.len() as u16).to_be_bytes());
            out.extend_from_slice(value);
            out.extend(std::iter::repeat_n(0u8, (4 - value.len() % 4) % 4));
        }
        out
    }
}

/// Encode a plain (non-XOR) address attribute value (RFC 8489 §14.1).
pub fn encode_address(addr: std::net::SocketAddr) -> Vec<u8> {
    let mut v = vec![0u8];
    match addr.ip() {
        std::net::IpAddr::V4(ip) => {
            v.push(family::IPV4);
            v.extend_from_slice(&addr.port().to_be_bytes());
            v.extend_from_slice(&ip.octets());
        }
        std::net::IpAddr::V6(ip) => {
            v.push(family::IPV6);
            v.extend_from_slice(&addr.port().to_be_bytes());
            v.extend_from_slice(&ip.octets());
        }
    }
    v
}

/// Decode a plain address attribute value.
pub fn decode_address(value: &[u8]) -> Result<std::net::SocketAddr> {
    if value.len() < 4 {
        return Err(WireError::truncated(P, value.len()));
    }
    let fam = value[1];
    let port = u16::from_be_bytes([value[2], value[3]]);
    match fam {
        family::IPV4 => {
            let o = field::slice_at(P, value, 4, 4)?;
            let ip = std::net::Ipv4Addr::new(o[0], o[1], o[2], o[3]);
            if value.len() != 8 {
                return Err(WireError::malformed(P, 0, "ipv4 address attribute length"));
            }
            Ok(std::net::SocketAddr::new(ip.into(), port))
        }
        family::IPV6 => {
            let o = field::slice_at(P, value, 4, 16)?;
            let mut oct = [0u8; 16];
            oct.copy_from_slice(o);
            if value.len() != 20 {
                return Err(WireError::malformed(P, 0, "ipv6 address attribute length"));
            }
            Ok(std::net::SocketAddr::new(std::net::Ipv6Addr::from(oct).into(), port))
        }
        _ => Err(WireError::malformed(P, 1, "address family")),
    }
}

/// Encode an XOR-…-ADDRESS attribute value (RFC 8489 §14.2).
///
/// `transaction_id` is needed for IPv6; IPv4 only XORs with the cookie.
pub fn encode_xor_address(addr: std::net::SocketAddr, transaction_id: &[u8; 12]) -> Vec<u8> {
    let mut v = encode_address(addr);
    let cookie = MAGIC_COOKIE.to_be_bytes();
    // XOR the port with the 16 most significant cookie bits.
    v[2] ^= cookie[0];
    v[3] ^= cookie[1];
    // XOR the address with cookie (v4) or cookie || txid (v6).
    for (i, b) in v[4..].iter_mut().enumerate() {
        *b ^= if i < 4 { cookie[i] } else { transaction_id[i - 4] };
    }
    v
}

/// Decode an XOR-…-ADDRESS attribute value.
pub fn decode_xor_address(value: &[u8], transaction_id: &[u8; 12]) -> Result<std::net::SocketAddr> {
    let mut v = value.to_vec();
    if v.len() < 4 {
        return Err(WireError::truncated(P, v.len()));
    }
    let cookie = MAGIC_COOKIE.to_be_bytes();
    v[2] ^= cookie[0];
    v[3] ^= cookie[1];
    for (i, b) in v[4..].iter_mut().enumerate() {
        *b ^= if i < 4 { cookie[i] } else { transaction_id[i - 4] };
    }
    decode_address(&v)
}

/// Encode an ERROR-CODE attribute value (RFC 8489 §14.8).
pub fn encode_error_code(code: u16, reason: &str) -> Vec<u8> {
    let mut v = vec![0, 0, (code / 100) as u8, (code % 100) as u8];
    v.extend_from_slice(reason.as_bytes());
    v
}

/// Decode an ERROR-CODE attribute value into `(code, reason)`.
pub fn decode_error_code(value: &[u8]) -> Result<(u16, String)> {
    if value.len() < 4 {
        return Err(WireError::truncated(P, value.len()));
    }
    let class = (value[2] & 0x07) as u16;
    let number = value[3] as u16;
    Ok((class * 100 + number, String::from_utf8_lossy(&value[4..]).into_owned()))
}

/// TURN ChannelData framing (RFC 8656 §12.4).
///
/// ChannelData is not a STUN message: it is a 4-byte header (channel number,
/// length) followed by application data. Channel numbers are confined to
/// 0x4000–0x4FFF; the first byte therefore starts with bits 0b01, which is
/// how a receiver demultiplexes ChannelData from STUN (0b00) on one socket.
#[derive(Debug, Clone, Copy)]
pub struct ChannelData<'a> {
    buf: &'a [u8],
}

impl<'a> ChannelData<'a> {
    /// Range of channel numbers valid per RFC 8656.
    pub const CHANNEL_RANGE: core::ops::RangeInclusive<u16> = 0x4000..=0x4FFF;

    /// Parse a ChannelData frame starting at byte 0 of `buf`.
    ///
    /// Accepts any channel number with the 0b01 demux prefix (0x4000–0x7FFF);
    /// numbers above 0x4FFF parse but are non-compliant, which the compliance
    /// layer reports.
    pub fn new_checked(buf: &'a [u8]) -> Result<ChannelData<'a>> {
        if buf.len() < 4 {
            return Err(WireError::truncated(P, buf.len()));
        }
        let number = field::u16_at(P, buf, 0)?;
        if !(0x4000..=0x7FFF).contains(&number) {
            return Err(WireError::malformed(P, 0, "channeldata demux prefix"));
        }
        let length = field::u16_at(P, buf, 2)? as usize;
        if buf.len() < 4 + length {
            return Err(WireError::truncated(P, buf.len()));
        }
        rtc_cov::probe!("stun.channeldata.accept");
        Ok(ChannelData { buf })
    }

    /// The channel number.
    pub fn channel_number(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Declared application-data length.
    pub fn declared_length(&self) -> usize {
        u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize
    }

    /// Total size of the frame on the wire (header + data, no UDP padding).
    pub fn wire_len(&self) -> usize {
        4 + self.declared_length()
    }

    /// The application data carried by the frame.
    pub fn data(&self) -> &'a [u8] {
        &self.buf[4..4 + self.declared_length()]
    }

    /// Serialize a ChannelData frame.
    pub fn build(channel_number: u16, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + data.len());
        out.extend_from_slice(&channel_number.to_be_bytes());
        out.extend_from_slice(&(data.len() as u16).to_be_bytes());
        out.extend_from_slice(data);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txid(seed: u8) -> [u8; 12] {
        core::array::from_fn(|i| seed.wrapping_add(i as u8))
    }

    #[test]
    fn class_and_method_roundtrip() {
        for (t, class, method) in [
            (msg_type::BINDING_REQUEST, MessageClass::Request, 0x001),
            (msg_type::BINDING_SUCCESS, MessageClass::SuccessResponse, 0x001),
            (msg_type::BINDING_ERROR, MessageClass::ErrorResponse, 0x001),
            (msg_type::DATA_INDICATION, MessageClass::Indication, 0x007),
            (msg_type::ALLOCATE_REQUEST, MessageClass::Request, 0x003),
            (msg_type::GOOG_PING_REQUEST, MessageClass::Request, 0x080),
            (msg_type::GOOG_PING_SUCCESS, MessageClass::SuccessResponse, 0x080),
        ] {
            assert_eq!(MessageClass::of(t), class, "type {t:#06x}");
            assert_eq!(method_of(t), method, "type {t:#06x}");
            assert_eq!(compose_type(method, class), t, "type {t:#06x}");
        }
    }

    #[test]
    fn build_and_parse_binding_request() {
        let bytes = MessageBuilder::new(msg_type::BINDING_REQUEST, txid(7))
            .attribute(attr::SOFTWARE, b"rtc-wire test".to_vec())
            .attribute(attr::PRIORITY, 0x6e7f_1effu32.to_be_bytes().to_vec())
            .build();
        let msg = Message::new_checked(&bytes).unwrap();
        assert_eq!(msg.message_type(), msg_type::BINDING_REQUEST);
        assert_eq!(msg.class(), MessageClass::Request);
        assert_eq!(msg.method(), 0x001);
        assert!(msg.has_magic_cookie());
        assert_eq!(msg.transaction_id(), &txid(7));
        assert_eq!(msg.wire_len(), bytes.len());
        let attrs: Vec<_> = msg.attributes().collect::<Result<_>>().unwrap();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].typ, attr::SOFTWARE);
        assert_eq!(attrs[0].value, b"rtc-wire test");
        assert_eq!(attrs[1].typ, attr::PRIORITY);
        assert_eq!(attrs[1].value, &0x6e7f_1effu32.to_be_bytes());
    }

    #[test]
    fn attribute_padding_excluded_from_value() {
        let bytes = MessageBuilder::new(msg_type::BINDING_REQUEST, txid(1))
            .attribute(0x4003, vec![0xFF]) // 1-byte value → 3 padding bytes
            .build();
        let msg = Message::new_checked(&bytes).unwrap();
        assert_eq!(msg.declared_length(), 8);
        let a = msg.attribute(0x4003).unwrap();
        assert_eq!(a.value, &[0xFF]);
    }

    #[test]
    fn legacy_message_has_no_cookie() {
        let bytes = MessageBuilder::new_legacy(msg_type::BINDING_REQUEST, [1, 2, 3, 4], txid(9)).build();
        let msg = Message::new_checked(&bytes).unwrap();
        assert!(!msg.has_magic_cookie());
        assert_eq!(&msg.legacy_transaction_id()[..4], &[1, 2, 3, 4]);
    }

    #[test]
    fn rejects_top_type_bits() {
        let mut bytes = MessageBuilder::new(msg_type::BINDING_REQUEST, txid(0)).build();
        bytes[0] = 0x80; // looks like RTP/ChannelData, not STUN
        assert_eq!(Message::new_checked(&bytes).err(), Some(WireError::malformed(P, 0, "type top bits")));
    }

    #[test]
    fn rejects_unaligned_length() {
        let mut bytes = MessageBuilder::new(msg_type::BINDING_REQUEST, txid(0))
            .attribute(attr::SOFTWARE, b"abcd".to_vec())
            .build();
        bytes[3] = 0x03;
        assert!(Message::new_checked(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated_body() {
        let bytes = MessageBuilder::new(msg_type::BINDING_REQUEST, txid(0))
            .attribute(attr::SOFTWARE, b"abcd".to_vec())
            .build();
        let err = Message::new_checked(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(err.is_truncated());
        assert_eq!(err.protocol, WireProtocol::Stun);
    }

    #[test]
    fn message_may_be_followed_by_trailing_bytes() {
        let mut bytes = MessageBuilder::new(msg_type::BINDING_REQUEST, txid(0)).build();
        let wire = bytes.len();
        bytes.extend_from_slice(&[0xAA; 13]);
        let msg = Message::new_checked(&bytes).unwrap();
        assert_eq!(msg.wire_len(), wire);
        assert_eq!(msg.as_bytes().len(), wire);
    }

    #[test]
    fn attribute_overrun_yields_error() {
        // Declared length 8, but the attribute claims a 32-byte value.
        let mut bytes =
            MessageBuilder::new(msg_type::BINDING_REQUEST, txid(0)).attribute(attr::SOFTWARE, vec![0u8; 4]).build();
        bytes[HEADER_LEN + 3] = 32;
        let msg = Message::new_checked(&bytes).unwrap();
        let results: Vec<_> = msg.attributes().collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
    }

    #[test]
    fn xor_address_roundtrip_v4() {
        let t = txid(3);
        let addr: std::net::SocketAddr = "192.0.2.33:45000".parse().unwrap();
        let enc = encode_xor_address(addr, &t);
        assert_eq!(enc.len(), 8);
        assert_eq!(decode_xor_address(&enc, &t).unwrap(), addr);
        // XOR must actually change the on-wire port for nonzero cookie bits.
        assert_ne!(&enc[2..4], &45000u16.to_be_bytes());
    }

    #[test]
    fn xor_address_roundtrip_v6() {
        let t = txid(5);
        let addr: std::net::SocketAddr = "[2001:db8::7]:3478".parse().unwrap();
        let enc = encode_xor_address(addr, &t);
        assert_eq!(enc.len(), 20);
        assert_eq!(decode_xor_address(&enc, &t).unwrap(), addr);
    }

    #[test]
    fn plain_address_roundtrip() {
        let addr: std::net::SocketAddr = "198.51.100.4:19302".parse().unwrap();
        assert_eq!(decode_address(&encode_address(addr)).unwrap(), addr);
    }

    #[test]
    fn address_rejects_bad_family() {
        let mut enc = encode_address("192.0.2.1:1".parse().unwrap());
        enc[1] = 0x00;
        assert_eq!(decode_address(&enc), Err(WireError::malformed(P, 1, "address family")));
    }

    #[test]
    fn error_code_roundtrip() {
        let enc = encode_error_code(437, "Allocation Mismatch");
        assert_eq!(decode_error_code(&enc).unwrap(), (437, "Allocation Mismatch".to_string()));
        let enc = encode_error_code(300, "");
        assert_eq!(decode_error_code(&enc).unwrap().0, 300);
        assert!(decode_error_code(&[0, 0]).is_err());
    }

    #[test]
    fn channeldata_roundtrip() {
        let frame = ChannelData::build(0x4001, b"media payload");
        let cd = ChannelData::new_checked(&frame).unwrap();
        assert_eq!(cd.channel_number(), 0x4001);
        assert_eq!(cd.data(), b"media payload");
        assert_eq!(cd.wire_len(), frame.len());
    }

    #[test]
    fn channeldata_rejects_stun_prefix() {
        let frame = ChannelData::build(0x0001, b"x");
        assert!(ChannelData::new_checked(&frame).is_err());
    }

    #[test]
    fn channeldata_accepts_out_of_range_channel_for_compliance_layer() {
        // 0x5000 has the 0b01 demux prefix but is outside RFC 8656's range:
        // the parser accepts it so the compliance layer can flag it.
        let frame = ChannelData::build(0x5000, b"x");
        let cd = ChannelData::new_checked(&frame).unwrap();
        assert!(!ChannelData::CHANNEL_RANGE.contains(&cd.channel_number()));
    }

    #[test]
    fn fingerprint_roundtrip_and_tamper_detection() {
        let bytes = MessageBuilder::new(msg_type::BINDING_REQUEST, txid(5))
            .attribute(attr::PRIORITY, vec![0, 0, 1, 0])
            .build_with_fingerprint();
        let msg = Message::new_checked(&bytes).unwrap();
        assert_eq!(msg.verify_fingerprint(), Some(true));
        // Flipping any covered byte invalidates the CRC.
        let mut tampered = bytes.clone();
        tampered[21] ^= 0x01; // inside the PRIORITY value
        let msg = Message::new_checked(&tampered).unwrap();
        assert_eq!(msg.verify_fingerprint(), Some(false));
        // Messages without FINGERPRINT verify to None.
        let plain = MessageBuilder::new(msg_type::BINDING_REQUEST, txid(5)).build();
        assert_eq!(Message::new_checked(&plain).unwrap().verify_fingerprint(), None);
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn undefined_types_and_attributes_parse() {
        // WhatsApp's 0x0801 with undefined attributes 0x4003/0x4004 (paper §5.2.1).
        let bytes = MessageBuilder::new(0x0801, txid(0xAB))
            .attribute(0x4003, vec![0xFF])
            .attribute(0x4004, vec![0u8; 452])
            .build();
        let msg = Message::new_checked(&bytes).unwrap();
        assert_eq!(msg.message_type(), 0x0801);
        assert_eq!(msg.attributes().count(), 2);
    }
}
