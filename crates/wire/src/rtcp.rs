//! RTCP wire format (RFC 3550 §6, RFC 4585 feedback messages, RFC 3611 XR)
//! plus the SRTCP trailer (RFC 3711 §3.4).
//!
//! RTCP packets are self-delimiting (the header carries a length in 32-bit
//! words), and several packets are usually stacked into one *compound*
//! datagram. [`CompoundIter`] walks a datagram and stops at the first byte
//! run that is not a valid RTCP header, exposing the remainder through
//! [`split_compound`] — that remainder is where SRTCP trailers and
//! proprietary trailers (e.g. Discord's direction byte, paper §5.2.3) live.

use crate::{field, Result, WireError, WireProtocol};

/// Protocol tag for every error this module raises.
const P: WireProtocol = WireProtocol::Rtcp;

/// Well-known RTCP packet types.
pub mod packet_type {
    /// Sender Report.
    pub const SR: u8 = 200;
    /// Receiver Report.
    pub const RR: u8 = 201;
    /// Source Description.
    pub const SDES: u8 = 202;
    /// Goodbye.
    pub const BYE: u8 = 203;
    /// Application-defined.
    pub const APP: u8 = 204;
    /// Transport-layer feedback (RFC 4585).
    pub const RTPFB: u8 = 205;
    /// Payload-specific feedback (RFC 4585).
    pub const PSFB: u8 = 206;
    /// Extended Reports (RFC 3611).
    pub const XR: u8 = 207;
}

/// A checked view of a single RTCP packet.
#[derive(Debug, Clone, Copy)]
pub struct Packet<'a> {
    buf: &'a [u8],
}

impl<'a> Packet<'a> {
    /// Parse an RTCP packet starting at byte 0 of `buf`.
    ///
    /// `buf` may extend past the packet (compound packets); the packet ends
    /// at [`Packet::wire_len`]. Checks version 2 and that the declared
    /// length fits the buffer.
    pub fn new_checked(buf: &'a [u8]) -> Result<Packet<'a>> {
        if buf.len() < 4 {
            return Err(WireError::truncated(P, buf.len()));
        }
        if buf[0] >> 6 != 2 {
            return Err(WireError::malformed(P, 0, "version"));
        }
        let words = field::u16_at(P, buf, 2)? as usize;
        if buf.len() < 4 * (words + 1) {
            return Err(WireError::truncated(P, buf.len()));
        }
        #[cfg(feature = "cov-probes")]
        {
            // One probe per well-known packet type keeps the per-type body
            // grammars apart in the coverage signature.
            match buf[1] {
                packet_type::SR => rtc_cov::probe!("rtcp.accept.sr"),
                packet_type::RR => rtc_cov::probe!("rtcp.accept.rr"),
                packet_type::SDES => rtc_cov::probe!("rtcp.accept.sdes"),
                packet_type::BYE => rtc_cov::probe!("rtcp.accept.bye"),
                packet_type::APP => rtc_cov::probe!("rtcp.accept.app"),
                packet_type::RTPFB => rtc_cov::probe!("rtcp.accept.rtpfb"),
                packet_type::PSFB => rtc_cov::probe!("rtcp.accept.psfb"),
                packet_type::XR => rtc_cov::probe!("rtcp.accept.xr"),
                _ => rtc_cov::probe!("rtcp.accept.other-type"),
            }
        }
        Ok(Packet { buf })
    }

    /// Protocol version (always 2 for a checked packet).
    pub fn version(&self) -> u8 {
        self.buf[0] >> 6
    }

    /// The padding (P) bit.
    pub fn has_padding(&self) -> bool {
        self.buf[0] & 0x20 != 0
    }

    /// The 5-bit count field (RC for SR/RR, SC for SDES/BYE, FMT for
    /// feedback, subtype for APP).
    pub fn count(&self) -> u8 {
        self.buf[0] & 0x1F
    }

    /// The packet type.
    pub fn packet_type(&self) -> u8 {
        self.buf[1]
    }

    /// The declared length field (32-bit words minus one).
    pub fn declared_words(&self) -> usize {
        u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize
    }

    /// Total packet size on the wire.
    pub fn wire_len(&self) -> usize {
        4 * (self.declared_words() + 1)
    }

    /// The packet body (everything after the 4-byte header).
    pub fn body(&self) -> &'a [u8] {
        &self.buf[4..self.wire_len()]
    }

    /// The full packet bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        &self.buf[..self.wire_len()]
    }

    /// The SSRC in the first body word — defined for SR, RR, APP, RTPFB,
    /// PSFB and XR packets; `None` when the body is empty.
    pub fn ssrc(&self) -> Option<u32> {
        let b = self.body();
        if b.len() >= 4 {
            Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
        } else {
            None
        }
    }
}

/// Split a datagram region into its RTCP compound packets and the trailing
/// bytes that are not RTCP (SRTCP trailer, proprietary trailer, or nothing).
pub fn split_compound(buf: &[u8]) -> (Vec<Packet<'_>>, &[u8]) {
    let mut packets = Vec::new();
    let mut offset = 0;
    while offset < buf.len() {
        match Packet::new_checked(&buf[offset..]) {
            Ok(p) => {
                offset += p.wire_len();
                rtc_cov::probe!("rtcp.compound.step");
                packets.push(p);
            }
            Err(_) => break,
        }
    }
    #[cfg(feature = "cov-probes")]
    if offset < buf.len() {
        rtc_cov::probe!("rtcp.compound.trailing");
    }
    (packets, &buf[offset..])
}

/// Iterator form of [`split_compound`] (stops at the first non-RTCP byte).
#[derive(Debug, Clone, Copy)]
pub struct CompoundIter<'a> {
    buf: &'a [u8],
    offset: usize,
}

impl<'a> CompoundIter<'a> {
    /// Start iterating over `buf`.
    pub fn new(buf: &'a [u8]) -> CompoundIter<'a> {
        CompoundIter { buf, offset: 0 }
    }

    /// Bytes not consumed so far.
    pub fn remainder(&self) -> &'a [u8] {
        &self.buf[self.offset..]
    }
}

impl<'a> Iterator for CompoundIter<'a> {
    type Item = Packet<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        let p = Packet::new_checked(&self.buf[self.offset..]).ok()?;
        self.offset += p.wire_len();
        Some(p)
    }
}

/// One report block inside an SR or RR (RFC 3550 §6.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportBlock {
    /// SSRC of the reported-on source.
    pub ssrc: u32,
    /// Fraction of packets lost since the previous report (Q8).
    pub fraction_lost: u8,
    /// Cumulative number of packets lost (24-bit, sign-extended here).
    pub cumulative_lost: i32,
    /// Extended highest sequence number received.
    pub highest_seq: u32,
    /// Interarrival jitter estimate.
    pub jitter: u32,
    /// Last SR timestamp.
    pub last_sr: u32,
    /// Delay since last SR, in 1/65536 s.
    pub delay_since_last_sr: u32,
}

impl ReportBlock {
    /// Size of a report block on the wire.
    pub const WIRE_LEN: usize = 24;

    fn parse(buf: &[u8]) -> Result<ReportBlock> {
        if buf.len() < Self::WIRE_LEN {
            return Err(WireError::truncated(P, buf.len()));
        }
        let cum_raw = u32::from_be_bytes([0, buf[5], buf[6], buf[7]]);
        let cumulative_lost =
            if cum_raw & 0x0080_0000 != 0 { (cum_raw | 0xFF00_0000) as i32 } else { cum_raw as i32 };
        Ok(ReportBlock {
            ssrc: field::u32_at(P, buf, 0)?,
            fraction_lost: buf[4],
            cumulative_lost,
            highest_seq: field::u32_at(P, buf, 8)?,
            jitter: field::u32_at(P, buf, 12)?,
            last_sr: field::u32_at(P, buf, 16)?,
            delay_since_last_sr: field::u32_at(P, buf, 20)?,
        })
    }

    fn emit(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ssrc.to_be_bytes());
        out.push(self.fraction_lost);
        out.extend_from_slice(&(self.cumulative_lost as u32).to_be_bytes()[1..]);
        out.extend_from_slice(&self.highest_seq.to_be_bytes());
        out.extend_from_slice(&self.jitter.to_be_bytes());
        out.extend_from_slice(&self.last_sr.to_be_bytes());
        out.extend_from_slice(&self.delay_since_last_sr.to_be_bytes());
    }
}

/// Parsed Sender Report contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SenderReport {
    /// Sender's SSRC.
    pub ssrc: u32,
    /// 64-bit NTP timestamp.
    pub ntp_timestamp: u64,
    /// RTP timestamp correlated with the NTP timestamp.
    pub rtp_timestamp: u32,
    /// Sender's packet count.
    pub packet_count: u32,
    /// Sender's octet count.
    pub octet_count: u32,
    /// Report blocks.
    pub reports: Vec<ReportBlock>,
}

impl SenderReport {
    /// Parse the body of an SR packet (`packet.count()` gives the block count).
    pub fn parse(packet: &Packet<'_>) -> Result<SenderReport> {
        if packet.packet_type() != packet_type::SR {
            return Err(WireError::malformed(P, 1, "not a sender report"));
        }
        let b = packet.body();
        let mut reports = Vec::new();
        for i in 0..packet.count() as usize {
            reports.push(ReportBlock::parse(field::slice_at(
                P,
                b,
                24 + i * ReportBlock::WIRE_LEN,
                ReportBlock::WIRE_LEN,
            )?)?);
        }
        Ok(SenderReport {
            ssrc: field::u32_at(P, b, 0)?,
            ntp_timestamp: field::u64_at(P, b, 4)?,
            rtp_timestamp: field::u32_at(P, b, 12)?,
            packet_count: field::u32_at(P, b, 16)?,
            octet_count: field::u32_at(P, b, 20)?,
            reports,
        })
    }

    /// Serialize as a complete RTCP packet.
    pub fn build(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.ssrc.to_be_bytes());
        body.extend_from_slice(&self.ntp_timestamp.to_be_bytes());
        body.extend_from_slice(&self.rtp_timestamp.to_be_bytes());
        body.extend_from_slice(&self.packet_count.to_be_bytes());
        body.extend_from_slice(&self.octet_count.to_be_bytes());
        for r in &self.reports {
            r.emit(&mut body);
        }
        build_raw(self.reports.len() as u8, packet_type::SR, &body)
    }
}

/// Parsed Receiver Report contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiverReport {
    /// Reporter's SSRC.
    pub ssrc: u32,
    /// Report blocks.
    pub reports: Vec<ReportBlock>,
}

impl ReceiverReport {
    /// Parse the body of an RR packet.
    pub fn parse(packet: &Packet<'_>) -> Result<ReceiverReport> {
        if packet.packet_type() != packet_type::RR {
            return Err(WireError::malformed(P, 1, "not a receiver report"));
        }
        let b = packet.body();
        let mut reports = Vec::new();
        for i in 0..packet.count() as usize {
            reports.push(ReportBlock::parse(field::slice_at(
                P,
                b,
                4 + i * ReportBlock::WIRE_LEN,
                ReportBlock::WIRE_LEN,
            )?)?);
        }
        Ok(ReceiverReport { ssrc: field::u32_at(P, b, 0)?, reports })
    }

    /// Serialize as a complete RTCP packet.
    pub fn build(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.ssrc.to_be_bytes());
        for r in &self.reports {
            r.emit(&mut body);
        }
        build_raw(self.reports.len() as u8, packet_type::RR, &body)
    }
}

/// SDES item types (RFC 3550 §6.5).
pub mod sdes_item {
    /// Canonical name.
    pub const CNAME: u8 = 1;
    /// User name.
    pub const NAME: u8 = 2;
    /// Email address.
    pub const EMAIL: u8 = 3;
    /// Phone number.
    pub const PHONE: u8 = 4;
    /// Geographic location.
    pub const LOC: u8 = 5;
    /// Tool name/version.
    pub const TOOL: u8 = 6;
    /// Notice/status.
    pub const NOTE: u8 = 7;
    /// Private extension.
    pub const PRIV: u8 = 8;
}

/// One SDES chunk: an SSRC plus its items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdesChunk {
    /// The SSRC/CSRC the items describe.
    pub ssrc: u32,
    /// `(item_type, value)` pairs.
    pub items: Vec<(u8, Vec<u8>)>,
}

/// Parsed Source Description packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sdes {
    /// The chunks.
    pub chunks: Vec<SdesChunk>,
}

impl Sdes {
    /// Parse an SDES packet body.
    pub fn parse(packet: &Packet<'_>) -> Result<Sdes> {
        if packet.packet_type() != packet_type::SDES {
            return Err(WireError::malformed(P, 1, "not an sdes"));
        }
        let b = packet.body();
        let mut chunks = Vec::new();
        let mut o = 0;
        for _ in 0..packet.count() {
            let ssrc = field::u32_at(P, b, o)?;
            o += 4;
            let mut items = Vec::new();
            loop {
                let t = field::u8_at(P, b, o)?;
                if t == 0 {
                    // End of items; chunk is padded to the next 32-bit boundary.
                    o += 1;
                    o += (4 - o % 4) % 4;
                    break;
                }
                let len = field::u8_at(P, b, o + 1)? as usize;
                items.push((t, field::slice_at(P, b, o + 2, len)?.to_vec()));
                o += 2 + len;
            }
            chunks.push(SdesChunk { ssrc, items });
        }
        Ok(Sdes { chunks })
    }

    /// Serialize as a complete RTCP packet.
    pub fn build(&self) -> Vec<u8> {
        let mut body = Vec::new();
        for chunk in &self.chunks {
            body.extend_from_slice(&chunk.ssrc.to_be_bytes());
            for (t, v) in &chunk.items {
                body.push(*t);
                body.push(v.len() as u8);
                body.extend_from_slice(v);
            }
            body.push(0);
            while body.len() % 4 != 0 {
                body.push(0);
            }
        }
        build_raw(self.chunks.len() as u8, packet_type::SDES, &body)
    }
}

/// Parsed APP packet (RFC 3550 §6.7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct App {
    /// Subtype (the header count field).
    pub subtype: u8,
    /// Source SSRC.
    pub ssrc: u32,
    /// 4-character ASCII name.
    pub name: [u8; 4],
    /// Application-dependent data.
    pub data: Vec<u8>,
}

impl App {
    /// Parse an APP packet.
    pub fn parse(packet: &Packet<'_>) -> Result<App> {
        if packet.packet_type() != packet_type::APP {
            return Err(WireError::malformed(P, 1, "not an app packet"));
        }
        let b = packet.body();
        let name_slice = field::slice_at(P, b, 4, 4)?;
        let mut name = [0u8; 4];
        name.copy_from_slice(name_slice);
        Ok(App { subtype: packet.count(), ssrc: field::u32_at(P, b, 0)?, name, data: b[8..].to_vec() })
    }

    /// Serialize as a complete RTCP packet. `data` must be a 4-byte multiple.
    pub fn build(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.ssrc.to_be_bytes());
        body.extend_from_slice(&self.name);
        body.extend_from_slice(&self.data);
        while body.len() % 4 != 0 {
            body.push(0);
        }
        build_raw(self.subtype, packet_type::APP, &body)
    }
}

/// Parsed feedback packet (RTPFB 205 / PSFB 206, RFC 4585 §6.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feedback {
    /// The packet type (205 or 206).
    pub packet_type: u8,
    /// Feedback message type (the header count field).
    pub fmt: u8,
    /// SSRC of the packet sender.
    pub sender_ssrc: u32,
    /// SSRC of the media source the feedback is about.
    pub media_ssrc: u32,
    /// Feedback Control Information.
    pub fci: Vec<u8>,
}

/// RTPFB feedback message types (FMT values, RFC 4585 / 8888 / draft-tcc).
pub mod rtpfb_fmt {
    /// Generic NACK.
    pub const NACK: u8 = 1;
    /// Temporary Maximum Media Stream Bit Rate Request (RFC 5104).
    pub const TMMBR: u8 = 3;
    /// Temporary Maximum Media Stream Bit Rate Notification (RFC 5104).
    pub const TMMBN: u8 = 4;
    /// Transport-wide congestion control (draft-holmer-rmcat-transport-wide-cc).
    pub const TRANSPORT_CC: u8 = 15;
}

/// PSFB feedback message types (FMT values, RFC 4585 / 5104).
pub mod psfb_fmt {
    /// Picture Loss Indication.
    pub const PLI: u8 = 1;
    /// Slice Loss Indication.
    pub const SLI: u8 = 2;
    /// Reference Picture Selection Indication.
    pub const RPSI: u8 = 3;
    /// Full Intra Request (RFC 5104).
    pub const FIR: u8 = 4;
    /// Receiver Estimated Max Bitrate (draft-alvestrand-rmcat-remb).
    pub const AFB_REMB: u8 = 15;
}

impl Feedback {
    /// Parse an RTPFB or PSFB packet.
    pub fn parse(packet: &Packet<'_>) -> Result<Feedback> {
        if packet.packet_type() != packet_type::RTPFB && packet.packet_type() != packet_type::PSFB {
            return Err(WireError::malformed(P, 1, "not a feedback packet"));
        }
        let b = packet.body();
        Ok(Feedback {
            packet_type: packet.packet_type(),
            fmt: packet.count(),
            sender_ssrc: field::u32_at(P, b, 0)?,
            media_ssrc: field::u32_at(P, b, 4)?,
            fci: b[8..].to_vec(),
        })
    }

    /// Serialize as a complete RTCP packet.
    pub fn build(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.sender_ssrc.to_be_bytes());
        body.extend_from_slice(&self.media_ssrc.to_be_bytes());
        body.extend_from_slice(&self.fci);
        while body.len() % 4 != 0 {
            body.push(0);
        }
        build_raw(self.fmt, self.packet_type, &body)
    }
}

/// Serialize a raw RTCP packet from header fields and a 4-byte-aligned body.
pub fn build_raw(count: u8, packet_type: u8, body: &[u8]) -> Vec<u8> {
    debug_assert!(body.len().is_multiple_of(4), "rtcp body must be 32-bit aligned");
    let mut out = Vec::with_capacity(4 + body.len());
    out.push((2 << 6) | (count & 0x1F));
    out.push(packet_type);
    out.extend_from_slice(&((body.len() / 4) as u16).to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// Build a BYE packet for the given sources.
pub fn build_bye(ssrcs: &[u32]) -> Vec<u8> {
    let mut body = Vec::new();
    for s in ssrcs {
        body.extend_from_slice(&s.to_be_bytes());
    }
    build_raw(ssrcs.len() as u8, packet_type::BYE, &body)
}

/// The SRTCP trailer appended to an encrypted compound packet (RFC 3711 §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrtcpTrailer {
    /// The E (encryption) flag.
    pub encrypted: bool,
    /// The 31-bit SRTCP index.
    pub index: u32,
    /// Length of the authentication tag that followed the index (bytes).
    pub auth_tag_len: usize,
}

impl SrtcpTrailer {
    /// Parse a trailer from the last `4 + auth_tag_len` bytes of `trailer`.
    ///
    /// RFC 3711 mandates an authentication tag (typically 10 bytes for the
    /// default HMAC-SHA1-80). Google Meet omits it on relayed Wi-Fi calls
    /// (paper §5.2.3) — pass `auth_tag_len = 0` to parse those 4-byte
    /// trailers; the compliance layer flags the missing tag.
    pub fn parse(trailer: &[u8], auth_tag_len: usize) -> Result<SrtcpTrailer> {
        if trailer.len() < 4 + auth_tag_len {
            return Err(WireError::truncated(P, trailer.len()));
        }
        let base = trailer.len() - 4 - auth_tag_len;
        let word = field::u32_at(P, trailer, base)?;
        Ok(SrtcpTrailer { encrypted: word & 0x8000_0000 != 0, index: word & 0x7FFF_FFFF, auth_tag_len })
    }

    /// Serialize the trailer, deriving `auth_tag_len` pseudorandom tag
    /// bytes from `tag_seed` (a real tag is an HMAC — uniformly random to
    /// any observer, which matters to DPI validation realism).
    pub fn build(&self, tag_seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.auth_tag_len);
        let word = (self.index & 0x7FFF_FFFF) | ((self.encrypted as u32) << 31);
        out.extend_from_slice(&word.to_be_bytes());
        let mut state = tag_seed ^ 0x9E37_79B9_7F4A_7C15;
        while out.len() < 4 + self.auth_tag_len {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let bytes = (z ^ (z >> 31)).to_le_bytes();
            let need = 4 + self.auth_tag_len - out.len();
            out.extend_from_slice(&bytes[..need.min(8)]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(ssrc: u32) -> ReportBlock {
        ReportBlock {
            ssrc,
            fraction_lost: 12,
            cumulative_lost: -3,
            highest_seq: 0x0001_F00D,
            jitter: 88,
            last_sr: 0xDEAD_BEEF,
            delay_since_last_sr: 6553,
        }
    }

    #[test]
    fn sender_report_roundtrip() {
        let sr = SenderReport {
            ssrc: 0x1234_5678,
            ntp_timestamp: 0xE000_0000_8000_0000,
            rtp_timestamp: 160_000,
            packet_count: 500,
            octet_count: 64_000,
            reports: vec![sample_block(0xAAAA_0001), sample_block(0xAAAA_0002)],
        };
        let bytes = sr.build();
        let p = Packet::new_checked(&bytes).unwrap();
        assert_eq!(p.packet_type(), packet_type::SR);
        assert_eq!(p.count(), 2);
        assert_eq!(p.wire_len(), bytes.len());
        assert_eq!(p.ssrc(), Some(0x1234_5678));
        assert_eq!(SenderReport::parse(&p).unwrap(), sr);
    }

    #[test]
    fn receiver_report_roundtrip() {
        let rr = ReceiverReport { ssrc: 42, reports: vec![sample_block(7)] };
        let bytes = rr.build();
        let p = Packet::new_checked(&bytes).unwrap();
        assert_eq!(ReceiverReport::parse(&p).unwrap(), rr);
    }

    #[test]
    fn negative_cumulative_loss_sign_extends() {
        let rr = ReceiverReport { ssrc: 1, reports: vec![sample_block(2)] };
        let parsed = ReceiverReport::parse(&Packet::new_checked(&rr.build()).unwrap()).unwrap();
        assert_eq!(parsed.reports[0].cumulative_lost, -3);
    }

    #[test]
    fn sdes_roundtrip() {
        let sdes =
            Sdes { chunks: vec![SdesChunk { ssrc: 99, items: vec![(sdes_item::CNAME, b"user@host".to_vec())] }] };
        let bytes = sdes.build();
        let p = Packet::new_checked(&bytes).unwrap();
        assert_eq!(p.packet_type(), packet_type::SDES);
        assert_eq!(Sdes::parse(&p).unwrap(), sdes);
    }

    #[test]
    fn app_roundtrip() {
        let app = App { subtype: 3, ssrc: 77, name: *b"qos ", data: vec![1, 2, 3, 4] };
        let p_bytes = app.build();
        let p = Packet::new_checked(&p_bytes).unwrap();
        assert_eq!(App::parse(&p).unwrap(), app);
    }

    #[test]
    fn feedback_roundtrip() {
        let fb = Feedback {
            packet_type: packet_type::RTPFB,
            fmt: rtpfb_fmt::TRANSPORT_CC,
            sender_ssrc: 0x0B0B_0B0B,
            media_ssrc: 0x0C0C_0C0C,
            fci: vec![0; 8],
        };
        let bytes = fb.build();
        let p = Packet::new_checked(&bytes).unwrap();
        assert_eq!(Feedback::parse(&p).unwrap(), fb);
    }

    #[test]
    fn zero_sender_ssrc_parses() {
        // Discord uses sender SSRC 0 in ~25% of type-205 feedback (paper §5.3).
        let fb = Feedback {
            packet_type: packet_type::RTPFB,
            fmt: rtpfb_fmt::NACK,
            sender_ssrc: 0,
            media_ssrc: 5,
            fci: vec![0, 1, 0, 0],
        };
        let p_bytes = fb.build();
        let parsed = Feedback::parse(&Packet::new_checked(&p_bytes).unwrap()).unwrap();
        assert_eq!(parsed.sender_ssrc, 0);
    }

    #[test]
    fn bye_parses() {
        let bytes = build_bye(&[1, 2, 3]);
        let p = Packet::new_checked(&bytes).unwrap();
        assert_eq!(p.packet_type(), packet_type::BYE);
        assert_eq!(p.count(), 3);
        assert_eq!(p.body().len(), 12);
    }

    #[test]
    fn compound_splits_and_exposes_trailer() {
        let mut dgram = SenderReport {
            ssrc: 1,
            ntp_timestamp: 2,
            rtp_timestamp: 3,
            packet_count: 4,
            octet_count: 5,
            reports: vec![],
        }
        .build();
        dgram.extend_from_slice(
            &Sdes { chunks: vec![SdesChunk { ssrc: 1, items: vec![(sdes_item::CNAME, b"x".to_vec())] }] }.build(),
        );
        // Discord-style 3-byte proprietary trailer (paper §5.3).
        dgram.extend_from_slice(&[0x00, 0x2A, 0x80]);
        let (packets, trailer) = split_compound(&dgram);
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0].packet_type(), packet_type::SR);
        assert_eq!(packets[1].packet_type(), packet_type::SDES);
        assert_eq!(trailer, &[0x00, 0x2A, 0x80]);
    }

    #[test]
    fn compound_iter_matches_split() {
        let mut dgram = build_bye(&[9]);
        dgram.extend_from_slice(&build_bye(&[10]));
        let mut it = CompoundIter::new(&dgram);
        assert_eq!(it.next().unwrap().packet_type(), packet_type::BYE);
        assert_eq!(it.next().unwrap().packet_type(), packet_type::BYE);
        assert!(it.next().is_none());
        assert!(it.remainder().is_empty());
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = build_bye(&[1]);
        bytes[0] = (bytes[0] & 0x3F) | (1 << 6);
        assert!(Packet::new_checked(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated_declared_length() {
        let bytes = build_bye(&[1, 2]);
        assert!(Packet::new_checked(&bytes[..8]).unwrap_err().is_truncated());
    }

    #[test]
    fn srtcp_trailer_roundtrip() {
        let t = SrtcpTrailer { encrypted: true, index: 1234, auth_tag_len: 10 };
        let bytes = t.build(7);
        assert_eq!(bytes.len(), 14);
        assert_eq!(SrtcpTrailer::parse(&bytes, 10).unwrap(), t);
    }

    #[test]
    fn srtcp_trailer_without_tag() {
        // Google Meet's relayed-Wi-Fi trailer: E-flag + index only (paper §5.2.3).
        let t = SrtcpTrailer { encrypted: true, index: 55, auth_tag_len: 0 };
        let bytes = t.build(0);
        assert_eq!(bytes.len(), 4);
        let parsed = SrtcpTrailer::parse(&bytes, 0).unwrap();
        assert!(parsed.encrypted);
        assert_eq!(parsed.index, 55);
        assert_eq!(parsed.auth_tag_len, 0);
    }
}
