//! RTCP Extended Reports (XR, RFC 3611) — structured block parsing and
//! building for the block types RTC stacks actually ship.
//!
//! The compliance layer only needs block-type registry checks for the
//! paper's tables, but a downstream user dissecting Meet-style traffic
//! wants the block *contents*; this module provides typed views for the
//! common blocks and a raw escape hatch for the rest.

use crate::rtcp::{self, Packet};
use crate::{field, Result, WireError, WireProtocol};

/// Protocol tag for every error this module raises.
const P: WireProtocol = WireProtocol::Xr;

/// XR block types (RFC 3611 §4, plus widely deployed extensions).
pub mod block_type {
    /// Loss RLE report.
    pub const LOSS_RLE: u8 = 1;
    /// Duplicate RLE report.
    pub const DUP_RLE: u8 = 2;
    /// Packet receipt times.
    pub const RECEIPT_TIMES: u8 = 3;
    /// Receiver reference time.
    pub const RECEIVER_REFERENCE_TIME: u8 = 4;
    /// DLRR (delay since last receiver report).
    pub const DLRR: u8 = 5;
    /// Statistics summary.
    pub const STATISTICS_SUMMARY: u8 = 6;
    /// VoIP metrics.
    pub const VOIP_METRICS: u8 = 7;
}

/// One parsed XR block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Block {
    /// Receiver Reference Time (block type 4).
    ReceiverReferenceTime {
        /// 64-bit NTP timestamp.
        ntp_timestamp: u64,
    },
    /// DLRR (block type 5): one sub-block per SSRC.
    Dlrr {
        /// `(ssrc, last RR timestamp, delay since last RR)` triples.
        sub_blocks: Vec<(u32, u32, u32)>,
    },
    /// Statistics Summary (block type 6).
    StatisticsSummary {
        /// Source being reported on.
        ssrc: u32,
        /// Sequence range `[begin, end]`.
        begin_seq: u16,
        /// End of the range.
        end_seq: u16,
        /// Lost packets in the range.
        lost_packets: u32,
        /// Duplicate packets in the range.
        dup_packets: u32,
    },
    /// Any other (or vendor) block, kept raw.
    Raw {
        /// Block type.
        block_type: u8,
        /// Type-specific byte.
        type_specific: u8,
        /// Block contents.
        data: Vec<u8>,
    },
}

impl Block {
    /// The block-type code this block serializes as.
    pub fn block_type(&self) -> u8 {
        match self {
            Block::ReceiverReferenceTime { .. } => block_type::RECEIVER_REFERENCE_TIME,
            Block::Dlrr { .. } => block_type::DLRR,
            Block::StatisticsSummary { .. } => block_type::STATISTICS_SUMMARY,
            Block::Raw { block_type, .. } => *block_type,
        }
    }

    fn emit(&self, out: &mut Vec<u8>) {
        match self {
            Block::ReceiverReferenceTime { ntp_timestamp } => {
                out.push(block_type::RECEIVER_REFERENCE_TIME);
                out.push(0);
                out.extend_from_slice(&2u16.to_be_bytes());
                out.extend_from_slice(&ntp_timestamp.to_be_bytes());
            }
            Block::Dlrr { sub_blocks } => {
                out.push(block_type::DLRR);
                out.push(0);
                out.extend_from_slice(&((sub_blocks.len() * 3) as u16).to_be_bytes());
                for (ssrc, last_rr, delay) in sub_blocks {
                    out.extend_from_slice(&ssrc.to_be_bytes());
                    out.extend_from_slice(&last_rr.to_be_bytes());
                    out.extend_from_slice(&delay.to_be_bytes());
                }
            }
            Block::StatisticsSummary { ssrc, begin_seq, end_seq, lost_packets, dup_packets } => {
                out.push(block_type::STATISTICS_SUMMARY);
                out.push(0);
                out.extend_from_slice(&9u16.to_be_bytes());
                out.extend_from_slice(&ssrc.to_be_bytes());
                out.extend_from_slice(&begin_seq.to_be_bytes());
                out.extend_from_slice(&end_seq.to_be_bytes());
                out.extend_from_slice(&lost_packets.to_be_bytes());
                out.extend_from_slice(&dup_packets.to_be_bytes());
                // jitter (min/max/mean/dev) and ToH fields zeroed (not
                // modeled): 20 bytes completing the 9-word block.
                out.extend_from_slice(&[0u8; 20]);
            }
            Block::Raw { block_type, type_specific, data } => {
                debug_assert!(data.len() % 4 == 0);
                out.push(*block_type);
                out.push(*type_specific);
                out.extend_from_slice(&((data.len() / 4) as u16).to_be_bytes());
                out.extend_from_slice(data);
            }
        }
    }
}

/// A parsed XR packet: originator plus blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xr {
    /// The originating SSRC.
    pub ssrc: u32,
    /// The report blocks, in order.
    pub blocks: Vec<Block>,
}

impl Xr {
    /// Parse an XR packet's body.
    pub fn parse(packet: &Packet<'_>) -> Result<Xr> {
        if packet.packet_type() != rtcp::packet_type::XR {
            return Err(WireError::malformed(P, 1, "not an xr packet"));
        }
        let b = packet.body();
        let ssrc = field::u32_at(P, b, 0)?;
        let mut blocks = Vec::new();
        let mut o = 4;
        while o + 4 <= b.len() {
            let bt = b[o];
            let type_specific = b[o + 1];
            let words = field::u16_at(P, b, o + 2)? as usize;
            let data = field::slice_at(P, b, o + 4, 4 * words)?;
            blocks.push(match bt {
                block_type::RECEIVER_REFERENCE_TIME if words == 2 => {
                    Block::ReceiverReferenceTime { ntp_timestamp: field::u64_at(P, data, 0)? }
                }
                block_type::DLRR if words.is_multiple_of(3) => {
                    let mut sub_blocks = Vec::new();
                    for i in 0..words / 3 {
                        sub_blocks.push((
                            field::u32_at(P, data, 12 * i)?,
                            field::u32_at(P, data, 12 * i + 4)?,
                            field::u32_at(P, data, 12 * i + 8)?,
                        ));
                    }
                    Block::Dlrr { sub_blocks }
                }
                block_type::STATISTICS_SUMMARY if words == 9 => Block::StatisticsSummary {
                    ssrc: field::u32_at(P, data, 0)?,
                    begin_seq: field::u16_at(P, data, 4)?,
                    end_seq: field::u16_at(P, data, 6)?,
                    lost_packets: field::u32_at(P, data, 8)?,
                    dup_packets: field::u32_at(P, data, 12)?,
                },
                _ => Block::Raw { block_type: bt, type_specific, data: data.to_vec() },
            });
            o += 4 + 4 * words;
        }
        if o != b.len() {
            return Err(WireError::malformed(P, o, "blocks do not tile the body"));
        }
        Ok(Xr { ssrc, blocks })
    }

    /// Serialize as a complete RTCP packet.
    pub fn build(&self) -> Vec<u8> {
        let mut body = self.ssrc.to_be_bytes().to_vec();
        for block in &self.blocks {
            block.emit(&mut body);
        }
        rtcp::build_raw(0, rtcp::packet_type::XR, &body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_reference_time_roundtrip() {
        let xr = Xr {
            ssrc: 0x0102_0304,
            blocks: vec![Block::ReceiverReferenceTime { ntp_timestamp: 0xE600_0001_8000_0000 }],
        };
        let bytes = xr.build();
        let p = Packet::new_checked(&bytes).unwrap();
        assert_eq!(Xr::parse(&p).unwrap(), xr);
    }

    #[test]
    fn dlrr_roundtrip() {
        let xr = Xr { ssrc: 9, blocks: vec![Block::Dlrr { sub_blocks: vec![(1, 2, 3), (4, 5, 6)] }] };
        let p_bytes = xr.build();
        let parsed = Xr::parse(&Packet::new_checked(&p_bytes).unwrap()).unwrap();
        assert_eq!(parsed, xr);
    }

    #[test]
    fn statistics_summary_roundtrip() {
        let xr = Xr {
            ssrc: 7,
            blocks: vec![Block::StatisticsSummary {
                ssrc: 0xAA,
                begin_seq: 100,
                end_seq: 230,
                lost_packets: 4,
                dup_packets: 1,
            }],
        };
        let parsed = Xr::parse(&Packet::new_checked(&xr.build()).unwrap()).unwrap();
        assert_eq!(parsed, xr);
    }

    #[test]
    fn mixed_and_unknown_blocks() {
        let xr = Xr {
            ssrc: 1,
            blocks: vec![
                Block::ReceiverReferenceTime { ntp_timestamp: 42 },
                Block::Raw { block_type: 200, type_specific: 7, data: vec![1, 2, 3, 4, 5, 6, 7, 8] },
            ],
        };
        let parsed = Xr::parse(&Packet::new_checked(&xr.build()).unwrap()).unwrap();
        assert_eq!(parsed.blocks.len(), 2);
        assert_eq!(parsed, xr);
    }

    #[test]
    fn truncated_block_rejected() {
        let xr = Xr { ssrc: 1, blocks: vec![Block::ReceiverReferenceTime { ntp_timestamp: 42 }] };
        let mut bytes = xr.build();
        // Inflate the declared block length past the packet body.
        bytes[4 + 4 + 2] = 0;
        bytes[4 + 4 + 3] = 40;
        let p = Packet::new_checked(&bytes);
        // The packet-level length no longer matches: either the checked
        // parse or the block walk must fail.
        if let Ok(p) = p {
            assert!(Xr::parse(&p).is_err());
        }
    }

    #[test]
    fn non_xr_rejected() {
        let bye = rtcp::build_bye(&[1]);
        let p = Packet::new_checked(&bye).unwrap();
        assert!(Xr::parse(&p).is_err());
    }
}
