//! Minimal TLS parsing: just enough to extract the Server Name Indication
//! from a ClientHello, which is what the stage-2 traffic filter inspects
//! (paper §3.2.2, "TLS SNI-based filtering").
//!
//! A builder is included so the background-traffic generators can emit
//! realistic ClientHello records for the filter to match against.

use crate::{field, Result, WireError, WireProtocol};

/// Protocol tag for every error this module raises.
const P: WireProtocol = WireProtocol::Tls;

/// TLS record content type for handshake messages.
pub const CONTENT_TYPE_HANDSHAKE: u8 = 22;

/// Handshake message type for ClientHello.
pub const HANDSHAKE_CLIENT_HELLO: u8 = 1;

/// Extension type for server_name (RFC 6066).
pub const EXT_SERVER_NAME: u16 = 0;

/// Extract the SNI hostname from a TLS ClientHello record, if present.
///
/// Returns `Ok(None)` for a well-formed ClientHello without an SNI
/// extension; `Err` for anything that is not a ClientHello record.
pub fn client_hello_sni(record: &[u8]) -> Result<Option<String>> {
    // TLS record header: type(1) version(2) length(2).
    if field::u8_at(P, record, 0)? != CONTENT_TYPE_HANDSHAKE {
        return Err(WireError::malformed(P, 0, "not a handshake record"));
    }
    let record_len = field::u16_at(P, record, 3)? as usize;
    let body = field::slice_at(P, record, 5, record_len)?;
    // Handshake header: type(1) length(3).
    if field::u8_at(P, body, 0)? != HANDSHAKE_CLIENT_HELLO {
        return Err(WireError::malformed(P, 5, "not a client hello"));
    }
    let hs_len = ((field::u8_at(P, body, 1)? as usize) << 16)
        | ((field::u8_at(P, body, 2)? as usize) << 8)
        | field::u8_at(P, body, 3)? as usize;
    let hello = field::slice_at(P, body, 4, hs_len)?;
    // legacy_version(2) random(32) session_id cipher_suites compression extensions.
    let mut o = 2 + 32;
    let sid_len = field::u8_at(P, hello, o)? as usize;
    o += 1 + sid_len;
    let cs_len = field::u16_at(P, hello, o)? as usize;
    o += 2 + cs_len;
    let comp_len = field::u8_at(P, hello, o)? as usize;
    o += 1 + comp_len;
    if o >= hello.len() {
        return Ok(None); // no extensions block
    }
    let ext_total = field::u16_at(P, hello, o)? as usize;
    o += 2;
    let exts = field::slice_at(P, hello, o, ext_total)?;
    let mut e = 0;
    while e + 4 <= exts.len() {
        let ext_type = field::u16_at(P, exts, e)?;
        let ext_len = field::u16_at(P, exts, e + 2)? as usize;
        let ext_data = field::slice_at(P, exts, e + 4, ext_len)?;
        if ext_type == EXT_SERVER_NAME {
            // server_name_list: len(2) { type(1) len(2) name }.
            let _list_len = field::u16_at(P, ext_data, 0)?;
            let name_type = field::u8_at(P, ext_data, 2)?;
            if name_type != 0 {
                return Err(WireError::malformed(P, e + 6, "sni name type"));
            }
            let name_len = field::u16_at(P, ext_data, 3)? as usize;
            let name = field::slice_at(P, ext_data, 5, name_len)?;
            return Ok(Some(String::from_utf8_lossy(name).into_owned()));
        }
        e += 4 + ext_len;
    }
    Ok(None)
}

/// Build a minimal but well-formed ClientHello record carrying `sni`
/// (or no SNI extension when `sni` is `None`).
pub fn build_client_hello(sni: Option<&str>, random: [u8; 32]) -> Vec<u8> {
    let mut hello = Vec::new();
    hello.extend_from_slice(&0x0303u16.to_be_bytes()); // legacy_version TLS1.2
    hello.extend_from_slice(&random);
    hello.push(0); // empty session id
    let suites: [u16; 3] = [0x1301, 0x1302, 0x1303];
    hello.extend_from_slice(&((suites.len() * 2) as u16).to_be_bytes());
    for s in suites {
        hello.extend_from_slice(&s.to_be_bytes());
    }
    hello.push(1); // one compression method
    hello.push(0); // null
    let mut exts = Vec::new();
    if let Some(name) = sni {
        let name = name.as_bytes();
        let mut ext = Vec::new();
        ext.extend_from_slice(&((name.len() + 3) as u16).to_be_bytes()); // list len
        ext.push(0); // host_name
        ext.extend_from_slice(&(name.len() as u16).to_be_bytes());
        ext.extend_from_slice(name);
        exts.extend_from_slice(&EXT_SERVER_NAME.to_be_bytes());
        exts.extend_from_slice(&(ext.len() as u16).to_be_bytes());
        exts.extend_from_slice(&ext);
    }
    // supported_versions extension, for realism.
    exts.extend_from_slice(&43u16.to_be_bytes());
    exts.extend_from_slice(&3u16.to_be_bytes());
    exts.extend_from_slice(&[2, 0x03, 0x04]);
    hello.extend_from_slice(&(exts.len() as u16).to_be_bytes());
    hello.extend_from_slice(&exts);

    let mut hs = Vec::new();
    hs.push(HANDSHAKE_CLIENT_HELLO);
    hs.extend_from_slice(&(hello.len() as u32).to_be_bytes()[1..]);
    hs.extend_from_slice(&hello);

    let mut record = Vec::new();
    record.push(CONTENT_TYPE_HANDSHAKE);
    record.extend_from_slice(&0x0301u16.to_be_bytes());
    record.extend_from_slice(&(hs.len() as u16).to_be_bytes());
    record.extend_from_slice(&hs);
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sni_roundtrip() {
        let rec = build_client_hello(Some("oauth2.googleapis.com"), [7; 32]);
        assert_eq!(client_hello_sni(&rec).unwrap().as_deref(), Some("oauth2.googleapis.com"));
    }

    #[test]
    fn no_sni_extension() {
        let rec = build_client_hello(None, [0; 32]);
        assert_eq!(client_hello_sni(&rec).unwrap(), None);
    }

    #[test]
    fn rejects_non_handshake_record() {
        let mut rec = build_client_hello(Some("a.example"), [1; 32]);
        rec[0] = 23; // application data
        assert!(client_hello_sni(&rec).is_err());
    }

    #[test]
    fn rejects_non_client_hello() {
        let mut rec = build_client_hello(Some("a.example"), [1; 32]);
        rec[5] = 2; // ServerHello
        assert!(client_hello_sni(&rec).is_err());
    }

    #[test]
    fn rejects_truncated_record() {
        let rec = build_client_hello(Some("host.example.com"), [2; 32]);
        assert!(client_hello_sni(&rec[..rec.len() - 4]).unwrap_err().is_truncated());
    }

    #[test]
    fn empty_input_truncated() {
        let err = client_hello_sni(&[]).unwrap_err();
        assert!(err.is_truncated());
        assert_eq!(err.protocol, WireProtocol::Tls);
    }
}
