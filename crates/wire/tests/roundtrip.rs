//! Build↔parse round-trip properties for every `rtc-wire` builder.
//!
//! Each property serializes structured fields through the crate's builder
//! and re-parses the bytes through the corresponding checked parser,
//! asserting that every field survives. These are the inverse guarantees
//! the differential oracle (`rtc-oracle`) leans on: if a builder and its
//! parser disagree, golden vectors and synthetic captures stop meaning
//! what the study thinks they mean.

use proptest::prelude::*;
use rtc_wire::quic::{Header, LongHeader, LongType, ShortHeader};
use rtc_wire::rtcp::{
    self, packet_type, App, Feedback, Packet as RtcpPacket, ReceiverReport, ReportBlock, Sdes, SdesChunk,
    SenderReport, SrtcpTrailer,
};
use rtc_wire::rtp::{Packet as RtpPacket, PacketBuilder};
use rtc_wire::stun::{attr, ChannelData, Message, MessageBuilder, MAGIC_COOKIE};

// ---------------------------------------------------------------- STUN ----

/// Valid STUN message types: the top two bits must be clear (RFC 5389 §6).
fn stun_type() -> impl Strategy<Value = u16> {
    0u16..0x4000
}

/// Attribute sets that steer clear of FINGERPRINT (0x8028), which carries
/// its own semantics in `verify_fingerprint`.
fn stun_attrs() -> impl Strategy<Value = Vec<(u16, Vec<u8>)>> {
    proptest::collection::vec((0u16..0x8000, proptest::collection::vec(any::<u8>(), 0..40)), 0..5)
}

proptest! {
    #[test]
    fn stun_builder_roundtrips(
        message_type in stun_type(),
        txid in any::<[u8; 12]>(),
        attrs in stun_attrs(),
    ) {
        let mut b = MessageBuilder::new(message_type, txid);
        for (t, v) in &attrs {
            b = b.attribute(*t, v.clone());
        }
        let bytes = b.build();

        let msg = Message::new_checked(&bytes).expect("built message parses");
        prop_assert_eq!(msg.message_type(), message_type);
        prop_assert_eq!(msg.transaction_id(), &txid[..]);
        prop_assert!(msg.has_magic_cookie());
        prop_assert_eq!(msg.wire_len(), bytes.len());
        // Attribute padding is on the wire but must not leak into values.
        prop_assert_eq!(msg.declared_length() % 4, 0);
        let parsed: Vec<(u16, Vec<u8>)> = msg
            .attributes()
            .map(|a| a.map(|a| (a.typ, a.value.to_vec())))
            .collect::<Result<_, _>>()
            .expect("built attributes walk cleanly");
        prop_assert_eq!(parsed, attrs);
    }

    #[test]
    fn stun_legacy_builder_roundtrips(
        message_type in stun_type(),
        prefix in any::<[u8; 4]>(),
        txid in any::<[u8; 12]>(),
    ) {
        let bytes = MessageBuilder::new_legacy(message_type, prefix, txid).build();
        let msg = Message::new_checked(&bytes).expect("legacy message parses");
        prop_assert_eq!(msg.message_type(), message_type);
        let mut legacy = prefix.to_vec();
        legacy.extend_from_slice(&txid);
        prop_assert_eq!(msg.legacy_transaction_id(), &legacy[..]);
        prop_assert_eq!(msg.has_magic_cookie(), u32::from_be_bytes(prefix) == MAGIC_COOKIE);
    }

    #[test]
    fn stun_fingerprint_survives_roundtrip_and_detects_corruption(
        message_type in stun_type(),
        txid in any::<[u8; 12]>(),
        attrs in stun_attrs(),
    ) {
        let mut b = MessageBuilder::new(message_type, txid);
        for (t, v) in &attrs {
            b = b.attribute(*t, v.clone());
        }
        let bytes = b.build_with_fingerprint();
        let msg = Message::new_checked(&bytes).expect("fingerprinted message parses");
        prop_assert_eq!(msg.verify_fingerprint(), Some(true));
        prop_assert!(msg.attribute(attr::FINGERPRINT).is_some());

        // Any corruption of the covered bytes must invalidate the CRC.
        let mut corrupt = bytes.clone();
        let n = corrupt.len();
        corrupt[n - 1] ^= 0xFF;
        let msg = Message::new_checked(&corrupt).expect("corrupted message still frames");
        prop_assert_eq!(msg.verify_fingerprint(), Some(false));
    }

    #[test]
    fn channeldata_roundtrips(
        channel in 0x4000u16..=0x7FFF,
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let bytes = ChannelData::build(channel, &data);
        let cd = ChannelData::new_checked(&bytes).expect("built frame parses");
        prop_assert_eq!(cd.channel_number(), channel);
        prop_assert_eq!(cd.declared_length(), data.len());
        prop_assert_eq!(cd.data(), &data[..]);
        prop_assert_eq!(cd.wire_len(), bytes.len());
    }
}

// ----------------------------------------------------------------- RTP ----

/// One-byte-form elements: IDs 1–14, 1–16 data bytes each.
fn one_byte_elements() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    proptest::collection::vec((1u8..=14, proptest::collection::vec(any::<u8>(), 1..17)), 1..4)
}

/// Two-byte-form elements: IDs 1–255, 0–40 data bytes each.
fn two_byte_elements() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    proptest::collection::vec((1u8..=255, proptest::collection::vec(any::<u8>(), 0..40)), 1..4)
}

proptest! {
    #[test]
    fn rtp_builder_roundtrips(
        payload_type in 0u8..=127,
        seq in any::<u16>(),
        timestamp in any::<u32>(),
        ssrc in any::<u32>(),
        marker in any::<bool>(),
        csrcs in proptest::collection::vec(any::<u32>(), 0..5),
        payload in proptest::collection::vec(any::<u8>(), 0..120),
        padding in 0usize..40,
    ) {
        let mut b = PacketBuilder::new(payload_type, seq, timestamp, ssrc).marker(marker);
        for c in &csrcs {
            b = b.csrc(*c);
        }
        let bytes = b.payload(payload.clone()).padding(padding).build();

        let p = RtpPacket::new_checked(&bytes).expect("built packet parses");
        prop_assert_eq!(p.version(), 2);
        prop_assert_eq!(p.payload_type(), payload_type);
        prop_assert_eq!(p.sequence_number(), seq);
        prop_assert_eq!(p.timestamp(), timestamp);
        prop_assert_eq!(p.ssrc(), ssrc);
        prop_assert_eq!(p.marker(), marker);
        prop_assert_eq!(p.csrcs().collect::<Vec<_>>(), csrcs);
        prop_assert_eq!(p.has_padding(), padding > 0);
        prop_assert_eq!(p.padding_len(), padding);
        prop_assert_eq!(p.payload(), &payload[..]);
        prop_assert!(!p.has_extension());
    }

    #[test]
    fn rtp_raw_extension_roundtrips(
        profile in any::<u16>(),
        data in proptest::collection::vec(any::<u8>(), 0..40),
        payload in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let bytes = PacketBuilder::new(96, 1, 2, 3).extension(profile, data.clone()).payload(payload).build();
        let p = RtpPacket::new_checked(&bytes).expect("built packet parses");
        let ext = p.extension().expect("extension present");
        prop_assert_eq!(ext.profile, profile);
        // The builder zero-pads the data to a 32-bit boundary.
        prop_assert_eq!(&ext.data[..data.len()], &data[..]);
        prop_assert!(ext.data.len() - data.len() < 4);
        prop_assert!(ext.data[data.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn rtp_one_byte_extension_roundtrips(elements in one_byte_elements()) {
        let refs: Vec<(u8, &[u8])> = elements.iter().map(|(id, v)| (*id, v.as_slice())).collect();
        let bytes = PacketBuilder::new(96, 1, 2, 3).one_byte_extension(&refs).payload(vec![0u8; 10]).build();
        let p = RtpPacket::new_checked(&bytes).expect("built packet parses");
        let ext = p.extension().expect("extension present");
        prop_assert!(ext.is_one_byte_form());
        let parsed: Vec<(u8, Vec<u8>)> =
            ext.one_byte_elements().iter().map(|e| (e.id, e.data.to_vec())).collect();
        prop_assert_eq!(parsed, elements);
    }

    #[test]
    fn rtp_two_byte_extension_roundtrips(appbits in 0u8..16, elements in two_byte_elements()) {
        let refs: Vec<(u8, &[u8])> = elements.iter().map(|(id, v)| (*id, v.as_slice())).collect();
        let bytes =
            PacketBuilder::new(96, 1, 2, 3).two_byte_extension(appbits, &refs).payload(vec![0u8; 10]).build();
        let p = RtpPacket::new_checked(&bytes).expect("built packet parses");
        let ext = p.extension().expect("extension present");
        prop_assert!(ext.is_two_byte_form());
        let parsed: Vec<(u8, Vec<u8>)> =
            ext.two_byte_elements().iter().map(|e| (e.id, e.data.to_vec())).collect();
        prop_assert_eq!(parsed, elements);
    }
}

// ---------------------------------------------------------------- RTCP ----

fn report_block() -> impl Strategy<Value = ReportBlock> {
    (
        (any::<u32>(), any::<u8>(), -0x0080_0000i32..0x0080_0000),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
    )
        .prop_map(|((ssrc, fraction_lost, cumulative_lost), (highest_seq, jitter, last_sr, delay))| {
            ReportBlock {
                ssrc,
                fraction_lost,
                cumulative_lost,
                highest_seq,
                jitter,
                last_sr,
                delay_since_last_sr: delay,
            }
        })
}

/// SDES items: nonzero type, value short enough for the one-byte length.
fn sdes_chunks() -> impl Strategy<Value = Vec<SdesChunk>> {
    proptest::collection::vec(
        (any::<u32>(), proptest::collection::vec((1u8..=8, proptest::collection::vec(any::<u8>(), 0..20)), 0..3))
            .prop_map(|(ssrc, items)| SdesChunk { ssrc, items }),
        1..4,
    )
}

/// Byte vectors whose length is a 32-bit multiple — APP data and feedback
/// FCI are zero-padded by the builders, so only aligned inputs round-trip
/// byte-exactly.
fn aligned_bytes(max_words: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max_words).prop_map(|mut v| {
        v.truncate(v.len() / 4 * 4);
        v
    })
}

proptest! {
    #[test]
    fn rtcp_sender_report_roundtrips(
        ssrc in any::<u32>(),
        ntp in any::<u64>(),
        rtp_ts in any::<u32>(),
        packets in any::<u32>(),
        octets in any::<u32>(),
        reports in proptest::collection::vec(report_block(), 0..4),
    ) {
        let sr = SenderReport {
            ssrc,
            ntp_timestamp: ntp,
            rtp_timestamp: rtp_ts,
            packet_count: packets,
            octet_count: octets,
            reports,
        };
        let bytes = sr.build();
        let p = RtcpPacket::new_checked(&bytes).expect("built packet frames");
        prop_assert_eq!(p.packet_type(), packet_type::SR);
        prop_assert_eq!(p.wire_len(), bytes.len());
        prop_assert_eq!(SenderReport::parse(&p).expect("parses"), sr);
    }

    #[test]
    fn rtcp_receiver_report_roundtrips(
        ssrc in any::<u32>(),
        reports in proptest::collection::vec(report_block(), 0..4),
    ) {
        let rr = ReceiverReport { ssrc, reports };
        let bytes = rr.build();
        let p = RtcpPacket::new_checked(&bytes).expect("built packet frames");
        prop_assert_eq!(p.packet_type(), packet_type::RR);
        prop_assert_eq!(ReceiverReport::parse(&p).expect("parses"), rr);
    }

    #[test]
    fn rtcp_sdes_roundtrips(chunks in sdes_chunks()) {
        let sdes = Sdes { chunks };
        let bytes = sdes.build();
        let p = RtcpPacket::new_checked(&bytes).expect("built packet frames");
        prop_assert_eq!(p.packet_type(), packet_type::SDES);
        prop_assert_eq!(Sdes::parse(&p).expect("parses"), sdes);
    }

    #[test]
    fn rtcp_app_roundtrips(
        subtype in 0u8..32,
        ssrc in any::<u32>(),
        name in any::<[u8; 4]>(),
        data in aligned_bytes(40),
    ) {
        let app = App { subtype, ssrc, name, data };
        let bytes = app.build();
        let p = RtcpPacket::new_checked(&bytes).expect("built packet frames");
        prop_assert_eq!(p.packet_type(), packet_type::APP);
        prop_assert_eq!(App::parse(&p).expect("parses"), app);
    }

    #[test]
    fn rtcp_feedback_roundtrips(
        is_psfb in any::<bool>(),
        fmt in 0u8..32,
        sender_ssrc in any::<u32>(),
        media_ssrc in any::<u32>(),
        fci in aligned_bytes(40),
    ) {
        let fb = Feedback {
            packet_type: if is_psfb { packet_type::PSFB } else { packet_type::RTPFB },
            fmt,
            sender_ssrc,
            media_ssrc,
            fci,
        };
        let bytes = fb.build();
        let p = RtcpPacket::new_checked(&bytes).expect("built packet frames");
        prop_assert_eq!(Feedback::parse(&p).expect("parses"), fb);
    }

    #[test]
    fn rtcp_bye_roundtrips(ssrcs in proptest::collection::vec(any::<u32>(), 0..6)) {
        let bytes = rtcp::build_bye(&ssrcs);
        let p = RtcpPacket::new_checked(&bytes).expect("built packet frames");
        prop_assert_eq!(p.packet_type(), packet_type::BYE);
        prop_assert_eq!(p.count() as usize, ssrcs.len());
        let parsed: Vec<u32> =
            p.body().chunks_exact(4).map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]])).collect();
        prop_assert_eq!(parsed, ssrcs);
    }

    #[test]
    fn srtcp_trailer_roundtrips(
        encrypted in any::<bool>(),
        index in 0u32..0x8000_0000,
        auth_tag_len in (0usize..4).prop_map(|i| [0usize, 4, 10, 16][i]),
        tag_seed in any::<u64>(),
    ) {
        let t = SrtcpTrailer { encrypted, index, auth_tag_len };
        let bytes = t.build(tag_seed);
        prop_assert_eq!(bytes.len(), 4 + auth_tag_len);
        prop_assert_eq!(SrtcpTrailer::parse(&bytes, auth_tag_len).expect("parses"), t);
        // The tag derivation is deterministic in the seed.
        prop_assert_eq!(t.build(tag_seed), bytes);
    }

    #[test]
    fn rtcp_compound_splits_back_into_its_packets(
        sr_ssrc in any::<u32>(),
        sdes_chunks in sdes_chunks(),
        bye_ssrcs in proptest::collection::vec(any::<u32>(), 1..4),
    ) {
        let sr = SenderReport {
            ssrc: sr_ssrc,
            ntp_timestamp: 1,
            rtp_timestamp: 2,
            packet_count: 3,
            octet_count: 4,
            reports: vec![],
        }
        .build();
        let sdes = Sdes { chunks: sdes_chunks }.build();
        let bye = rtcp::build_bye(&bye_ssrcs);
        let mut compound = sr.clone();
        compound.extend_from_slice(&sdes);
        compound.extend_from_slice(&bye);

        let (packets, remainder) = rtcp::split_compound(&compound);
        prop_assert_eq!(packets.len(), 3);
        prop_assert!(remainder.is_empty());
        prop_assert_eq!(packets[0].as_bytes(), &sr[..]);
        prop_assert_eq!(packets[1].as_bytes(), &sdes[..]);
        prop_assert_eq!(packets[2].as_bytes(), &bye[..]);
        prop_assert_eq!(
            [packets[0].packet_type(), packets[1].packet_type(), packets[2].packet_type()],
            [packet_type::SR, packet_type::SDES, packet_type::BYE]
        );
    }
}

// ---------------------------------------------------------------- QUIC ----

fn cid() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..21)
}

proptest! {
    #[test]
    fn quic_long_header_roundtrips(
        fixed_bit in any::<bool>(),
        type_bits in 0u8..4,
        type_specific in 0u8..16,
        version in any::<u32>(),
        dcid in cid(),
        scid in cid(),
    ) {
        let h = LongHeader {
            fixed_bit,
            long_type: LongType::from_bits(type_bits),
            type_specific,
            version,
            header_len: 7 + dcid.len() + scid.len(),
            dcid,
            scid,
        };
        let bytes = h.build();
        prop_assert_eq!(bytes.len(), h.header_len);
        prop_assert_eq!(LongHeader::parse(&bytes).expect("parses"), h.clone());
        prop_assert_eq!(Header::parse(&bytes, 0).expect("parses"), Header::Long(h));
    }

    #[test]
    fn quic_short_header_roundtrips(
        fixed_bit in any::<bool>(),
        spin in any::<bool>(),
        dcid in cid(),
    ) {
        let dcid_len = dcid.len();
        let h = ShortHeader { fixed_bit, spin, header_len: 1 + dcid_len, dcid };
        let bytes = h.build();
        prop_assert_eq!(bytes.len(), h.header_len);
        prop_assert_eq!(ShortHeader::parse(&bytes, dcid_len).expect("parses"), h.clone());
        prop_assert_eq!(Header::parse(&bytes, dcid_len).expect("parses"), Header::Short(h));
    }
}
