//! Drive one shard of the corpus, and merge all shards into the study
//! report.
//!
//! A shard's loop per owned call: deterministically regenerate the call
//! (same seed derivation as the batch driver), save it into the shared
//! corpus directory atomically, analyze it back off disk through the
//! chunk-streamed pipeline (`analyze_saved_call`, the `TraceReader`
//! arena path — peak memory stays O(chunk + one call's RTC traffic)),
//! fold the result into the shard's `Aggregator`, and checkpoint at the
//! configured record interval. A killed shard resumes from its last
//! checkpoint: completed calls are skipped (their corpus files are
//! already in place), the partial aggregation is restored, and the loop
//! continues as if never interrupted.
//!
//! The merge step validates every shard's final snapshot header, folds
//! the aggregators in shard order through the commutative
//! `Aggregator::merge`, canonically sorts the call list, and emits a
//! `StudyReport` whose rendering is byte-identical to a single-process
//! batch run of the same plan — the property the `study-scale` and
//! `checkpoint-resume` CI jobs pin.

use crate::checkpoint::{CheckpointHeader, ShardCheckpoint};
use crate::plan::CorpusPlan;
use rtc_core::capture::{save_call, scenario_for};
use rtc_core::pipeline::{self, StageKind};
use rtc_core::{absorb_analysis, FailedCall, StreamingStudy, StudyConfig, StudyReport};
use std::io;
use std::path::{Path, PathBuf};

/// Knobs of one shard run.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Checkpoint after at least this many newly decoded pcap records
    /// (call-boundary granularity; `0` = only the final snapshot).
    pub record_interval: u64,
    /// Pcap records resident per read in the streaming analyzer
    /// (`0` = reader default).
    pub chunk_records: usize,
    /// Re-judge every Nth shard-local call against the reference oracle
    /// (`0` = no oracle sampling).
    pub oracle_sample: usize,
    /// Test hook: complete at most this many calls in this invocation,
    /// then checkpoint and return (simulating an interrupted shard
    /// without process orchestration).
    pub stop_after_calls: Option<usize>,
}

impl Default for ShardOptions {
    fn default() -> ShardOptions {
        ShardOptions { record_interval: 50_000, chunk_records: 0, oracle_sample: 10, stop_after_calls: None }
    }
}

/// What one `run_shard` invocation accomplished.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard index.
    pub shard: usize,
    /// Shard-local calls completed in total (including resumed-over ones).
    pub calls: usize,
    /// Calls this shard owns.
    pub calls_owned: usize,
    /// Pcap records decoded in total.
    pub records: u64,
    /// Raw capture bytes analyzed in total.
    pub bytes: u64,
    /// Wall seconds accumulated across all invocations of this shard.
    pub elapsed_secs: f64,
    /// Whether this invocation picked up from an existing checkpoint.
    pub resumed: bool,
    /// `true` when `stop_after_calls` ended the invocation early (a
    /// checkpoint was written; the shard is not finished).
    pub stopped_early: bool,
}

/// Path of a shard's periodic checkpoint.
pub fn checkpoint_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.ckpt.json"))
}

/// Path of a shard's final snapshot (input of [`merge_shards`]).
pub fn done_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.done.json"))
}

fn shard_header(plan: &CorpusPlan, shard: usize) -> CheckpointHeader {
    CheckpointHeader { tier: plan.tier.clone(), seed: plan.experiment.seed, shards: plan.shards, shard }
}

/// The analysis configuration every shard (and the batch reference run)
/// uses: the plan's matrix, default filter/DPI settings, metrics off.
/// `shards` scales the intra-call DPI thread count so N shard processes
/// on one machine share the cores instead of oversubscribing N-fold;
/// analysis results are thread-count-invariant (pinned by the oracle
/// differential suite), so this cannot perturb report bytes.
pub fn shard_config(plan: &CorpusPlan, shards: usize) -> StudyConfig {
    let mut config = StudyConfig {
        experiment: plan.experiment.clone(),
        filter: Default::default(),
        dpi: Default::default(),
        obs: rtc_core::obs::MetricsRegistry::disabled(),
    };
    config.dpi.threads = (rtc_core::dpi::par::hardware_threads() / shards.max(1)).max(1);
    config
}

/// Run (or resume) one shard of the campaign under `dir`.
///
/// Returns early with `stopped_early` when `options.stop_after_calls`
/// fires. Exits the *process* (SIGTERM to self, exit code 143 as
/// fallback) when the `RTC_STUDY_KILL_SHARD` / `RTC_STUDY_KILL_AFTER_RECORDS`
/// fault-injection hook targets this shard — the `checkpoint-resume` CI
/// job uses this to kill a shard mid-run at a deterministic point.
pub fn run_shard(dir: &Path, shard: usize, options: &ShardOptions) -> io::Result<ShardOutcome> {
    let plan = CorpusPlan::load(dir)?;
    if shard >= plan.shards {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("shard index {shard} out of range: plan has {} shards", plan.shards),
        ));
    }
    let header = shard_header(&plan, shard);
    let ckpt_path = checkpoint_path(dir, shard);
    let done = done_path(dir, shard);
    let owned = plan.shard_calls(shard);

    // Already finished (e.g. a resume after only some shards died):
    // report the recorded outcome without redoing anything.
    if done.exists() {
        let state = ShardCheckpoint::load(&done, &header)?;
        return Ok(outcome_of(&state, shard, owned.len(), false, false));
    }

    let (mut state, resumed) = if ckpt_path.exists() {
        (ShardCheckpoint::load(&ckpt_path, &header)?, true)
    } else {
        (ShardCheckpoint::fresh(header), false)
    };

    let corpus = CorpusPlan::corpus_dir(dir);
    std::fs::create_dir_all(&corpus)?;
    let config = shard_config(&plan, plan.shards);
    let kill_after = kill_after_records(shard);

    let started = std::time::Instant::now();
    let base_elapsed = state.elapsed_secs;
    let mut records_at_last_ckpt = state.records;
    let mut completed_this_run = 0usize;

    for (ordinal, planned) in owned.iter().enumerate() {
        if ordinal < state.cursor {
            continue; // Done before the checkpoint; corpus file is in place.
        }
        if let Some(limit) = options.stop_after_calls {
            if completed_this_run >= limit {
                state.elapsed_secs = base_elapsed + started.elapsed().as_secs_f64();
                state.write_atomic(&ckpt_path)?;
                return Ok(outcome_of(&state, shard, owned.len(), resumed, true));
            }
        }

        // Regenerate deterministically and persist before analyzing: the
        // corpus is the ground truth the batch comparison re-reads.
        let scenario = scenario_for(&plan.experiment, planned.app, planned.network, planned.repeat);
        let cap = rtc_core::capture::synthesize_call(&scenario, planned.repeat);
        save_call(&corpus, &cap)?;
        let stem = format!("{}_{}_{}", cap.manifest.app, cap.manifest.network, cap.manifest.repeat);
        let pcap_path = corpus.join(format!("{stem}.pcap"));
        let manifest = cap.manifest.clone();
        drop(cap); // Only the on-disk copy feeds analysis, chunk by chunk.

        let analyzed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline::analyze_saved_call(&pcap_path, &manifest, &config, options.chunk_records)
        }));
        match analyzed {
            Ok(Ok((analysis, call_stats))) => {
                if options.oracle_sample > 0 && ordinal % options.oracle_sample == 0 {
                    let scenario = format!("{}/{}#{}", manifest.app, manifest.network, manifest.repeat);
                    let (messages, divergences) = rtc_oracle::rejudge_call(&scenario, &analysis);
                    state.oracle_calls += 1;
                    state.oracle_messages += messages;
                    if !divergences.is_empty() {
                        return Err(io::Error::other(format!(
                            "oracle re-judgement diverged on sampled call {scenario}: {}",
                            divergences[0]
                        )));
                    }
                }
                state.records += call_stats.stage(StageKind::Decode).items_in;
                state.bytes += analysis.record.raw_bytes as u64;
                state.stats.absorb(&call_stats);
                absorb_analysis(&mut state.aggregator, &mut state.stats, analysis, &config.obs);
            }
            Ok(Err(e)) => {
                return Err(io::Error::other(format!("shard {shard}: call {stem}: {e}")));
            }
            Err(panic) => {
                state.failures.push(FailedCall {
                    index: planned.index,
                    app: manifest.application().name().to_string(),
                    network: manifest.network.clone(),
                    error: rtc_core::panic_message(panic.as_ref()),
                });
            }
        }
        state.cursor = ordinal + 1;
        completed_this_run += 1;

        // Fault injection first: work since the last checkpoint is lost,
        // exactly like a real SIGTERM between checkpoints.
        if let Some(after) = kill_after {
            if state.records >= after {
                kill_self();
            }
        }
        if options.record_interval > 0 && state.records - records_at_last_ckpt >= options.record_interval {
            state.elapsed_secs = base_elapsed + started.elapsed().as_secs_f64();
            state.write_atomic(&ckpt_path)?;
            records_at_last_ckpt = state.records;
        }
    }

    state.elapsed_secs = base_elapsed + started.elapsed().as_secs_f64();
    state.write_atomic(&done)?;
    let _ = std::fs::remove_file(&ckpt_path);
    Ok(outcome_of(&state, shard, owned.len(), resumed, false))
}

fn outcome_of(
    state: &ShardCheckpoint,
    shard: usize,
    calls_owned: usize,
    resumed: bool,
    stopped_early: bool,
) -> ShardOutcome {
    ShardOutcome {
        shard,
        calls: state.cursor,
        calls_owned,
        records: state.records,
        bytes: state.bytes,
        elapsed_secs: state.elapsed_secs,
        resumed,
        stopped_early,
    }
}

fn kill_after_records(shard: usize) -> Option<u64> {
    let target: usize = std::env::var("RTC_STUDY_KILL_SHARD").ok()?.parse().ok()?;
    if target != shard {
        return None;
    }
    std::env::var("RTC_STUDY_KILL_AFTER_RECORDS").ok()?.parse().ok()
}

/// Die the way the `checkpoint-resume` CI job's victim dies: SIGTERM to
/// our own pid (via the `kill` utility — the workspace links no libc),
/// falling back to a bare `exit(143)` (128+SIGTERM) where no such
/// utility exists.
fn kill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill").args(["-TERM", &pid]).status();
    // Signal delivery may race `status()` returning; parking briefly
    // gives it time before the fallback exit.
    std::thread::sleep(std::time::Duration::from_millis(200));
    std::process::exit(143);
}

/// Per-shard summary carried alongside the merged report.
#[derive(Debug, Clone)]
pub struct MergedShard {
    /// Shard index.
    pub shard: usize,
    /// Calls the shard analyzed.
    pub calls: usize,
    /// Pcap records the shard decoded.
    pub records: u64,
    /// Raw capture bytes the shard analyzed.
    pub bytes: u64,
    /// Shard wall seconds (across resumes).
    pub elapsed_secs: f64,
}

/// The merged study: the report plus per-shard accounting.
#[derive(Debug)]
pub struct MergedStudy {
    /// The sealed, canonically sorted study report.
    pub report: StudyReport,
    /// Per-shard summaries, in shard order.
    pub shards: Vec<MergedShard>,
    /// Calls re-judged by the oracle sample, summed over shards.
    pub oracle_calls: usize,
    /// Messages the oracle re-judged, summed over shards.
    pub oracle_messages: usize,
}

/// Merge every shard's final snapshot under `dir` into one study report.
///
/// Fails with a clear message naming unfinished shards (and how to
/// resume) if any final snapshot is missing; validates every snapshot's
/// version/seed header against the plan before merging.
pub fn merge_shards(dir: &Path) -> io::Result<MergedStudy> {
    let plan = CorpusPlan::load(dir)?;
    let mut missing = Vec::new();
    let mut states = Vec::with_capacity(plan.shards);
    for shard in 0..plan.shards {
        let path = done_path(dir, shard);
        if !path.exists() {
            missing.push(shard.to_string());
            continue;
        }
        states.push(ShardCheckpoint::load(&path, &shard_header(&plan, shard))?);
    }
    if !missing.is_empty() {
        return Err(io::Error::other(format!(
            "shard(s) {} did not finish — resume the campaign with `rtc-study scale --resume {}`",
            missing.join(", "),
            dir.display(),
        )));
    }

    let mut merged = rtc_core::report::Aggregator::new();
    let mut stats = pipeline::PipelineStats::default();
    let mut failures = Vec::new();
    let mut shards = Vec::with_capacity(states.len());
    let mut oracle_calls = 0;
    let mut oracle_messages = 0;
    for state in states {
        shards.push(MergedShard {
            shard: state.header.shard,
            calls: state.cursor,
            records: state.records,
            bytes: state.bytes,
            elapsed_secs: state.elapsed_secs,
        });
        oracle_calls += state.oracle_calls;
        oracle_messages += state.oracle_messages;
        stats.absorb(&state.stats);
        failures.extend(state.failures);
        merged.merge(state.aggregator);
    }
    failures.sort_by_key(|f| f.index);

    let rtc_core::report::AggregateReport { mut data, findings, header_profiles } = merged.finish();
    data.sort_canonical();
    let report = StudyReport {
        data,
        findings,
        header_profiles,
        failures,
        pipeline: stats,
        metrics: rtc_core::obs::MetricsRegistry::disabled().snapshot(),
    };
    Ok(MergedStudy { report, shards, oracle_calls, oracle_messages })
}

/// The single-process batch reference for a sharded campaign: stream the
/// same corpus directory through the one-process driver with the same
/// analysis configuration. `StudyReport::render_all` of this and of
/// [`merge_shards`]'s report must agree byte for byte — the acceptance
/// property of the whole sharded runner.
pub fn batch_reference(dir: &Path, chunk_records: usize) -> io::Result<StudyReport> {
    let plan = CorpusPlan::load(dir)?;
    let config = shard_config(&plan, 1);
    let mut report = StreamingStudy::analyze_dir(CorpusPlan::corpus_dir(dir), &config, chunk_records, None)?;
    // The merged report is canonically sorted; sort the reference too so
    // even whole-struct comparisons (not just renders) line up.
    report.data.sort_canonical();
    Ok(report)
}
