//! The deterministic corpus planner: scale tiers, the persisted plan
//! file, and the round-robin shard partition of the experiment matrix.
//!
//! A plan is built **once**, at campaign start, and persisted to
//! `<dir>/plan.json`; every shard process and every resume loads the same
//! resolved plan from disk. Environment overrides (`RTC_STUDY_SECS`,
//! `RTC_STUDY_SCALE`, `RTC_STUDY_REPEATS` — the CI-sizing knobs) apply
//! only at build time, so a resumed run cannot silently drift from the
//! corpus it is resuming.

use rtc_apps::Application;
use rtc_core::capture::ExperimentConfig;
use rtc_netemu::NetworkConfig;
use serde_json::{json, Value};
use std::io;
use std::path::{Path, PathBuf};

/// File-format magic of `plan.json`.
pub const PLAN_MAGIC: &str = "rtc-study-plan";
/// Plan file-format version.
pub const PLAN_VERSION: u64 = 1;

/// A corpus scale tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The paper's dataset: the full matrix of 300-second calls at
    /// scale 1.0 (~20M datagrams across 6 apps × 3 networks × repeats).
    Paper,
    /// 10× the paper tier: same matrix, ten times the repeats.
    City,
}

impl Tier {
    /// Parse a `--tier` argument.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "paper" => Some(Tier::Paper),
            "city" => Some(Tier::City),
            _ => None,
        }
    }

    /// The tier's CLI / plan-file label.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Paper => "paper",
            Tier::City => "city",
        }
    }

    /// Resolve the tier into an experiment matrix, honoring the CI-sizing
    /// environment overrides (`RTC_STUDY_SECS` call seconds,
    /// `RTC_STUDY_SCALE` traffic-rate multiplier, `RTC_STUDY_REPEATS`
    /// repeats per cell — the same env-scaling idiom as
    /// `RTC_CONFORMANCE_CASES`). The city tier multiplies repeats by 10
    /// *after* the override, so it stays a 10× corpus at any budget.
    pub fn experiment(self, seed: u64) -> ExperimentConfig {
        let secs = env_u64("RTC_STUDY_SECS").unwrap_or(300);
        let scale = env_f64("RTC_STUDY_SCALE").unwrap_or(1.0);
        let mut e = ExperimentConfig::paper_matrix(secs, scale, seed);
        if let Some(repeats) = env_u64("RTC_STUDY_REPEATS") {
            e.repeats = repeats as usize;
        }
        if self == Tier::City {
            e.repeats *= 10;
        }
        e
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.parse().ok()
}

/// One planned call: its global matrix index plus the cell coordinates
/// the capture layer needs. The per-call trace seed is *not* stored — it
/// is derived from `(plan seed, app, repeat)` by `rtc_capture::scenario_for`,
/// exactly as the batch driver derives it, which is what makes a shard's
/// call bit-identical to the batch run's call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedCall {
    /// Position in the experiment-matrix enumeration (apps × networks ×
    /// repeats, repeats innermost) — also the shard-assignment key.
    pub index: usize,
    /// Application under test.
    pub app: Application,
    /// Network configuration.
    pub network: NetworkConfig,
    /// Repeat index within the cell.
    pub repeat: usize,
}

/// The persisted campaign plan: tier, shard count, and the fully resolved
/// experiment matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusPlan {
    /// Tier label (`"paper"` / `"city"`).
    pub tier: String,
    /// Number of shards the matrix is partitioned into.
    pub shards: usize,
    /// The resolved matrix (env overrides already applied).
    pub experiment: ExperimentConfig,
}

impl CorpusPlan {
    /// Build a plan: resolve the tier (applying env overrides now, once)
    /// and fix the shard partition.
    ///
    /// # Panics
    /// If `shards == 0`.
    pub fn build(tier: Tier, shards: usize, seed: u64) -> CorpusPlan {
        assert!(shards > 0, "at least one shard");
        CorpusPlan { tier: tier.label().to_string(), shards, experiment: tier.experiment(seed) }
    }

    /// Every call of the matrix, in the batch driver's enumeration order
    /// (apps × networks × repeats, repeats innermost).
    pub fn calls(&self) -> Vec<PlannedCall> {
        let mut out = Vec::with_capacity(self.experiment.total_calls());
        let mut index = 0;
        for app in self.experiment.applications() {
            for network in self.experiment.network_configs() {
                for repeat in 0..self.experiment.repeats {
                    out.push(PlannedCall { index, app, network, repeat });
                    index += 1;
                }
            }
        }
        out
    }

    /// The calls owned by one shard: the round-robin partition
    /// ([`rtc_netemu::fleet::shard_members`]), so each shard works a
    /// representative cross-section of the matrix rather than one
    /// application's block.
    pub fn shard_calls(&self, shard: usize) -> Vec<PlannedCall> {
        let all = self.calls();
        rtc_netemu::fleet::shard_members(all.len(), self.shards, shard).map(|i| all[i]).collect()
    }

    /// Where the shared corpus (one `.pcap` + `.json` per call) lives
    /// under a campaign directory.
    pub fn corpus_dir(dir: &Path) -> PathBuf {
        dir.join("corpus")
    }

    /// Path of the plan file under a campaign directory.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join("plan.json")
    }

    /// Serialize with the version header.
    pub fn to_json(&self) -> Value {
        json!({
            "magic": PLAN_MAGIC,
            "version": PLAN_VERSION,
            "tier": self.tier.clone(),
            "shards": self.shards,
            "experiment": serde::Serialize::to_value(&self.experiment),
        })
    }

    /// Persist to `<dir>/plan.json`, atomically.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        crate::checkpoint::write_text_atomic(&Self::path(dir), &serde_json::to_string_pretty(&self.to_json())?)
    }

    /// Load and validate `<dir>/plan.json`.
    pub fn load(dir: &Path) -> io::Result<CorpusPlan> {
        let path = Self::path(dir);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        Self::parse_text(&text, &path)
    }

    /// Parse and validate a plan document from text. `origin` names the
    /// source in error messages (the on-disk path, or a synthetic label
    /// for in-memory inputs — the fuzzer drives this entry point with
    /// arbitrary bytes).
    pub fn parse_text(text: &str, origin: &Path) -> io::Result<CorpusPlan> {
        let path = origin;
        let v: Value = serde_json::from_str(text).map_err(|e| invalid(path, format_args!("not valid JSON ({e})")))?;
        rtc_cov::probe!("shard.plan.json-ok");
        if v.get("magic").and_then(Value::as_str) != Some(PLAN_MAGIC) {
            return Err(invalid(path, format_args!("missing {PLAN_MAGIC:?} magic — not a study plan")));
        }
        rtc_cov::probe!("shard.plan.magic-ok");
        let version = v.get("version").and_then(Value::as_u64);
        if version != Some(PLAN_VERSION) {
            return Err(invalid(
                path,
                format_args!("plan version {version:?}, this build reads version {PLAN_VERSION}"),
            ));
        }
        let tier = v
            .get("tier")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid(path, format_args!("missing tier")))?
            .to_string();
        let shards = v
            .get("shards")
            .and_then(Value::as_u64)
            .filter(|s| *s > 0)
            .ok_or_else(|| invalid(path, format_args!("missing or zero shard count")))? as usize;
        let experiment =
            v.get("experiment").ok_or_else(|| invalid(path, format_args!("missing experiment"))).and_then(|e| {
                serde::Deserialize::from_value(e)
                    .map_err(|d: serde::DeError| invalid(path, format_args!("bad experiment config ({})", d.0)))
            })?;
        rtc_cov::probe!("shard.plan.accept");
        Ok(CorpusPlan { tier, shards, experiment })
    }
}

fn invalid(path: &Path, what: std::fmt::Arguments<'_>) -> io::Error {
    // One coverage probe per distinct rejection message (digits squashed
    // so embedded versions/counts do not explode the id space) — the
    // fuzzer's feedback for the loader's reject paths.
    #[cfg(feature = "cov-probes")]
    {
        let squashed: String = what.to_string().chars().filter(|c| !c.is_ascii_digit()).collect();
        rtc_cov::hit(rtc_cov::dynamic_id(&["plan-invalid", &squashed]));
    }
    io::Error::new(io::ErrorKind::InvalidData, format!("{}: {what}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> CorpusPlan {
        CorpusPlan { tier: "paper".into(), shards: 4, experiment: ExperimentConfig::smoke(7) }
    }

    #[test]
    fn matrix_order_matches_batch_enumeration() {
        let p = plan();
        let calls = p.calls();
        assert_eq!(calls.len(), p.experiment.total_calls());
        // Repeats innermost, networks next, apps outermost — the order
        // `rtc_capture::run_experiment` enumerates.
        let mut expect = 0;
        for app in p.experiment.applications() {
            for network in p.experiment.network_configs() {
                for repeat in 0..p.experiment.repeats {
                    assert_eq!(calls[expect].app, app);
                    assert_eq!(calls[expect].network, network);
                    assert_eq!(calls[expect].repeat, repeat);
                    assert_eq!(calls[expect].index, expect);
                    expect += 1;
                }
            }
        }
    }

    #[test]
    fn shards_partition_the_matrix() {
        let p = plan();
        let mut seen = std::collections::BTreeSet::new();
        for shard in 0..p.shards {
            for c in p.shard_calls(shard) {
                assert!(seen.insert(c.index), "call {} owned twice", c.index);
            }
        }
        assert_eq!(seen.len(), p.calls().len());
    }

    #[test]
    fn plan_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("rtc-shard-plan-{}", std::process::id()));
        let p = plan();
        p.save(&dir).unwrap();
        assert_eq!(CorpusPlan::load(&dir).unwrap(), p);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_foreign_and_future_files() {
        let dir = std::env::temp_dir().join(format!("rtc-shard-badplan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(CorpusPlan::path(&dir), "{\"magic\": \"something-else\"}").unwrap();
        let e = CorpusPlan::load(&dir).unwrap_err();
        assert!(e.to_string().contains("magic"), "{e}");

        let mut v = plan().to_json();
        v.as_object_mut().unwrap().insert("version".into(), serde_json::json!(999));
        std::fs::write(CorpusPlan::path(&dir), serde_json::to_string(&v).unwrap()).unwrap();
        let e = CorpusPlan::load(&dir).unwrap_err();
        assert!(e.to_string().contains("version"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn city_tier_is_ten_x() {
        // Not env-sensitive: read the tiers directly (the test harness
        // does not set RTC_STUDY_* overrides).
        let paper = Tier::Paper.experiment(1);
        let city = Tier::City.experiment(1);
        assert_eq!(city.repeats, paper.repeats * 10);
        assert_eq!(Tier::parse("paper"), Some(Tier::Paper));
        assert_eq!(Tier::parse("city"), Some(Tier::City));
        assert_eq!(Tier::parse("block"), None);
    }
}
