//! Per-shard resume state: the serialized `Aggregator` snapshot, the
//! shard-local cursor, pipeline counters, and recorded failures, all
//! under a version/seed header the loader validates before trusting a
//! byte of the payload.
//!
//! ## Format (version 1)
//!
//! One JSON object per checkpoint file:
//!
//! ```text
//! {
//!   "magic":   "rtc-study-checkpoint",   // file-format magic
//!   "version": 1,                        // format version
//!   "tier":    "paper",                  // plan tier label
//!   "seed":    42,                       // campaign seed
//!   "shards":  8,                        // partition width
//!   "shard":   3,                        // which shard this is
//!   "cursor":  11,            // shard-local calls completed (resume point)
//!   "records": 123456,        // pcap records decoded so far
//!   "bytes":   98765432,      // raw capture bytes analyzed so far
//!   "oracle_calls": 2,        // calls re-judged by the oracle sample
//!   "oracle_messages": 4096,  // messages the oracle re-judged
//!   "elapsed_secs": 12.5,     // shard wall time accumulated across runs
//!   "stats": { "stages": [[in, out, busy_ns] x5], "peak_retained_bytes": n },
//!   "failures": [{ "index": n, "app": s, "network": s, "error": s }],
//!   "aggregator": { ... }     // rtc_report::state encoding
//! }
//! ```
//!
//! Writes are atomic — the text goes to a `.tmp` sibling which is then
//! renamed over the destination — so a shard killed mid-write leaves
//! either the previous complete checkpoint or a stray `.tmp`, never a
//! truncated file under the real name. Loads reject, with distinct
//! errors: non-JSON/truncated files, wrong magic, unknown versions, and
//! header fields (seed, tier, shard count, shard index) that disagree
//! with the plan being resumed.

use rtc_core::pipeline::{PipelineStats, StageKind};
use rtc_core::report::Aggregator;
use rtc_core::FailedCall;
use serde_json::{json, Value};
use std::io;
use std::path::Path;

/// File-format magic of shard checkpoints and final shard snapshots.
pub const CHECKPOINT_MAGIC: &str = "rtc-study-checkpoint";
/// Checkpoint file-format version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// The identity a checkpoint must match to be resumable under a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Plan tier label.
    pub tier: String,
    /// Campaign seed.
    pub seed: u64,
    /// Shard-partition width.
    pub shards: usize,
    /// This shard's index.
    pub shard: usize,
}

/// One shard's persisted progress. Also the schema of the *final* shard
/// snapshot (`shard-N.done.json`) the merge step consumes — a finished
/// shard is just a checkpoint whose cursor covers every owned call.
#[derive(Debug, Clone)]
pub struct ShardCheckpoint {
    /// Identity guard.
    pub header: CheckpointHeader,
    /// Shard-local calls completed; resume skips this many.
    pub cursor: usize,
    /// Pcap records decoded so far.
    pub records: u64,
    /// Raw capture bytes analyzed so far.
    pub bytes: u64,
    /// Calls re-judged by the deterministic oracle sample.
    pub oracle_calls: usize,
    /// Messages the oracle re-judged.
    pub oracle_messages: usize,
    /// Wall seconds this shard has spent, accumulated across resumes.
    pub elapsed_secs: f64,
    /// Per-stage counters summed over the shard's completed calls.
    pub stats: PipelineStats,
    /// Calls whose analysis failed (global matrix indices).
    pub failures: Vec<FailedCall>,
    /// The partial aggregation.
    pub aggregator: Aggregator,
}

impl ShardCheckpoint {
    /// A fresh, empty checkpoint for one shard.
    pub fn fresh(header: CheckpointHeader) -> ShardCheckpoint {
        ShardCheckpoint {
            header,
            cursor: 0,
            records: 0,
            bytes: 0,
            oracle_calls: 0,
            oracle_messages: 0,
            elapsed_secs: 0.0,
            stats: PipelineStats::default(),
            failures: Vec::new(),
            aggregator: Aggregator::new(),
        }
    }

    /// Serialize to the version-1 JSON document.
    pub fn to_json(&self) -> Value {
        let stages: Vec<Value> = StageKind::ALL
            .iter()
            .map(|k| {
                let m = self.stats.stage(*k);
                json!([m.items_in, m.items_out, m.busy.as_nanos() as u64])
            })
            .collect();
        let failures: Vec<Value> = self
            .failures
            .iter()
            .map(|f| json!({ "index": f.index, "app": f.app.clone(), "network": f.network.clone(), "error": f.error.clone() }))
            .collect();
        json!({
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "tier": self.header.tier.clone(),
            "seed": self.header.seed,
            "shards": self.header.shards,
            "shard": self.header.shard,
            "cursor": self.cursor,
            "records": self.records,
            "bytes": self.bytes,
            "oracle_calls": self.oracle_calls,
            "oracle_messages": self.oracle_messages,
            "elapsed_secs": self.elapsed_secs,
            "stats": { "stages": stages, "peak_retained_bytes": self.stats.peak_retained_bytes },
            "failures": failures,
            "aggregator": self.aggregator.to_state_value(),
        })
    }

    /// Write atomically to `path`: serialize, write a `.tmp` sibling,
    /// rename into place.
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        write_text_atomic(path, &serde_json::to_string(&self.to_json())?)
    }

    /// Load a checkpoint and validate it against the plan identity the
    /// caller is resuming. Every rejection names the file and the exact
    /// disagreement.
    pub fn load(path: &Path, expect: &CheckpointHeader) -> io::Result<ShardCheckpoint> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        Self::parse_text(&text, path, expect)
    }

    /// Parse and validate a checkpoint document from text. `origin` names
    /// the source in error messages (the on-disk path, or a synthetic
    /// label for in-memory inputs — the fuzzer drives this entry point
    /// with arbitrary bytes).
    pub fn parse_text(text: &str, origin: &Path, expect: &CheckpointHeader) -> io::Result<ShardCheckpoint> {
        let path = origin;
        let v: Value = serde_json::from_str(text).map_err(|e| {
            invalid(path, format_args!("corrupt checkpoint (not valid JSON: {e}) — delete it to restart this shard"))
        })?;
        rtc_cov::probe!("shard.ckpt.json-ok");
        if v.get("magic").and_then(Value::as_str) != Some(CHECKPOINT_MAGIC) {
            return Err(invalid(path, format_args!("missing {CHECKPOINT_MAGIC:?} magic — not a shard checkpoint")));
        }
        rtc_cov::probe!("shard.ckpt.magic-ok");
        let version = v.get("version").and_then(Value::as_u64);
        if version != Some(CHECKPOINT_VERSION) {
            let got = version.map_or_else(|| "missing".to_string(), |n| format!("version {n}"));
            return Err(invalid(
                path,
                format_args!("checkpoint {got}, this build reads version {CHECKPOINT_VERSION}"),
            ));
        }
        let header = CheckpointHeader {
            tier: str_field(&v, path, "tier")?.to_string(),
            seed: u64_field(&v, path, "seed")?,
            shards: u64_field(&v, path, "shards")? as usize,
            shard: u64_field(&v, path, "shard")? as usize,
        };
        if header != *expect {
            return Err(invalid(
                path,
                format_args!(
                    "checkpoint is for tier={} seed={} shards={} shard={}, but the plan being resumed is tier={} seed={} shards={} shard={}",
                    header.tier, header.seed, header.shards, header.shard,
                    expect.tier, expect.seed, expect.shards, expect.shard,
                ),
            ));
        }
        rtc_cov::probe!("shard.ckpt.header-ok");
        let stats_v = v.get("stats").ok_or_else(|| invalid(path, format_args!("missing stats")))?;
        let mut stats = PipelineStats::default();
        let stages = stats_v
            .get("stages")
            .and_then(Value::as_array)
            .filter(|s| s.len() == StageKind::ALL.len())
            .ok_or_else(|| invalid(path, format_args!("bad stage metrics")))?;
        for (kind, stage) in StageKind::ALL.iter().zip(stages) {
            let trio = stage
                .as_array()
                .filter(|t| t.len() == 3)
                .ok_or_else(|| invalid(path, format_args!("bad stage metric triple")))?;
            let n =
                |i: usize| trio[i].as_u64().ok_or_else(|| invalid(path, format_args!("non-integer stage metric")));
            let m = stats.stage_mut(*kind);
            m.items_in = n(0)?;
            m.items_out = n(1)?;
            m.busy = std::time::Duration::from_nanos(n(2)?);
        }
        stats.peak_retained_bytes = stats_v
            .get("peak_retained_bytes")
            .and_then(Value::as_u64)
            .ok_or_else(|| invalid(path, format_args!("missing peak_retained_bytes")))?
            as usize;
        let mut failures = Vec::new();
        for f in v
            .get("failures")
            .and_then(Value::as_array)
            .ok_or_else(|| invalid(path, format_args!("missing failures")))?
        {
            failures.push(FailedCall {
                index: u64_field(f, path, "index")? as usize,
                app: str_field(f, path, "app")?.to_string(),
                network: str_field(f, path, "network")?.to_string(),
                error: str_field(f, path, "error")?.to_string(),
            });
        }
        let aggregator =
            v.get("aggregator").ok_or_else(|| invalid(path, format_args!("missing aggregator"))).and_then(|a| {
                Aggregator::from_state_value(a).map_err(|e| invalid(path, format_args!("corrupt aggregator: {e}")))
            })?;
        rtc_cov::probe!("shard.ckpt.accept");
        Ok(ShardCheckpoint {
            header,
            cursor: u64_field(&v, path, "cursor")? as usize,
            records: u64_field(&v, path, "records")?,
            bytes: u64_field(&v, path, "bytes")?,
            oracle_calls: u64_field(&v, path, "oracle_calls")? as usize,
            oracle_messages: u64_field(&v, path, "oracle_messages")? as usize,
            elapsed_secs: v
                .get("elapsed_secs")
                .and_then(Value::as_f64)
                .ok_or_else(|| invalid(path, format_args!("missing elapsed_secs")))?,
            stats,
            failures,
            aggregator,
        })
    }
}

fn str_field<'a>(v: &'a Value, path: &Path, name: &str) -> io::Result<&'a str> {
    v.get(name).and_then(Value::as_str).ok_or_else(|| invalid(path, format_args!("missing field `{name}`")))
}

fn u64_field(v: &Value, path: &Path, name: &str) -> io::Result<u64> {
    v.get(name).and_then(Value::as_u64).ok_or_else(|| invalid(path, format_args!("missing field `{name}`")))
}

fn invalid(path: &Path, what: std::fmt::Arguments<'_>) -> io::Error {
    // One coverage probe per distinct rejection message (digits squashed),
    // mirroring `plan::invalid` — see there.
    #[cfg(feature = "cov-probes")]
    {
        let squashed: String = what.to_string().chars().filter(|c| !c.is_ascii_digit()).collect();
        rtc_cov::hit(rtc_cov::dynamic_id(&["checkpoint-invalid", &squashed]));
    }
    io::Error::new(io::ErrorKind::InvalidData, format!("{}: {what}", path.display()))
}

/// Write `text` to `path` atomically: a `.tmp` sibling is written in full
/// and then renamed over the destination, so readers (and post-crash
/// resumes) only ever observe complete files.
pub fn write_text_atomic(path: &Path, text: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> CheckpointHeader {
        CheckpointHeader { tier: "paper".into(), seed: 42, shards: 8, shard: 3 }
    }

    fn sample() -> ShardCheckpoint {
        let mut c = ShardCheckpoint::fresh(header());
        c.cursor = 11;
        c.records = 123_456;
        c.bytes = 98_765_432;
        c.oracle_calls = 2;
        c.oracle_messages = 4096;
        c.elapsed_secs = 12.5;
        c.stats.stage_mut(StageKind::Decode).items_in = 123_456;
        c.stats.stage_mut(StageKind::Decode).items_out = 123_400;
        c.stats.stage_mut(StageKind::Decode).busy = std::time::Duration::from_millis(250);
        c.stats.peak_retained_bytes = 65_536;
        c.failures.push(FailedCall {
            index: 7,
            app: "zoom".into(),
            network: "cellular".into(),
            error: "boom".into(),
        });
        c
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rtc-shard-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = scratch("roundtrip");
        let path = dir.join("shard-3.ckpt.json");
        let c = sample();
        c.write_atomic(&path).unwrap();
        let back = ShardCheckpoint::load(&path, &header()).unwrap();
        assert_eq!(back.header, c.header);
        assert_eq!(back.cursor, c.cursor);
        assert_eq!(back.records, c.records);
        assert_eq!(back.bytes, c.bytes);
        assert_eq!(back.oracle_calls, c.oracle_calls);
        assert_eq!(back.oracle_messages, c.oracle_messages);
        assert_eq!(back.stats.stage(StageKind::Decode).items_in, 123_456);
        assert_eq!(back.stats.stage(StageKind::Decode).busy, std::time::Duration::from_millis(250));
        assert_eq!(back.stats.peak_retained_bytes, 65_536);
        assert_eq!(back.failures.len(), 1);
        assert_eq!(back.failures[0].index, 7);
        assert!(back.aggregator.is_empty());
        // No `.tmp` left behind.
        assert!(!dir.join("shard-3.ckpt.json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_is_atomic_never_truncated() {
        let dir = scratch("atomic");
        let path = dir.join("shard-3.ckpt.json");
        // A stale tmp file from a kill mid-write must not shadow or
        // corrupt the real checkpoint.
        std::fs::write(dir.join("shard-3.ckpt.json.tmp"), "garbage{{{").unwrap();
        sample().write_atomic(&path).unwrap();
        assert!(ShardCheckpoint::load(&path, &header()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_truncated_file() {
        let dir = scratch("truncated");
        let path = dir.join("shard-3.ckpt.json");
        let full = serde_json::to_string(&sample().to_json()).unwrap();
        // Simulate a non-atomic writer dying mid-write: half the bytes.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let e = ShardCheckpoint::load(&path, &header()).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("corrupt checkpoint"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_version_and_seed_mismatches() {
        let dir = scratch("mismatch");
        let path = dir.join("shard-3.ckpt.json");

        let mut v = sample().to_json();
        v.as_object_mut().unwrap().insert("version".into(), json!(999));
        write_text_atomic(&path, &serde_json::to_string(&v).unwrap()).unwrap();
        let e = ShardCheckpoint::load(&path, &header()).unwrap_err();
        assert!(e.to_string().contains("version 999"), "{e}");

        sample().write_atomic(&path).unwrap();
        let other_seed = CheckpointHeader { seed: 43, ..header() };
        let e = ShardCheckpoint::load(&path, &other_seed).unwrap_err();
        assert!(e.to_string().contains("seed=42") && e.to_string().contains("seed=43"), "{e}");

        let other_shards = CheckpointHeader { shards: 4, ..header() };
        assert!(ShardCheckpoint::load(&path, &other_shards).is_err());

        let other_tier = CheckpointHeader { tier: "city".into(), ..header() };
        assert!(ShardCheckpoint::load(&path, &other_tier).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_wrong_magic() {
        let dir = scratch("magic");
        let path = dir.join("shard-3.ckpt.json");
        write_text_atomic(&path, "{\"magic\": \"rtc-study-plan\", \"version\": 1}").unwrap();
        let e = ShardCheckpoint::load(&path, &header()).unwrap_err();
        assert!(e.to_string().contains("magic"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
