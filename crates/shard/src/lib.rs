//! # rtc-shard
//!
//! The sharded multi-process study runner: generates, saves, and analyzes
//! a full paper-scale corpus (~20M datagrams across the 300-second
//! app×network matrix) and a 10× city-scale tier, without ever holding
//! more than one call's RTC traffic in memory per shard.
//!
//! Three pieces, one per module:
//!
//! * [`plan`] — the deterministic corpus planner: resolves a scale
//!   [`plan::Tier`] into an `ExperimentConfig`, persists it as
//!   `plan.json` (with a version header), and partitions the matrix into
//!   round-robin shards with forked per-call seeds (the same derivation
//!   as the batch driver, so shard N's call is the batch run's call).
//! * [`checkpoint`] — per-shard resume state: serialized `Aggregator`
//!   snapshot + cursor + pipeline counters, written atomically
//!   (tempfile + rename) at a configurable record interval, with a
//!   version/seed header the loader validates before trusting anything.
//! * [`runner`] — drives one shard (generate → save atomically →
//!   chunk-streamed analysis → absorb → checkpoint, with oracle
//!   re-judgement on a deterministic sample), and merges all shards'
//!   final snapshots into one `StudyReport` byte-identical to a
//!   single-process batch run of the same plan.
//!
//! The `rtc-study scale` CLI surface and the `study-scale` /
//! `checkpoint-resume` CI jobs sit on top of this crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod plan;
pub mod runner;

pub use checkpoint::{CheckpointHeader, ShardCheckpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use plan::{CorpusPlan, PlannedCall, Tier};
pub use runner::{merge_shards, run_shard, MergedStudy, ShardOptions, ShardOutcome};
