//! End-to-end properties of the sharded runner: the merged report is
//! byte-identical to a single-process batch run of the same plan, and
//! a shard interrupted mid-run resumes from its checkpoint to the exact
//! same bytes as an uninterrupted campaign.

use rtc_core::capture::ExperimentConfig;
use rtc_core::report::json::study_to_json;
use rtc_core::StudyReport;
use rtc_shard::runner::{batch_reference, checkpoint_path, done_path};
use rtc_shard::{merge_shards, run_shard, CorpusPlan, ShardOptions};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtc-shard-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_plan(shards: usize, seed: u64) -> CorpusPlan {
    CorpusPlan { tier: "paper".into(), shards, experiment: ExperimentConfig::smoke(seed) }
}

fn options() -> ShardOptions {
    // A record interval small enough that every shard writes several
    // periodic checkpoints along the way, and a sample rate that
    // exercises the oracle path on a few calls per shard.
    ShardOptions { record_interval: 2_000, chunk_records: 64, oracle_sample: 5, stop_after_calls: None }
}

fn fingerprint(report: &StudyReport) -> (String, String) {
    assert!(report.failures.is_empty(), "calls failed analysis: {:?}", report.failures);
    (serde_json::to_string(&study_to_json(&report.data)).unwrap(), report.render_all())
}

#[test]
fn merged_shards_equal_single_process_batch() {
    let dir = scratch("merge");
    let plan = small_plan(3, 7);
    plan.save(&dir).unwrap();

    for shard in 0..plan.shards {
        let outcome = run_shard(&dir, shard, &options()).unwrap();
        assert!(!outcome.stopped_early);
        assert!(!outcome.resumed);
        assert_eq!(outcome.calls, outcome.calls_owned);
        assert!(outcome.records > 0, "shard {shard} decoded nothing");
        assert!(done_path(&dir, shard).exists());
        assert!(!checkpoint_path(&dir, shard).exists(), "final snapshot must clear the periodic checkpoint");
    }

    let merged = merge_shards(&dir).unwrap();
    assert_eq!(merged.shards.len(), plan.shards);
    assert!(merged.oracle_calls > 0, "oracle sample never fired");
    assert!(merged.oracle_messages > 0);

    let batch = batch_reference(&dir, 64).unwrap();
    assert_eq!(fingerprint(&merged.report), fingerprint(&batch), "sharded merge diverged from batch run");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_shard_matches_uninterrupted_campaign() {
    let uninterrupted = scratch("resume-a");
    let interrupted = scratch("resume-b");
    let plan = small_plan(2, 11);
    plan.save(&uninterrupted).unwrap();
    plan.save(&interrupted).unwrap();

    for shard in 0..plan.shards {
        run_shard(&uninterrupted, shard, &options()).unwrap();
    }
    let reference = merge_shards(&uninterrupted).unwrap();

    // Interrupt shard 0 after two calls (the checkpoint-on-stop path is
    // the same code a SIGTERM-ed shard relies on), then resume it.
    let stopped = run_shard(&interrupted, 0, &ShardOptions { stop_after_calls: Some(2), ..options() }).unwrap();
    assert!(stopped.stopped_early);
    assert_eq!(stopped.calls, 2);
    assert!(checkpoint_path(&interrupted, 0).exists());
    assert!(!done_path(&interrupted, 0).exists());

    let resumed = run_shard(&interrupted, 0, &options()).unwrap();
    assert!(resumed.resumed, "second invocation must pick up the checkpoint");
    assert_eq!(resumed.calls, resumed.calls_owned);
    run_shard(&interrupted, 1, &options()).unwrap();

    let merged = merge_shards(&interrupted).unwrap();
    assert_eq!(
        fingerprint(&merged.report),
        fingerprint(&reference.report),
        "kill-and-resume changed the merged report"
    );
    let _ = std::fs::remove_dir_all(&uninterrupted);
    let _ = std::fs::remove_dir_all(&interrupted);
}

#[test]
fn finished_shard_rerun_is_a_no_op() {
    let dir = scratch("noop");
    small_plan(2, 13).save(&dir).unwrap();
    let first = run_shard(&dir, 0, &options()).unwrap();
    let again = run_shard(&dir, 0, &options()).unwrap();
    assert_eq!(again.calls, first.calls);
    assert_eq!(again.records, first.records);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_names_unfinished_shards() {
    let dir = scratch("missing");
    small_plan(3, 17).save(&dir).unwrap();
    run_shard(&dir, 1, &options()).unwrap();
    let e = merge_shards(&dir).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("0, 2"), "should name unfinished shards: {msg}");
    assert!(msg.contains("--resume"), "should point at the resume flag: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}
