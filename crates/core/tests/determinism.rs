//! Determinism guarantees: the study's output is a pure function of the
//! experiment configuration — independent of DPI worker count and of the
//! batch-vs-streaming driver choice. The JSON export and every rendered
//! text artifact must be byte-identical across all combinations.

use rtc_core::capture::{run_experiment, save_experiment, ExperimentConfig};
use rtc_core::report::json::study_to_json;
use rtc_core::{StreamingStudy, Study, StudyConfig, StudyReport};

fn config(experiment: &ExperimentConfig, threads: usize) -> StudyConfig {
    StudyConfig {
        experiment: experiment.clone(),
        filter: Default::default(),
        dpi: rtc_core::dpi::DpiConfig { threads, ..Default::default() },
        obs: rtc_core::obs::MetricsRegistry::disabled(),
    }
}

fn fingerprint(report: &StudyReport) -> (String, String) {
    assert!(report.failures.is_empty(), "calls failed analysis: {:?}", report.failures);
    (serde_json::to_string(&study_to_json(&report.data)).unwrap(), report.render_all())
}

#[test]
fn study_output_is_invariant_across_threads_and_drivers() {
    let experiment = ExperimentConfig::smoke(11);
    let captures = run_experiment(&experiment);

    let scratch = std::env::temp_dir().join(format!("rtc-determinism-{}", std::process::id()));
    save_experiment(&scratch, &captures).expect("save experiment");

    let baseline = fingerprint(&Study::analyze(&captures, &config(&experiment, 1)));
    let runs = [
        ("batch/threads=8", fingerprint(&Study::analyze(&captures, &config(&experiment, 8)))),
        (
            "stream/threads=1",
            fingerprint(&StreamingStudy::analyze_dir(&scratch, &config(&experiment, 1), 0, None).expect("stream")),
        ),
        (
            "stream/threads=8",
            fingerprint(&StreamingStudy::analyze_dir(&scratch, &config(&experiment, 8), 0, None).expect("stream")),
        ),
    ];
    let _ = std::fs::remove_dir_all(&scratch);

    for (name, (json, text)) in &runs {
        assert_eq!(json, &baseline.0, "{name}: JSON export differs from batch/threads=1");
        assert_eq!(text, &baseline.1, "{name}: rendered artifacts differ from batch/threads=1");
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let experiment = ExperimentConfig::smoke(23);
    let a = fingerprint(&Study::analyze(&run_experiment(&experiment), &config(&experiment, 4)));
    let b = fingerprint(&Study::analyze(&run_experiment(&experiment), &config(&experiment, 4)));
    assert_eq!(a, b, "two identical campaigns produced different reports");
}
