//! Differential proof that the streaming engine and the batch API are one
//! pipeline: identical `StudyData`, per-call records, findings, and
//! rejection taxonomy on the full smoke matrix, across random seeds,
//! app/network subsets, and chunk sizes — plus the golden convergence of
//! mid-study aggregator snapshots to the final batch tables.

use proptest::prelude::*;
use rtc_core::{analyze_capture, pipeline, Artifact, StreamingStudy, Study, StudyConfig, StudyReport};
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory per test case.
fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rtc-streaming-test-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Save the configured experiment, then analyze it through both drivers.
fn run_both(config: &StudyConfig, chunk_records: usize) -> (StudyReport, StudyReport) {
    let dir = scratch_dir();
    let captures = rtc_core::capture::run_experiment(&config.experiment);
    rtc_core::capture::save_experiment(&dir, &captures).unwrap();
    // The batch driver consumes the same on-disk campaign, loaded whole.
    let loaded = rtc_core::capture::load_experiment(&dir).unwrap();
    let batch = Study::analyze(&loaded, config);
    let streaming = StreamingStudy::analyze_dir(&dir, config, chunk_records, None).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    (batch, streaming)
}

fn assert_reports_equal(batch: &StudyReport, streaming: &StudyReport) {
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);
    assert!(streaming.failures.is_empty(), "{:?}", streaming.failures);
    assert_eq!(batch.data.calls.len(), streaming.data.calls.len());
    for (b, s) in batch.data.calls.iter().zip(streaming.data.calls.iter()) {
        assert_eq!(b, s, "call record diverged: {} / {} #{}", b.app, b.network, b.repeat);
        assert_eq!(b.rejections, s.rejections, "rejection taxonomy diverged for {}", b.app);
    }
    assert_eq!(batch.data, streaming.data);
    assert_eq!(batch.findings, streaming.findings);
    assert_eq!(batch.header_profiles, streaming.header_profiles);
}

#[test]
fn streaming_matches_batch_on_full_smoke_matrix() {
    let config = StudyConfig::smoke(42);
    let (batch, streaming) = run_both(&config, 17);
    assert_eq!(batch.data.calls.len(), config.experiment.total_calls(), "every cell of the matrix must be analyzed");
    assert_reports_equal(&batch, &streaming);

    // The streaming run's stage accounting is coherent: every record was
    // decoded, decode can only drop items, and the filter's residency
    // high-water mark never reached the raw trace size.
    let decode = streaming.pipeline.stage(pipeline::StageKind::Decode);
    assert!(decode.items_in > 0);
    assert!(decode.items_out <= decode.items_in);
    let raw_total: usize = streaming.data.calls.iter().map(|c| c.raw_bytes).sum();
    assert!(streaming.pipeline.peak_retained_bytes > 0);
    assert!(
        streaming.pipeline.peak_retained_bytes < raw_total,
        "peak residency {} must stay below the total trace size {raw_total}",
        streaming.pipeline.peak_retained_bytes
    );
    let aggregate = streaming.pipeline.stage(pipeline::StageKind::Aggregate);
    assert_eq!(aggregate.items_in as usize, streaming.data.calls.len());
}

#[test]
fn aggregator_snapshots_converge_to_batch_tables() {
    let mut config = StudyConfig::smoke(9);
    config.experiment.apps = vec!["zoom".into(), "discord".into(), "meet".into()];
    config.experiment.networks = vec!["wifi-relay".into()];
    config.experiment.repeats = 2;
    let captures = rtc_core::capture::run_experiment(&config.experiment);
    let batch = Study::analyze(&captures, &config);

    let mut aggregate = rtc_core::report::Aggregator::new();
    for (i, cap) in captures.iter().enumerate() {
        let analysis = analyze_capture(cap, &config);
        let summaries: Vec<String> = analysis.header_profiles.iter().map(|p| p.summary()).collect();
        let ssrcs = rtc_core::compliance::findings::ssrc_set(&analysis.dissection);
        aggregate.absorb_call(analysis.record, &analysis.findings, &summaries, ssrcs);
        // Mid-study snapshots are exactly the batch prefix, and render.
        let snapshot = aggregate.snapshot();
        assert_eq!(snapshot.calls, batch.data.calls[..=i], "snapshot after call {i}");
        let _ = rtc_core::report::tables::table1(&snapshot).to_text();
    }
    let out = aggregate.finish();
    assert_eq!(out.data, batch.data);
    assert_eq!(out.findings, batch.findings);
    assert_eq!(out.header_profiles, batch.header_profiles);
    // Converged snapshots reproduce the batch tables verbatim.
    for artifact in [Artifact::Table1, Artifact::Table3, Artifact::Figure4] {
        let from_final = StudyReport {
            data: out.data.clone(),
            findings: out.findings.clone(),
            header_profiles: out.header_profiles.clone(),
            failures: Vec::new(),
            pipeline: Default::default(),
            metrics: Default::default(),
        };
        assert_eq!(from_final.render_table(artifact), batch.render_table(artifact));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random seeds, app/network subsets, and chunk sizes: the two drivers
    /// always produce the identical study.
    #[test]
    fn streaming_matches_batch_randomized(
        seed in 0u64..10_000,
        app_a in 0usize..6,
        app_b in 0usize..6,
        network in 0usize..3,
        chunk_sel in 0usize..4,
    ) {
        const APPS: [&str; 6] = ["zoom", "facetime", "whatsapp", "messenger", "discord", "meet"];
        const NETWORKS: [&str; 3] = ["wifi-p2p", "wifi-relay", "cellular"];
        let mut config = StudyConfig::smoke(seed);
        let mut apps = vec![APPS[app_a].to_string()];
        if app_b != app_a {
            apps.push(APPS[app_b].to_string());
        }
        config.experiment.apps = apps;
        config.experiment.networks = vec![NETWORKS[network].to_string()];
        let chunk_records = [1, 7, 64, 0][chunk_sel];
        let (batch, streaming) = run_both(&config, chunk_records);
        prop_assert!(batch.failures.is_empty() && streaming.failures.is_empty());
        prop_assert_eq!(&batch.data, &streaming.data);
        prop_assert_eq!(&batch.findings, &streaming.findings);
        prop_assert_eq!(&batch.header_profiles, &streaming.header_profiles);
    }
}
