//! Observability-layer guarantees: instrumentation must never change
//! results, and an instrumented run must actually cover every stage and
//! matcher in its exported metrics.

use rtc_core::obs::{MetricValue, MetricsRegistry};
use rtc_core::{Study, StudyConfig};

fn smoke_config(seed: u64) -> StudyConfig {
    let mut config = StudyConfig::smoke(seed);
    config.experiment.apps = vec!["zoom".into(), "discord".into(), "meet".into()];
    config.experiment.networks = vec!["wifi-relay".into()];
    config
}

/// Metrics-instrumented analysis produces byte-identical report tables to
/// the uninstrumented path.
#[test]
fn instrumented_analysis_is_invisible_in_the_tables() {
    let mut enabled = smoke_config(11);
    enabled.obs = MetricsRegistry::new();
    let mut disabled = smoke_config(11);
    disabled.obs = MetricsRegistry::disabled();

    let captures = rtc_core::capture::run_experiment(&enabled.experiment);
    let with_metrics = Study::analyze(&captures, &enabled);
    let without_metrics = Study::analyze(&captures, &disabled);

    assert_eq!(with_metrics.data, without_metrics.data);
    assert_eq!(with_metrics.render_all(), without_metrics.render_all(), "tables must be byte-identical");
    assert!(!with_metrics.metrics.is_empty(), "enabled registry must capture series");
    assert!(without_metrics.metrics.is_empty(), "disabled registry must stay empty");
}

/// The snapshot on the report covers all five pipeline stages (counters +
/// latency histograms) and all five protocol matchers (counters +
/// histograms), and exports as well-formed Prometheus text.
#[test]
fn report_metrics_cover_every_stage_and_matcher() {
    let config = smoke_config(13);
    let report = Study::run(&config);
    let snap = &report.metrics;

    for stage in ["decode", "filter", "dpi", "compliance", "aggregate"] {
        match snap.get("rtc_pipeline_stage_items_in_total", &[("stage", stage)]) {
            Some(MetricValue::Counter(n)) => assert!(*n > 0, "stage {stage} saw no items"),
            other => panic!("missing items_in counter for stage {stage}: {other:?}"),
        }
        match snap.get("rtc_pipeline_stage_call_nanoseconds", &[("stage", stage)]) {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, report.data.calls.len() as u64, "stage {stage} latency per call")
            }
            other => panic!("missing latency histogram for stage {stage}: {other:?}"),
        }
    }

    for matcher in rtc_core::dpi::CandidateKind::MATCHER_LABELS {
        match snap.get("rtc_dpi_candidates_total", &[("matcher", matcher)]) {
            Some(MetricValue::Counter(_)) => {}
            other => panic!("missing candidates counter for matcher {matcher}: {other:?}"),
        }
        match snap.get("rtc_dpi_message_bytes", &[("matcher", matcher)]) {
            Some(MetricValue::Histogram(_)) => {}
            other => panic!("missing message-size histogram for matcher {matcher}: {other:?}"),
        }
        match snap.get("rtc_dpi_resolve_nanoseconds", &[("matcher", matcher)]) {
            Some(MetricValue::Histogram(_)) => {}
            other => panic!("missing resolve-latency histogram for matcher {matcher}: {other:?}"),
        }
    }

    // The traffic mix actually validates messages from several matchers.
    let validated = snap.counter_family_total("rtc_dpi_validated_messages_total");
    assert!(validated > 0, "no validated messages recorded");

    // Counter/stats cross-checks: the registry agrees with PipelineStats.
    let decode_in = match snap.get("rtc_pipeline_stage_items_in_total", &[("stage", "decode")]) {
        Some(MetricValue::Counter(n)) => *n,
        _ => unreachable!(),
    };
    assert_eq!(decode_in, report.pipeline.stage(rtc_core::pipeline::StageKind::Decode).items_in);
    match snap.get("rtc_filter_peak_retained_bytes", &[]) {
        Some(MetricValue::Gauge(peak)) => assert_eq!(*peak as usize, report.pipeline.peak_retained_bytes),
        other => panic!("missing peak-retained gauge: {other:?}"),
    }

    // Compliance counters match the aggregated records.
    let judged: u64 = report.data.calls.iter().map(|c| c.checked.messages.len() as u64).sum();
    assert_eq!(snap.counter_family_total("rtc_compliance_messages_total"), judged);

    // Spans: the study → call → stage hierarchy was recorded.
    for span in ["study.call", "study.call.filter", "study.call.dpi", "study.call.compliance", "study.aggregate"] {
        match snap.get("rtc_span_nanoseconds", &[("span", span)]) {
            Some(MetricValue::Histogram(h)) => assert!(h.count > 0, "span {span} never recorded"),
            other => panic!("missing span series {span}: {other:?}"),
        }
    }

    // The Prometheus dump is well-formed and carries every family above.
    let prom = snap.to_prometheus();
    for family in [
        "rtc_pipeline_stage_items_in_total",
        "rtc_pipeline_stage_call_nanoseconds",
        "rtc_dpi_candidates_total",
        "rtc_dpi_message_bytes",
        "rtc_filter_streams_total",
        "rtc_compliance_messages_total",
        "rtc_span_nanoseconds",
    ] {
        assert!(prom.contains(&format!("# TYPE {family} ")), "missing TYPE header for {family}");
    }
    for line in prom.lines() {
        assert!(line.starts_with('#') || line.rsplit_once(' ').is_some(), "malformed line: {line:?}");
    }
}

/// Batch and streaming drivers agree on the headline counters (wall-time
/// series will differ; deterministic event counts must not).
#[test]
fn batch_and_streaming_record_the_same_event_counts() {
    let mut batch_config = smoke_config(17);
    batch_config.obs = MetricsRegistry::new();
    let captures = rtc_core::capture::run_experiment(&batch_config.experiment);
    let batch = Study::analyze(&captures, &batch_config);

    let dir = std::env::temp_dir().join(format!("rtc-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    rtc_core::capture::save_experiment(&dir, &captures).unwrap();
    let mut streaming_config = smoke_config(17);
    streaming_config.obs = MetricsRegistry::new();
    let streaming = rtc_core::StreamingStudy::analyze_dir(&dir, &streaming_config, 0, None).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // `run_experiment` order vs. the streaming driver's sorted manifest
    // order can differ; compare the call sets order-insensitively.
    let sort_key = |c: &rtc_core::CallRecord| (c.app.clone(), c.network.clone(), c.repeat);
    let mut batch_calls = batch.data.calls.clone();
    batch_calls.sort_by_key(sort_key);
    let mut streaming_calls = streaming.data.calls.clone();
    streaming_calls.sort_by_key(sort_key);
    assert_eq!(batch_calls, streaming_calls);
    for family in [
        "rtc_compliance_messages_total",
        "rtc_compliance_compliant_total",
        "rtc_dpi_candidates_total",
        "rtc_dpi_validated_messages_total",
        "rtc_dpi_rejected_datagrams_total",
        "rtc_filter_streams_total",
        "rtc_study_calls_total",
    ] {
        assert_eq!(
            batch.metrics.counter_family_total(family),
            streaming.metrics.counter_family_total(family),
            "family {family} disagrees between drivers"
        );
    }
}
