//! The staged streaming analysis engine.
//!
//! One call flows through five stages:
//!
//! ```text
//! pcap records ─▶ Decode ─▶ Filter ─▶ Dpi ─▶ Compliance ─▶ Aggregate
//!                 (per      (online   (observe,  (context,     (fold into
//!                  record)   5-tuple   then       then          the study)
//!                            acct.)    resolve)   judge)
//! ```
//!
//! Datagram payloads are zero-copy `bytes::Bytes` views of the record
//! frame buffers, so a datagram costs a refcount, not a copy, on its way
//! through the stages. The [`Decode`](StageKind::Decode) and
//! [`Filter`](StageKind::Filter) stages are truly incremental: records
//! arrive chunk by chunk (see [`rtc_pcap::TraceReader`]) and the online
//! filter retains only what later stages can still need — non-RTC streams
//! are dropped the moment they are provably doomed, so peak memory is
//! O(chunk + live streams), not O(trace). DPI and compliance are
//! whole-call analyses by nature (stream validation and contextual checks
//! need the complete call); their stages buffer the *accepted* RTC
//! datagrams only — the small survivor set of the two-stage filter.
//!
//! The batch API ([`crate::analyze_capture`], [`crate::Study::run`]) is a
//! thin wrapper over this engine: one code path, two drivers. The
//! `streaming_matches_batch` differential tests assert the outputs are
//! identical.

use crate::{CallAnalysis, StudyConfig};
use rtc_compliance::context::CallContextBuilder;
use rtc_compliance::{check_message, CheckedCall, CheckedMessage};
use rtc_dpi::resolve::{ContextBuilder, ValidationContext};
use rtc_dpi::CandidateKind;
use rtc_dpi::{CallDissection, CandidateBatch, DatagramClass, DatagramDissection, DpiConfig};
use rtc_filter::{FilterConfig, OnlineFilter, OnlineOutcome, Retention};
use rtc_obs::registry::{bucket_index, BUCKETS};
use rtc_obs::MetricsRegistry;
use rtc_pcap::trace::{decode_record, Datagram, Record};
use rtc_pcap::Timestamp;
use rtc_report::CallRecord;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::{Duration, Instant};

/// Identity of the five pipeline stages, in flow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Link-layer records → transport datagrams (zero-copy payload views).
    Decode,
    /// Online two-stage filtering (§3.2): 5-tuple stream accounting and
    /// window classification.
    Filter,
    /// Offset-shifting DPI (§4.1): candidate extraction + stream-context
    /// validation.
    Dpi,
    /// Five-criterion compliance judgment (§4.2).
    Compliance,
    /// Folding completed calls into the study report.
    Aggregate,
}

impl StageKind {
    /// All stages, in flow order.
    pub const ALL: [StageKind; 5] =
        [StageKind::Decode, StageKind::Filter, StageKind::Dpi, StageKind::Compliance, StageKind::Aggregate];

    /// Short lowercase label for progress lines.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Decode => "decode",
            StageKind::Filter => "filter",
            StageKind::Dpi => "dpi",
            StageKind::Compliance => "compliance",
            StageKind::Aggregate => "aggregate",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Counters and wall-clock busy time of one stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageMetrics {
    /// Items pushed into the stage.
    pub items_in: u64,
    /// Items the stage emitted downstream.
    pub items_out: u64,
    /// Time spent inside the stage's `push` and `finish` calls.
    pub busy: Duration,
}

impl StageMetrics {
    /// Sum another stage's counters into this one.
    pub fn absorb(&mut self, other: &StageMetrics) {
        self.items_in += other.items_in;
        self.items_out += other.items_out;
        self.busy += other.busy;
    }
}

/// Per-stage counters/timings of a pipeline run (one call, or summed over
/// a whole study), exposed on [`crate::StudyReport::pipeline`].
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Metrics per stage, indexed in [`StageKind::ALL`] order.
    pub stages: [StageMetrics; 5],
    /// High-water mark of datagram bytes the online filter retained —
    /// the pipeline's residency bound (max over calls when summed).
    pub peak_retained_bytes: usize,
}

impl PipelineStats {
    /// Metrics of one stage.
    pub fn stage(&self, kind: StageKind) -> &StageMetrics {
        &self.stages[kind.index()]
    }

    /// Mutable metrics of one stage.
    pub fn stage_mut(&mut self, kind: StageKind) -> &mut StageMetrics {
        &mut self.stages[kind.index()]
    }

    /// Fold another run's stats into this one: counters add, the memory
    /// high-water mark takes the max.
    pub fn absorb(&mut self, other: &PipelineStats) {
        for (mine, theirs) in self.stages.iter_mut().zip(other.stages.iter()) {
            mine.absorb(theirs);
        }
        self.peak_retained_bytes = self.peak_retained_bytes.max(other.peak_retained_bytes);
    }

    /// One-line summary for progress output, e.g.
    /// `decode 120→118 | filter 118→40 | dpi 40→40 | compliance 40→52 | peak 3 KiB`.
    pub fn summary_line(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for kind in StageKind::ALL {
            let m = self.stage(kind);
            if m.items_in == 0 && m.items_out == 0 {
                continue;
            }
            parts.push(format!(
                "{} {}→{} {:.1}ms",
                kind.label(),
                m.items_in,
                m.items_out,
                m.busy.as_secs_f64() * 1e3
            ));
        }
        parts.push(format!("peak {} B", self.peak_retained_bytes));
        parts.join(" | ")
    }
}

/// One stage of the streaming engine: items are `push`ed through one at a
/// time; `finish` flushes whatever the stage withheld (stages whose
/// decision needs the whole call emit everything here).
///
/// Stages write to a caller-provided sink instead of returning
/// allocations, so a quiet stage costs nothing per item.
pub trait Stage {
    /// Item type flowing in.
    type In;
    /// Item type flowing out.
    type Out;

    /// Which pipeline slot this stage fills.
    fn kind(&self) -> StageKind;

    /// Feed one item; any ready output is appended to `out`.
    fn push(&mut self, item: Self::In, out: &mut Vec<Self::Out>);

    /// No more input: emit everything still withheld.
    fn finish(&mut self, out: &mut Vec<Self::Out>);
}

/// Instrumentation wrapper: counts items in/out and accumulates busy time
/// around an inner [`Stage`].
pub struct Timed<S: Stage> {
    stage: S,
    metrics: StageMetrics,
}

impl<S: Stage> Timed<S> {
    /// Wrap a stage.
    pub fn new(stage: S) -> Timed<S> {
        Timed { stage, metrics: StageMetrics::default() }
    }

    /// The wrapped stage.
    pub fn stage(&self) -> &S {
        &self.stage
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> StageMetrics {
        self.metrics
    }

    /// Timed, counted `push`.
    pub fn push(&mut self, item: S::In, out: &mut Vec<S::Out>) {
        let before = out.len();
        let t = Instant::now();
        self.stage.push(item, out);
        self.metrics.busy += t.elapsed();
        self.metrics.items_in += 1;
        self.metrics.items_out += (out.len() - before) as u64;
    }

    /// Timed, counted `finish`.
    pub fn finish(&mut self, out: &mut Vec<S::Out>) {
        let before = out.len();
        let t = Instant::now();
        self.stage.finish(out);
        self.metrics.busy += t.elapsed();
        self.metrics.items_out += (out.len() - before) as u64;
    }
}

// ---------------------------------------------------------------------------
// Concrete stages.
// ---------------------------------------------------------------------------

/// Decode: link-layer [`Record`]s → transport [`Datagram`]s. Payloads are
/// zero-copy slices of the record's frame buffer. Non-IP/odd frames are
/// silently skipped, exactly like the batch `Trace::datagrams`.
pub struct DecodeStage {
    raw_bytes: usize,
}

impl DecodeStage {
    /// Fresh decoder.
    pub fn new() -> DecodeStage {
        DecodeStage { raw_bytes: 0 }
    }

    /// Total link-layer bytes seen (the capture's `total_bytes`).
    pub fn raw_bytes(&self) -> usize {
        self.raw_bytes
    }
}

impl Default for DecodeStage {
    fn default() -> DecodeStage {
        DecodeStage::new()
    }
}

impl Stage for DecodeStage {
    type In = Record;
    type Out = Datagram;

    fn kind(&self) -> StageKind {
        StageKind::Decode
    }

    fn push(&mut self, record: Record, out: &mut Vec<Datagram>) {
        self.raw_bytes += record.data.len();
        if let Some(d) = decode_record(&record) {
            out.push(d);
        }
    }

    fn finish(&mut self, _out: &mut Vec<Datagram>) {}
}

/// Filter: the online two-stage filter in [`Retention::AcceptedUdp`] mode.
/// Nothing is emitted until `finish` — stream classification is a
/// whole-call decision — but datagrams of provably doomed streams are
/// released as soon as their fate is sealed, which is what bounds
/// retention to the live-stream set.
pub struct FilterStage {
    online: Option<OnlineFilter>,
    outcome: Option<OnlineOutcome>,
}

impl FilterStage {
    /// A filter for one call window.
    pub fn new(call_window: (Timestamp, Timestamp), config: FilterConfig) -> FilterStage {
        FilterStage { online: Some(OnlineFilter::new(call_window, config, Retention::AcceptedUdp)), outcome: None }
    }

    /// Datagram bytes currently retained.
    pub fn retained_bytes(&self) -> usize {
        self.online.as_ref().map(|o| o.retained_bytes()).unwrap_or(0)
    }

    /// 5-tuple streams currently tracked.
    pub fn live_streams(&self) -> usize {
        self.online.as_ref().map(|o| o.live_streams()).unwrap_or(0)
    }

    /// The filtering outcome; available after `finish`.
    pub fn outcome(&self) -> Option<&OnlineOutcome> {
        self.outcome.as_ref()
    }
}

impl Stage for FilterStage {
    type In = Datagram;
    type Out = Datagram;

    fn kind(&self) -> StageKind {
        StageKind::Filter
    }

    fn push(&mut self, d: Datagram, _out: &mut Vec<Datagram>) {
        self.online.as_mut().expect("push after finish").push(d);
    }

    fn finish(&mut self, out: &mut Vec<Datagram>) {
        let mut outcome = self.online.take().expect("finish twice").finish_streaming();
        out.append(&mut outcome.accepted_udp);
        self.outcome = Some(outcome);
    }
}

/// Sample interval for per-datagram resolve timing: every Nth datagram's
/// `resolve_datagram` call is clocked and attributed to the matcher of its
/// first validated message. Sampling keeps the `Instant` overhead out of
/// the hot loop while still populating latency distributions.
const RESOLVE_SAMPLE: usize = 64;

/// Plain (non-atomic) per-matcher accumulators the DPI stage fills while it
/// works and the session flushes into the registry once per call — the hot
/// extraction/validation loops never touch an atomic. Indexed by
/// [`CandidateKind::matcher_index`]; the extra latency family is the
/// "none" attribution for datagrams that resolved to no standard message.
struct MatcherAccum {
    /// Candidates the extractor produced, per matcher.
    seen: [u64; 5],
    /// Validated (resolved) messages, per matcher.
    validated: [u64; 5],
    /// Validated message sizes, pre-bucketed in the registry's log2 layout.
    msg_bytes: [[u64; BUCKETS]; 5],
    msg_bytes_sum: [u64; 5],
    /// Sampled `resolve_datagram` latencies (ns); index 5 = "none".
    resolve_ns: [[u64; BUCKETS]; 6],
    resolve_ns_sum: [u64; 6],
}

impl MatcherAccum {
    fn new() -> MatcherAccum {
        MatcherAccum {
            seen: [0; 5],
            validated: [0; 5],
            msg_bytes: [[0; BUCKETS]; 5],
            msg_bytes_sum: [0; 5],
            resolve_ns: [[0; BUCKETS]; 6],
            resolve_ns_sum: [0; 6],
        }
    }
}

/// DPI: on `push`, a datagram's candidates are extracted once (Algorithm 1
/// lines 5–13) and fed to the validation-context builder; on `finish` the
/// sealed context resolves every datagram (lines 14–19), reusing the
/// stored candidates — extraction cost is paid exactly once per datagram,
/// as in the batch `dissect_call`.
pub struct DpiStage {
    config: DpiConfig,
    builder: Option<ContextBuilder>,
    batch: CandidateBatch,
    datagrams: Vec<Datagram>,
    rejections: BTreeMap<String, usize>,
    rtp_ssrcs: HashMap<rtc_wire::ip::FiveTuple, HashSet<u32>>,
    matchers: Box<MatcherAccum>,
}

impl DpiStage {
    /// A DPI stage for one call.
    pub fn new(config: &DpiConfig) -> DpiStage {
        DpiStage {
            config: *config,
            builder: Some(ContextBuilder::new(config)),
            batch: CandidateBatch::with_capacity(0),
            datagrams: Vec::new(),
            rejections: BTreeMap::new(),
            rtp_ssrcs: HashMap::new(),
            matchers: Box::new(MatcherAccum::new()),
        }
    }

    /// Hand over the call-level context gathered during resolution:
    /// `(rejection taxonomy, RTP SSRCs per conversation)`.
    pub fn take_call_parts(&mut self) -> (BTreeMap<String, usize>, HashMap<rtc_wire::ip::FiveTuple, HashSet<u32>>) {
        (std::mem::take(&mut self.rejections), std::mem::take(&mut self.rtp_ssrcs))
    }
}

impl Stage for DpiStage {
    type In = Datagram;
    type Out = DatagramDissection;

    fn kind(&self) -> StageKind {
        StageKind::Dpi
    }

    fn push(&mut self, d: Datagram, _out: &mut Vec<DatagramDissection>) {
        self.batch.push_payload(&d.payload, self.config.max_offset);
        let candidates = self.batch.get(self.batch.len() - 1);
        for c in candidates {
            self.matchers.seen[c.kind.matcher_index()] += 1;
        }
        self.builder.as_mut().expect("push after finish").observe(&d, candidates);
        self.datagrams.push(d);
    }

    fn finish(&mut self, out: &mut Vec<DatagramDissection>) {
        let mut ctx: ValidationContext = self.builder.take().expect("finish twice").finish();
        // Resolution fans out over the work-stealing chunks for large calls
        // (and stays serial below the threshold); every RESOLVE_SAMPLE-th
        // datagram is clocked inside the worker that resolves it.
        let (dissections, samples) =
            rtc_dpi::par::resolve_all(&self.datagrams, &self.batch, &ctx, &self.config, RESOLVE_SAMPLE);
        for (i, ns) in samples {
            let family = dissections[i].messages.first().map(|m| m.kind.matcher_index()).unwrap_or(5);
            self.matchers.resolve_ns[family][bucket_index(ns)] += 1;
            self.matchers.resolve_ns_sum[family] = self.matchers.resolve_ns_sum[family].wrapping_add(ns);
        }
        out.reserve(dissections.len());
        for (dd, d) in dissections.into_iter().zip(self.datagrams.drain(..)) {
            for m in &dd.messages {
                let family = m.kind.matcher_index();
                let len = m.data.len() as u64;
                self.matchers.validated[family] += 1;
                self.matchers.msg_bytes[family][bucket_index(len)] += 1;
                self.matchers.msg_bytes_sum[family] += len;
            }
            if dd.class == DatagramClass::FullyProprietary {
                let key = rtc_dpi::rejection_key(&d.payload);
                match self.rejections.get_mut(key.as_ref()) {
                    Some(n) => *n += 1,
                    None => {
                        self.rejections.insert(key.into_owned(), 1);
                    }
                }
            }
            out.push(dd);
        }
        self.rtp_ssrcs = std::mem::take(&mut ctx.rtp_ssrcs);
    }
}

/// Compliance: on `push`, each dissected datagram's messages feed the
/// call-context builder (the contextual criteria are whole-call facts); on
/// `finish` the sealed context judges every message in capture order.
pub struct ComplianceStage {
    builder: Option<CallContextBuilder>,
    dissections: Vec<DatagramDissection>,
    fully_proprietary: usize,
}

impl ComplianceStage {
    /// A compliance stage for one call.
    pub fn new() -> ComplianceStage {
        ComplianceStage {
            builder: Some(CallContextBuilder::default()),
            dissections: Vec::new(),
            fully_proprietary: 0,
        }
    }

    /// Fully proprietary datagrams counted so far.
    pub fn fully_proprietary(&self) -> usize {
        self.fully_proprietary
    }

    /// Hand back the per-datagram dissections (for the call-level findings
    /// and header-profile analyses).
    pub fn take_dissections(&mut self) -> Vec<DatagramDissection> {
        std::mem::take(&mut self.dissections)
    }
}

impl Default for ComplianceStage {
    fn default() -> ComplianceStage {
        ComplianceStage::new()
    }
}

impl Stage for ComplianceStage {
    type In = DatagramDissection;
    type Out = CheckedMessage;

    fn kind(&self) -> StageKind {
        StageKind::Compliance
    }

    fn push(&mut self, dd: DatagramDissection, _out: &mut Vec<CheckedMessage>) {
        let builder = self.builder.as_mut().expect("push after finish");
        for m in &dd.messages {
            builder.observe(&dd, m);
        }
        if dd.class == DatagramClass::FullyProprietary {
            self.fully_proprietary += 1;
        }
        self.dissections.push(dd);
    }

    fn finish(&mut self, out: &mut Vec<CheckedMessage>) {
        let ctx = self.builder.take().expect("finish twice").finish();
        for dd in &self.dissections {
            for m in &dd.messages {
                out.push(check_message(dd, m, &ctx));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The per-call session wiring the stages together.
// ---------------------------------------------------------------------------

/// Ground-truth call metadata the pipeline needs (a subset of
/// [`rtc_capture::CallManifest`]).
#[derive(Debug, Clone)]
pub struct CallMeta {
    /// Application display name (e.g. "Zoom").
    pub app: String,
    /// Network configuration label.
    pub network: String,
    /// Repeat index.
    pub repeat: usize,
    /// The call window (start, end).
    pub call_window: (Timestamp, Timestamp),
}

impl CallMeta {
    /// Extract the pipeline-relevant metadata from a manifest.
    pub fn of(manifest: &rtc_capture::CallManifest) -> CallMeta {
        CallMeta {
            app: manifest.application().name().to_string(),
            network: manifest.network.clone(),
            repeat: manifest.repeat,
            call_window: manifest.call_window(),
        }
    }
}

/// One call flowing through the staged engine: feed [`Record`]s with
/// [`CallSession::push_record`] (chunk by chunk — see
/// [`rtc_pcap::TraceReader`]), then [`CallSession::finish`] to run the
/// whole-call stages and obtain the analysis plus per-stage metrics.
pub struct CallSession {
    meta: CallMeta,
    obs: MetricsRegistry,
    decode: Timed<DecodeStage>,
    filter: Timed<FilterStage>,
    dpi: Timed<DpiStage>,
    compliance: Timed<ComplianceStage>,
    /// Reusable scratch between decode and filter.
    decoded: Vec<Datagram>,
    /// Sink for stages that never emit on push.
    silent: Vec<Datagram>,
}

impl CallSession {
    /// Start a session for one call.
    pub fn new(meta: CallMeta, config: &StudyConfig) -> CallSession {
        CallSession {
            obs: config.obs.clone(),
            decode: Timed::new(DecodeStage::new()),
            filter: Timed::new(FilterStage::new(meta.call_window, config.filter.clone())),
            dpi: Timed::new(DpiStage::new(&config.dpi)),
            compliance: Timed::new(ComplianceStage::new()),
            meta,
            decoded: Vec::new(),
            silent: Vec::new(),
        }
    }

    /// The call's ground-truth metadata (session tables report failures
    /// with the manifest's app/network, matching the batch driver).
    pub fn meta(&self) -> &CallMeta {
        &self.meta
    }

    /// Feed one capture record through decode and the online filter.
    pub fn push_record(&mut self, record: Record) {
        self.decode.push(record, &mut self.decoded);
        for d in self.decoded.drain(..) {
            self.filter.push(d, &mut self.silent);
        }
        debug_assert!(self.silent.is_empty(), "filter must withhold until finish");
    }

    /// Datagram bytes the filter currently retains (the residency the
    /// streaming engine bounds).
    pub fn retained_bytes(&self) -> usize {
        self.filter.stage().retained_bytes()
    }

    /// 5-tuple streams currently tracked by the filter.
    pub fn live_streams(&self) -> usize {
        self.filter.stage().live_streams()
    }

    /// Run the whole-call stages and assemble the analysis. The returned
    /// [`PipelineStats`] covers decode/filter/dpi/compliance; the
    /// aggregate slot is filled by the study driver.
    pub fn finish(mut self) -> (CallAnalysis, PipelineStats) {
        let call_span = self.obs.span("call");

        // Filter classifies every stream and releases the accepted RTC UDP
        // datagrams (in batch `rtc_udp_datagrams` order).
        let mut accepted: Vec<Datagram> = Vec::new();
        {
            let _s = self.obs.span("filter");
            self.filter.finish(&mut accepted);
        }

        // DPI: observe each datagram (candidate extraction happens here),
        // then resolve against the sealed validation context.
        let mut dissections: Vec<DatagramDissection> = Vec::new();
        {
            let _s = self.obs.span("dpi");
            for d in accepted.drain(..) {
                self.dpi.push(d, &mut dissections);
            }
            self.dpi.finish(&mut dissections);
        }
        let (rejections, rtp_ssrcs) = self.dpi.stage.take_call_parts();

        // Compliance: observe the call context, then judge every message.
        let mut messages: Vec<CheckedMessage> = Vec::new();
        {
            let _s = self.obs.span("compliance");
            for dd in dissections.drain(..) {
                self.compliance.push(dd, &mut messages);
            }
            self.compliance.finish(&mut messages);
        }

        let dissection =
            CallDissection { datagrams: self.compliance.stage.take_dissections(), rtp_ssrcs, rejections };
        let checked =
            CheckedCall { messages, fully_proprietary_datagrams: self.compliance.stage().fully_proprietary() };

        let findings = rtc_compliance::findings::detect_call(&dissection);
        let header_profiles = rtc_dpi::proprietary::profile_streams(&dissection, 50);
        let outcome = self.filter.stage().outcome().expect("filter finished");
        let record = CallRecord {
            app: self.meta.app.clone(),
            network: self.meta.network.clone(),
            repeat: self.meta.repeat,
            raw_bytes: self.decode.stage().raw_bytes(),
            raw: outcome.raw,
            stage1: outcome.stage1,
            stage2: outcome.stage2,
            rtc: outcome.rtc,
            classes: CallRecord::class_counts(&dissection),
            rejections: dissection.rejections.clone(),
            checked,
        };

        let mut stats = PipelineStats { peak_retained_bytes: outcome.peak_retained_bytes, ..Default::default() };
        stats.stages[StageKind::Decode.index()] = self.decode.metrics();
        stats.stages[StageKind::Filter.index()] = self.filter.metrics();
        stats.stages[StageKind::Dpi.index()] = self.dpi.metrics();
        stats.stages[StageKind::Compliance.index()] = self.compliance.metrics();

        // One flush per call: everything the stages accumulated in plain
        // counters lands in the shared registry here, off the hot paths.
        flush_call_metrics(&self.obs, &stats, outcome, &self.dpi.stage.matchers, &record.rejections, &record.checked);
        drop(call_span);

        (CallAnalysis { record, dissection, findings, header_profiles }, stats)
    }
}

/// Drive one call end to end through a fresh [`CallSession`]: construct
/// from the metadata, feed every record, finish. This is the single
/// session-construction/finish code path shared by the batch driver
/// ([`crate::analyze_capture_staged`]), the streaming driver
/// ([`crate::StreamingStudy`]), and the live service (`rtc-service`).
pub fn run_session(
    meta: CallMeta,
    config: &StudyConfig,
    records: impl IntoIterator<Item = Record>,
) -> (CallAnalysis, PipelineStats) {
    let mut session = CallSession::new(meta, config);
    for record in records {
        session.push_record(record);
    }
    session.finish()
}

/// Analyze one saved call by streaming its pcap file through a
/// [`CallSession`] in bounded chunks (`chunk_records == 0` uses the
/// reader default). Peak memory is O(chunk + live streams + one call's
/// RTC traffic), independent of the trace size.
pub fn analyze_saved_call(
    pcap_path: &std::path::Path,
    manifest: &rtc_capture::CallManifest,
    config: &StudyConfig,
    chunk_records: usize,
) -> std::io::Result<(CallAnalysis, PipelineStats)> {
    let mut reader =
        rtc_pcap::open_file(pcap_path, chunk_records).map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut session = CallSession::new(CallMeta::of(manifest), config);
    while let Some(chunk) = reader.next_chunk().map_err(|e| std::io::Error::other(e.to_string()))? {
        for record in chunk {
            session.push_record(record);
        }
    }
    Ok(session.finish())
}

/// Record one stage's per-call counters and latency into the registry.
/// Used by the session for decode/filter/dpi/compliance and by the study
/// drivers for the aggregate stage.
pub(crate) fn record_stage_metrics(
    obs: &MetricsRegistry,
    kind: StageKind,
    items_in: u64,
    items_out: u64,
    busy: Duration,
) {
    if !obs.is_enabled() {
        return;
    }
    let stage = kind.label();
    let ns = u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX);
    obs.counter("rtc_pipeline_stage_items_in_total", &[("stage", stage)], "Items pushed into each pipeline stage.")
        .add(items_in);
    obs.counter(
        "rtc_pipeline_stage_items_out_total",
        &[("stage", stage)],
        "Items each pipeline stage emitted downstream.",
    )
    .add(items_out);
    obs.counter(
        "rtc_pipeline_stage_busy_nanoseconds_total",
        &[("stage", stage)],
        "Cumulative wall time inside each stage's push/finish calls.",
    )
    .add(ns);
    obs.histogram(
        "rtc_pipeline_stage_call_nanoseconds",
        &[("stage", stage)],
        "Per-call latency of each pipeline stage (busy time of one call).",
    )
    .record(ns);
}

/// Flush a finished call's accumulated observations into the registry.
fn flush_call_metrics(
    obs: &MetricsRegistry,
    stats: &PipelineStats,
    outcome: &OnlineOutcome,
    matchers: &MatcherAccum,
    rejections: &BTreeMap<String, usize>,
    checked: &rtc_compliance::CheckedCall,
) {
    if !obs.is_enabled() {
        return;
    }

    // Stage counters and per-call latency (aggregate is the drivers' job).
    for kind in [StageKind::Decode, StageKind::Filter, StageKind::Dpi, StageKind::Compliance] {
        let m = stats.stage(kind);
        record_stage_metrics(obs, kind, m.items_in, m.items_out, m.busy);
    }

    // Filter: stream fates, with the stage-2 per-heuristic breakdown, and
    // the retained-bytes high-water mark across calls.
    const STREAMS: &str = "rtc_filter_streams_total";
    const STREAMS_HELP: &str = "5-tuple streams per filtering outcome (stage2 split by heuristic).";
    obs.counter(STREAMS, &[("outcome", "rtc")], STREAMS_HELP)
        .add((outcome.rtc.udp_streams + outcome.rtc.tcp_streams) as u64);
    obs.counter(STREAMS, &[("outcome", "stage1")], STREAMS_HELP)
        .add((outcome.stage1.udp_streams + outcome.stage1.tcp_streams) as u64);
    for (heuristic, n) in &outcome.stage2_heuristics {
        let label = format!("stage2-{}", heuristic.label());
        obs.counter(STREAMS, &[("outcome", &label)], STREAMS_HELP).add(*n as u64);
    }
    obs.counter(
        "rtc_filter_udp_datagrams_total",
        &[("outcome", "rtc")],
        "UDP datagrams the two-stage filter accepted as RTC traffic.",
    )
    .add(outcome.rtc.udp_datagrams as u64);
    obs.gauge(
        "rtc_filter_peak_retained_bytes",
        &[],
        "High-water mark of datagram payload bytes retained by the online filter (max over calls).",
    )
    .set_max(outcome.peak_retained_bytes as u64);

    // DPI: the five protocol matchers.
    for (i, matcher) in CandidateKind::MATCHER_LABELS.iter().enumerate() {
        obs.counter(
            "rtc_dpi_candidates_total",
            &[("matcher", matcher)],
            "Candidates the offset-shifting extractor produced, per matcher.",
        )
        .add(matchers.seen[i]);
        obs.counter(
            "rtc_dpi_validated_messages_total",
            &[("matcher", matcher)],
            "Messages that survived stream-context validation, per matcher.",
        )
        .add(matchers.validated[i]);
        obs.histogram("rtc_dpi_message_bytes", &[("matcher", matcher)], "Validated message sizes, per matcher.")
            .merge_buckets(&matchers.msg_bytes[i], matchers.msg_bytes_sum[i]);
    }
    for (i, family) in CandidateKind::MATCHER_LABELS.iter().copied().chain(std::iter::once("none")).enumerate() {
        obs.histogram(
            "rtc_dpi_resolve_nanoseconds",
            &[("matcher", family)],
            "Sampled per-datagram resolution latency, attributed to the matcher of the first validated message.",
        )
        .merge_buckets(&matchers.resolve_ns[i], matchers.resolve_ns_sum[i]);
    }
    for (reason, n) in rejections {
        obs.counter(
            "rtc_dpi_rejected_datagrams_total",
            &[("reason", reason)],
            "Fully-proprietary datagrams by WireError taxonomy key.",
        )
        .add(*n as u64);
    }

    // Compliance: the five-criterion judgment.
    let compliant = checked.messages.iter().filter(|m| m.is_compliant()).count() as u64;
    obs.counter("rtc_compliance_messages_total", &[], "Messages judged against the five criteria.")
        .add(checked.messages.len() as u64);
    obs.counter("rtc_compliance_compliant_total", &[], "Messages satisfying all five criteria.").add(compliant);
    let mut violations = [0u64; 5];
    for m in &checked.messages {
        if let Some(v) = &m.violation {
            violations[(v.criterion.index() - 1) as usize] += 1;
        }
    }
    const CRITERIA: [&str; 5] = ["1", "2", "3", "4", "5"];
    for (i, n) in violations.into_iter().enumerate() {
        if n > 0 {
            obs.counter(
                "rtc_compliance_violations_total",
                &[("criterion", CRITERIA[i])],
                "Violations by first failed criterion (paper numbering).",
            )
            .add(n);
        }
    }
}
