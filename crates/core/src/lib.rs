//! # rtc-core
//!
//! The end-to-end pipeline of the RTC protocol-compliance study — the
//! crate a downstream user drives:
//!
//! ```text
//! experiment matrix ──▶ emulated captures (pcap)     [rtc-capture]
//!        ──▶ two-stage filtering                     [rtc-filter]
//!        ──▶ offset-shifting DPI (Algorithm 1)       [rtc-dpi]
//!        ──▶ five-criterion compliance checks        [rtc-compliance]
//!        ──▶ tables, figures, findings               [rtc-report]
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use rtc_core::{Study, StudyConfig};
//!
//! // A miniature version of the paper's 6-app × 3-network matrix.
//! let mut config = StudyConfig::smoke(42);
//! config.experiment.apps = vec!["whatsapp".into()];
//! config.experiment.networks = vec!["wifi-p2p".into()];
//! let report = Study::run(&config);
//! println!("{}", report.render_table(rtc_core::Artifact::Table3));
//! assert!(report.data.app_volume_compliance("WhatsApp") > 0.9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rtc_apps as apps;
pub use rtc_capture as capture;
pub use rtc_compliance as compliance;
pub use rtc_dpi as dpi;
pub use rtc_filter as filter;
pub use rtc_netemu as netemu;
pub use rtc_pcap as pcap;
pub use rtc_report as report;
pub use rtc_wire as wire;

pub use rtc_capture::{CallCapture, ExperimentConfig};
pub use rtc_compliance::findings::Finding;
pub use rtc_report::{CallRecord, StudyData};
pub use rtc_wire::{Reason, WireError, WireProtocol};

use std::collections::BTreeMap;

/// Study configuration: the experiment matrix plus analysis knobs.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// The call matrix to run.
    pub experiment: ExperimentConfig,
    /// Filtering configuration (§3.2).
    pub filter: rtc_filter::FilterConfig,
    /// DPI configuration (§4.1).
    pub dpi: rtc_dpi::DpiConfig,
}

impl StudyConfig {
    /// The paper's full matrix at a given call length / traffic scale.
    pub fn paper_matrix(call_secs: u64, scale: f64, seed: u64) -> StudyConfig {
        StudyConfig {
            experiment: ExperimentConfig::paper_matrix(call_secs, scale, seed),
            filter: rtc_filter::FilterConfig::default(),
            dpi: rtc_dpi::DpiConfig::default(),
        }
    }

    /// A fast miniature matrix (all apps and networks, short scaled calls).
    pub fn smoke(seed: u64) -> StudyConfig {
        StudyConfig {
            experiment: ExperimentConfig::smoke(seed),
            filter: rtc_filter::FilterConfig::default(),
            dpi: rtc_dpi::DpiConfig::default(),
        }
    }
}

/// The analysis of one call, before aggregation.
#[derive(Debug, Clone)]
pub struct CallAnalysis {
    /// Everything the report layer aggregates.
    pub record: CallRecord,
    /// The DPI dissection (kept for findings and debugging).
    pub dissection: rtc_dpi::CallDissection,
    /// Behavioral findings detected in this call (§5.3).
    pub findings: Vec<Finding>,
    /// Reverse-engineered proprietary-header profiles (§5.3 automation).
    pub header_profiles: Vec<rtc_dpi::proprietary::HeaderProfile>,
}

/// Run the full per-call pipeline: decode → filter → DPI → compliance.
pub fn analyze_capture(cap: &CallCapture, config: &StudyConfig) -> CallAnalysis {
    let datagrams = cap.trace.datagrams();
    let fr = rtc_filter::run(&datagrams, cap.manifest.call_window(), &config.filter);
    let rtc_udp = fr.rtc_udp_datagrams();
    let dissection = rtc_dpi::dissect_call(&rtc_udp, &config.dpi);
    let checked = rtc_compliance::check_call(&dissection);
    let findings = rtc_compliance::findings::detect_call(&dissection);
    let header_profiles = rtc_dpi::proprietary::profile_streams(&dissection, 50);
    let record = CallRecord {
        app: cap.manifest.application().name().to_string(),
        network: cap.manifest.network.clone(),
        repeat: cap.manifest.repeat,
        raw_bytes: cap.trace.total_bytes(),
        raw: fr.raw,
        stage1: fr.stage1,
        stage2: fr.stage2,
        rtc: fr.rtc,
        classes: CallRecord::class_counts(&dissection),
        rejections: dissection.rejections.clone(),
        checked,
    };
    CallAnalysis { record, dissection, findings, header_profiles }
}

/// The artifacts of the paper's evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// Table 1 — traffic and filtering summary.
    Table1,
    /// Table 2 — message distribution.
    Table2,
    /// Table 3 — type-compliance ratios.
    Table3,
    /// Table 4 — STUN/TURN type inventory.
    Table4,
    /// Table 5 — RTP type inventory.
    Table5,
    /// Table 6 — RTCP type inventory.
    Table6,
    /// Figure 3 — datagram breakdown.
    Figure3,
    /// Figure 4 — volume-based compliance.
    Figure4,
    /// Figure 5 — type-based compliance.
    Figure5,
}

impl Artifact {
    /// Every artifact, in the paper's order.
    pub const ALL: [Artifact; 9] = [
        Artifact::Table1,
        Artifact::Table2,
        Artifact::Table3,
        Artifact::Table4,
        Artifact::Table5,
        Artifact::Table6,
        Artifact::Figure3,
        Artifact::Figure4,
        Artifact::Figure5,
    ];
}

/// One call whose analysis panicked. The study records it and continues;
/// a single poisoned capture no longer takes down the whole run.
#[derive(Debug, Clone)]
pub struct FailedCall {
    /// Index of the capture in the input slice.
    pub index: usize,
    /// Application name from the call manifest.
    pub app: String,
    /// Network label from the call manifest.
    pub network: String,
    /// The panic message.
    pub error: String,
}

/// The complete study output.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Aggregated per-call records.
    pub data: StudyData,
    /// Behavioral findings per application (§5.3), deduplicated by kind.
    pub findings: BTreeMap<String, Vec<Finding>>,
    /// Proprietary-header profile summaries per application (a few
    /// representative streams each).
    pub header_profiles: BTreeMap<String, Vec<String>>,
    /// Calls whose analysis panicked, in input order (empty on a clean run).
    pub failures: Vec<FailedCall>,
}

impl StudyReport {
    /// Render one artifact as an aligned text table.
    pub fn render_table(&self, artifact: Artifact) -> String {
        self.table(artifact).to_text()
    }

    /// Render one artifact as CSV.
    pub fn render_csv(&self, artifact: Artifact) -> String {
        self.table(artifact).to_csv()
    }

    /// The artifact's data table.
    pub fn table(&self, artifact: Artifact) -> rtc_report::render::TextTable {
        match artifact {
            Artifact::Table1 => rtc_report::tables::table1(&self.data),
            Artifact::Table2 => rtc_report::tables::table2(&self.data),
            Artifact::Table3 => rtc_report::tables::table3(&self.data),
            Artifact::Table4 => rtc_report::tables::table4(&self.data),
            Artifact::Table5 => rtc_report::tables::table5(&self.data),
            Artifact::Table6 => rtc_report::tables::table6(&self.data),
            Artifact::Figure3 => rtc_report::figures::figure3(&self.data),
            Artifact::Figure4 => rtc_report::figures::figure4(&self.data),
            Artifact::Figure5 => rtc_report::figures::figure5(&self.data),
        }
    }

    /// Render every table and figure plus the findings section.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        for a in Artifact::ALL {
            out.push_str(&self.render_table(a));
            out.push('\n');
        }
        out.push_str("== Application-specific findings (§5.3) ==\n");
        for (app, findings) in &self.findings {
            for f in findings {
                out.push_str(&format!("{app}: {}\n", f.detail));
            }
        }
        if !self.header_profiles.is_empty() {
            out.push_str("\n== Proprietary header profiles (automated §5.3 analysis) ==\n");
            for (app, profiles) in &self.header_profiles {
                for p in profiles {
                    out.push_str(&format!("{app}: {p}\n"));
                }
            }
        }
        let mut apps: Vec<&str> = self.data.calls.iter().map(|c| c.app.as_str()).collect();
        apps.sort_unstable();
        apps.dedup();
        let mut wrote_header = false;
        for app in apps {
            let taxonomy = self.data.app_rejection_taxonomy(app);
            if taxonomy.is_empty() {
                continue;
            }
            if !wrote_header {
                out.push_str("\n== Fully-proprietary datagram rejection taxonomy ==\n");
                wrote_header = true;
            }
            for (key, n) in &taxonomy {
                out.push_str(&format!("{app}: {key} ({n} datagrams)\n"));
            }
        }
        if !self.failures.is_empty() {
            out.push_str("\n== Analysis failures (calls excluded from the tables) ==\n");
            for f in &self.failures {
                out.push_str(&format!("call {} ({} / {}): {}\n", f.index, f.app, f.network, f.error));
            }
        }
        out
    }
}

/// The study driver.
pub struct Study;

impl Study {
    /// Run the configured experiment matrix end to end, parallelized
    /// across calls.
    pub fn run(config: &StudyConfig) -> StudyReport {
        let captures = rtc_capture::run_experiment(&config.experiment);
        Self::analyze(&captures, config)
    }

    /// Analyze existing captures (e.g. loaded from disk).
    pub fn analyze(captures: &[CallCapture], config: &StudyConfig) -> StudyReport {
        Self::analyze_with(captures, config, analyze_capture)
    }

    /// The worker loop behind [`Study::analyze`], parameterized over the
    /// per-call analysis so tests can inject failures.
    fn analyze_with<F>(captures: &[CallCapture], config: &StudyConfig, analyze_one: F) -> StudyReport
    where
        F: Fn(&CallCapture, &StudyConfig) -> CallAnalysis + Sync,
    {
        let queue = crossbeam::queue::SegQueue::new();
        for (i, c) in captures.iter().enumerate() {
            queue.push((i, c));
        }
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let workers = cores.min(captures.len().max(1));
        // Cross-call and intra-call parallelism share the same cores: unless
        // the caller pinned a DPI thread count, give each call's candidate
        // extraction an equal share of the machine (at least one thread).
        let mut config = config.clone();
        if config.dpi.threads == 0 {
            config.dpi.threads = (cores / workers).max(1);
        }
        let config = &config;
        let mut analyses: Vec<Option<CallAnalysis>> = (0..captures.len()).map(|_| None).collect();
        let mut failures: Vec<FailedCall> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..workers {
                let queue = &queue;
                let analyze_one = &analyze_one;
                handles.push(s.spawn(move || {
                    let mut done = Vec::new();
                    let mut failed = Vec::new();
                    while let Some((i, cap)) = queue.pop() {
                        // A panicking call is recorded and skipped; the
                        // remaining calls still produce a report.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| analyze_one(cap, config))) {
                            Ok(a) => done.push((i, a)),
                            Err(e) => failed.push(FailedCall {
                                index: i,
                                app: cap.manifest.application().name().to_string(),
                                network: cap.manifest.network.clone(),
                                error: panic_message(e.as_ref()),
                            }),
                        }
                    }
                    (done, failed)
                }));
            }
            for h in handles {
                // Per-call panics are caught above, so a worker join can
                // only fail on a bug in the loop itself.
                let (done, failed) = h.join().expect("study worker loop panicked");
                for (i, a) in done {
                    analyses[i] = Some(a);
                }
                failures.extend(failed);
            }
        });
        failures.sort_by_key(|f| f.index);
        let analyses: Vec<CallAnalysis> = analyses.into_iter().flatten().collect();

        // Cross-call findings: SSRC reuse per (app, network) cell.
        let mut findings: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
        let mut header_profiles: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut by_cell: BTreeMap<(String, String), Vec<&rtc_dpi::CallDissection>> = BTreeMap::new();
        for a in &analyses {
            let entry = header_profiles.entry(a.record.app.clone()).or_default();
            for p in &a.header_profiles {
                if entry.len() < 3 {
                    entry.push(p.summary());
                }
            }
            by_cell.entry((a.record.app.clone(), a.record.network.clone())).or_default().push(&a.dissection);
            let entry = findings.entry(a.record.app.clone()).or_default();
            for f in &a.findings {
                if !entry.iter().any(|e| e.kind == f.kind) {
                    entry.push(f.clone());
                }
            }
        }
        for ((app, _net), dissections) in &by_cell {
            if let Some(f) = rtc_compliance::findings::detect_ssrc_reuse(dissections) {
                let entry = findings.entry(app.clone()).or_default();
                if !entry.iter().any(|e| e.kind == f.kind) {
                    entry.push(f);
                }
            }
        }

        header_profiles.retain(|_, v| !v.is_empty());
        let data = StudyData { calls: analyses.into_iter().map(|a| a.record).collect() };
        StudyReport { data, findings, header_profiles, failures }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_call_pipeline() {
        let config = StudyConfig::smoke(3);
        let cap = rtc_capture::run_call(
            &config.experiment,
            rtc_apps::Application::WhatsApp,
            rtc_netemu::NetworkConfig::WifiP2p,
            0,
        );
        let analysis = analyze_capture(&cap, &config);
        assert_eq!(analysis.record.app, "WhatsApp");
        assert!(analysis.record.rtc.udp_datagrams > 100);
        assert!(!analysis.record.checked.messages.is_empty());
        assert!(analysis.record.checked.volume_compliance() > 0.9);
    }

    #[test]
    fn analysis_panics_are_contained() {
        let mut config = StudyConfig::smoke(7);
        config.experiment.apps = vec!["zoom".into(), "discord".into()];
        config.experiment.networks = vec!["wifi-relay".into()];
        let captures = rtc_capture::run_experiment(&config.experiment);
        assert_eq!(captures.len(), 2);
        let report = Study::analyze_with(&captures, &config, |cap, config| {
            if cap.manifest.application().name() == "Discord" {
                panic!("injected failure");
            }
            analyze_capture(cap, config)
        });
        // The healthy call is fully analyzed, the poisoned one recorded.
        assert_eq!(report.data.calls.len(), 1);
        assert_eq!(report.data.calls[0].app, "Zoom");
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].app, "Discord");
        assert!(report.failures[0].error.contains("injected failure"));
        let all = report.render_all();
        assert!(all.contains("Analysis failures"));
        assert!(all.contains("injected failure"));
    }

    #[test]
    fn smoke_study_renders_everything() {
        let mut config = StudyConfig::smoke(5);
        config.experiment.apps = vec!["zoom".into(), "discord".into()];
        config.experiment.networks = vec!["wifi-relay".into()];
        let report = Study::run(&config);
        assert_eq!(report.data.calls.len(), 2);
        let all = report.render_all();
        for needle in ["Table 1", "Table 3", "Figure 4", "Zoom", "Discord"] {
            assert!(all.contains(needle), "missing {needle}");
        }
        // Discord's type compliance is zero (paper: 0/9).
        let (ok, total) = report.data.app_type_ratio_all("Discord");
        assert_eq!(ok, 0, "discord compliant types: {ok}/{total}");
        assert!(total >= 5);
    }
}
