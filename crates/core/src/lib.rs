//! # rtc-core
//!
//! The end-to-end pipeline of the RTC protocol-compliance study — the
//! crate a downstream user drives:
//!
//! ```text
//! experiment matrix ──▶ emulated captures (pcap)     [rtc-capture]
//!        ──▶ two-stage filtering                     [rtc-filter]
//!        ──▶ offset-shifting DPI (Algorithm 1)       [rtc-dpi]
//!        ──▶ five-criterion compliance checks        [rtc-compliance]
//!        ──▶ tables, figures, findings               [rtc-report]
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use rtc_core::{Study, StudyConfig};
//!
//! // A miniature version of the paper's 6-app × 3-network matrix.
//! let mut config = StudyConfig::smoke(42);
//! config.experiment.apps = vec!["whatsapp".into()];
//! config.experiment.networks = vec!["wifi-p2p".into()];
//! let report = Study::run(&config);
//! println!("{}", report.render_table(rtc_core::Artifact::Table3));
//! assert!(report.data.app_volume_compliance("WhatsApp") > 0.9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pipeline;

pub use rtc_apps as apps;
pub use rtc_capture as capture;
pub use rtc_compliance as compliance;
pub use rtc_dpi as dpi;
pub use rtc_filter as filter;
pub use rtc_netemu as netemu;
pub use rtc_obs as obs;
pub use rtc_pcap as pcap;
pub use rtc_report as report;
pub use rtc_wire as wire;

pub use rtc_capture::{CallCapture, ExperimentConfig};
pub use rtc_compliance::findings::Finding;
pub use rtc_report::{CallRecord, StudyData};
pub use rtc_wire::{Reason, WireError, WireProtocol};

use std::collections::BTreeMap;

/// Study configuration: the experiment matrix plus analysis knobs.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// The call matrix to run.
    pub experiment: ExperimentConfig,
    /// Filtering configuration (§3.2).
    pub filter: rtc_filter::FilterConfig,
    /// DPI configuration (§4.1).
    pub dpi: rtc_dpi::DpiConfig,
    /// Metrics registry every stage and worker of this run records into
    /// (cloning a registry shares its storage). Defaults to a fresh enabled
    /// registry; swap in [`rtc_obs::MetricsRegistry::disabled`] to run
    /// without instrumentation — the differential tests assert both modes
    /// produce byte-identical tables.
    pub obs: rtc_obs::MetricsRegistry,
}

impl StudyConfig {
    /// The paper's full matrix at a given call length / traffic scale.
    pub fn paper_matrix(call_secs: u64, scale: f64, seed: u64) -> StudyConfig {
        StudyConfig {
            experiment: ExperimentConfig::paper_matrix(call_secs, scale, seed),
            filter: rtc_filter::FilterConfig::default(),
            dpi: rtc_dpi::DpiConfig::default(),
            obs: rtc_obs::MetricsRegistry::new(),
        }
    }

    /// A fast miniature matrix (all apps and networks, short scaled calls).
    pub fn smoke(seed: u64) -> StudyConfig {
        StudyConfig {
            experiment: ExperimentConfig::smoke(seed),
            filter: rtc_filter::FilterConfig::default(),
            dpi: rtc_dpi::DpiConfig::default(),
            obs: rtc_obs::MetricsRegistry::new(),
        }
    }
}

/// The analysis of one call, before aggregation.
#[derive(Debug, Clone)]
pub struct CallAnalysis {
    /// Everything the report layer aggregates.
    pub record: CallRecord,
    /// The DPI dissection (kept for findings and debugging).
    pub dissection: rtc_dpi::CallDissection,
    /// Behavioral findings detected in this call (§5.3).
    pub findings: Vec<Finding>,
    /// Reverse-engineered proprietary-header profiles (§5.3 automation).
    pub header_profiles: Vec<rtc_dpi::proprietary::HeaderProfile>,
}

/// Run the full per-call pipeline: decode → filter → DPI → compliance.
///
/// A thin wrapper over the streaming engine ([`pipeline::CallSession`]):
/// the batch and streaming drivers share one code path.
pub fn analyze_capture(cap: &CallCapture, config: &StudyConfig) -> CallAnalysis {
    analyze_capture_staged(cap, config).0
}

/// [`analyze_capture`], also returning the per-stage counters/timings.
pub fn analyze_capture_staged(cap: &CallCapture, config: &StudyConfig) -> (CallAnalysis, pipeline::PipelineStats) {
    pipeline::run_session(pipeline::CallMeta::of(&cap.manifest), config, cap.trace.records.iter().cloned())
}

/// The artifacts of the paper's evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// Table 1 — traffic and filtering summary.
    Table1,
    /// Table 2 — message distribution.
    Table2,
    /// Table 3 — type-compliance ratios.
    Table3,
    /// Table 4 — STUN/TURN type inventory.
    Table4,
    /// Table 5 — RTP type inventory.
    Table5,
    /// Table 6 — RTCP type inventory.
    Table6,
    /// Figure 3 — datagram breakdown.
    Figure3,
    /// Figure 4 — volume-based compliance.
    Figure4,
    /// Figure 5 — type-based compliance.
    Figure5,
}

impl Artifact {
    /// Every artifact, in the paper's order.
    pub const ALL: [Artifact; 9] = [
        Artifact::Table1,
        Artifact::Table2,
        Artifact::Table3,
        Artifact::Table4,
        Artifact::Table5,
        Artifact::Table6,
        Artifact::Figure3,
        Artifact::Figure4,
        Artifact::Figure5,
    ];
}

/// One call whose analysis panicked. The study records it and continues;
/// a single poisoned capture no longer takes down the whole run.
#[derive(Debug, Clone)]
pub struct FailedCall {
    /// Index of the capture in the input slice.
    pub index: usize,
    /// Application name from the call manifest.
    pub app: String,
    /// Network label from the call manifest.
    pub network: String,
    /// The panic message.
    pub error: String,
}

/// The complete study output.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Aggregated per-call records.
    pub data: StudyData,
    /// Behavioral findings per application (§5.3), deduplicated by kind.
    pub findings: BTreeMap<String, Vec<Finding>>,
    /// Proprietary-header profile summaries per application (a few
    /// representative streams each).
    pub header_profiles: BTreeMap<String, Vec<String>>,
    /// Calls whose analysis panicked, in input order (empty on a clean run).
    pub failures: Vec<FailedCall>,
    /// Per-stage counters/timings summed over all calls, with the peak
    /// filter residency (max over calls).
    pub pipeline: pipeline::PipelineStats,
    /// Snapshot of the run's metrics registry ([`StudyConfig::obs`]) taken
    /// when the report was assembled: per-stage/per-matcher counters,
    /// latency and size histograms, span timings. Empty when the study ran
    /// with a disabled registry. Export with [`rtc_obs::Snapshot::to_prometheus`]
    /// or [`rtc_obs::Snapshot::to_json`].
    pub metrics: rtc_obs::Snapshot,
}

impl StudyReport {
    /// Render one artifact as an aligned text table.
    pub fn render_table(&self, artifact: Artifact) -> String {
        self.table(artifact).to_text()
    }

    /// Render one artifact as CSV.
    pub fn render_csv(&self, artifact: Artifact) -> String {
        self.table(artifact).to_csv()
    }

    /// The artifact's data table.
    pub fn table(&self, artifact: Artifact) -> rtc_report::render::TextTable {
        match artifact {
            Artifact::Table1 => rtc_report::tables::table1(&self.data),
            Artifact::Table2 => rtc_report::tables::table2(&self.data),
            Artifact::Table3 => rtc_report::tables::table3(&self.data),
            Artifact::Table4 => rtc_report::tables::table4(&self.data),
            Artifact::Table5 => rtc_report::tables::table5(&self.data),
            Artifact::Table6 => rtc_report::tables::table6(&self.data),
            Artifact::Figure3 => rtc_report::figures::figure3(&self.data),
            Artifact::Figure4 => rtc_report::figures::figure4(&self.data),
            Artifact::Figure5 => rtc_report::figures::figure5(&self.data),
        }
    }

    /// Render every table and figure plus the findings section.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        for a in Artifact::ALL {
            out.push_str(&self.render_table(a));
            out.push('\n');
        }
        out.push_str("== Application-specific findings (§5.3) ==\n");
        for (app, findings) in &self.findings {
            for f in findings {
                out.push_str(&format!("{app}: {}\n", f.detail));
            }
        }
        if !self.header_profiles.is_empty() {
            out.push_str("\n== Proprietary header profiles (automated §5.3 analysis) ==\n");
            for (app, profiles) in &self.header_profiles {
                for p in profiles {
                    out.push_str(&format!("{app}: {p}\n"));
                }
            }
        }
        let mut apps: Vec<&str> = self.data.calls.iter().map(|c| c.app.as_str()).collect();
        apps.sort_unstable();
        apps.dedup();
        let mut wrote_header = false;
        for app in apps {
            let taxonomy = self.data.app_rejection_taxonomy(app);
            if taxonomy.is_empty() {
                continue;
            }
            if !wrote_header {
                out.push_str("\n== Fully-proprietary datagram rejection taxonomy ==\n");
                wrote_header = true;
            }
            for (key, n) in &taxonomy {
                out.push_str(&format!("{app}: {key} ({n} datagrams)\n"));
            }
        }
        if !self.failures.is_empty() {
            out.push_str("\n== Analysis failures (calls excluded from the tables) ==\n");
            for f in &self.failures {
                out.push_str(&format!("call {} ({} / {}): {}\n", f.index, f.app, f.network, f.error));
            }
        }
        out
    }
}

/// The study driver.
pub struct Study;

impl Study {
    /// Run the configured experiment matrix end to end, parallelized
    /// across calls.
    pub fn run(config: &StudyConfig) -> StudyReport {
        let captures = rtc_capture::run_experiment(&config.experiment);
        Self::analyze(&captures, config)
    }

    /// Analyze existing captures (e.g. loaded from disk).
    pub fn analyze(captures: &[CallCapture], config: &StudyConfig) -> StudyReport {
        Self::analyze_with(captures, config, analyze_capture_staged)
    }

    /// The worker loop behind [`Study::analyze`], parameterized over the
    /// per-call analysis so tests can inject failures.
    fn analyze_with<F>(captures: &[CallCapture], config: &StudyConfig, analyze_one: F) -> StudyReport
    where
        F: Fn(&CallCapture, &StudyConfig) -> (CallAnalysis, pipeline::PipelineStats) + Sync,
    {
        let queue = crossbeam::queue::SegQueue::new();
        for (i, c) in captures.iter().enumerate() {
            queue.push((i, c));
        }
        // `hardware_threads` (not raw `available_parallelism`) so the
        // cgroup-quota misdetection fix and the `RTC_DPI_THREADS` override
        // govern the study's cross-call pool too.
        let cores = rtc_dpi::par::hardware_threads();
        let workers = cores.min(captures.len().max(1));
        // Cross-call and intra-call parallelism share the same cores: unless
        // the caller pinned a DPI thread count, give each call's candidate
        // extraction an equal share of the machine (at least one thread).
        let mut config = config.clone();
        if config.dpi.threads == 0 {
            config.dpi.threads = (cores / workers).max(1);
        }
        let config = &config;
        let mut analyses: Vec<Option<(CallAnalysis, pipeline::PipelineStats)>> =
            (0..captures.len()).map(|_| None).collect();
        let mut failures: Vec<FailedCall> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..workers {
                let queue = &queue;
                let analyze_one = &analyze_one;
                handles.push(s.spawn(move || {
                    // Each worker thread roots its own span hierarchy, so
                    // call spans nest as `study.call.…` on every thread.
                    let _study_span = config.obs.span("study");
                    let mut done = Vec::new();
                    let mut failed = Vec::new();
                    while let Some((i, cap)) = queue.pop() {
                        // A panicking call is recorded and skipped; the
                        // remaining calls still produce a report.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| analyze_one(cap, config))) {
                            Ok(a) => done.push((i, a)),
                            Err(e) => failed.push(FailedCall {
                                index: i,
                                app: cap.manifest.application().name().to_string(),
                                network: cap.manifest.network.clone(),
                                error: panic_message(e.as_ref()),
                            }),
                        }
                    }
                    (done, failed)
                }));
            }
            for h in handles {
                // Per-call panics are caught above, so a worker join can
                // only fail on a bug in the loop itself.
                let (done, failed) = h.join().expect("study worker loop panicked");
                for (i, a) in done {
                    analyses[i] = Some(a);
                }
                failures.extend(failed);
            }
        });
        failures.sort_by_key(|f| f.index);

        // Fold completed calls through the incremental aggregator — the
        // exact state machine the streaming driver uses, so batch and
        // streaming reports are identical by construction.
        let _study_span = config.obs.span("study");
        let mut aggregate = rtc_report::Aggregator::new();
        let mut stats = pipeline::PipelineStats::default();
        let mut analyzed = 0u64;
        for (analysis, call_stats) in analyses.into_iter().flatten() {
            analyzed += 1;
            stats.absorb(&call_stats);
            absorb_analysis(&mut aggregate, &mut stats, analysis, &config.obs);
        }
        record_study_totals(&config.obs, analyzed, failures.len() as u64);
        let rtc_report::AggregateReport { data, findings, header_profiles } = aggregate.finish();
        drop(_study_span);
        StudyReport { data, findings, header_profiles, failures, pipeline: stats, metrics: config.obs.snapshot() }
    }
}

/// Record the run-level call counters.
fn record_study_totals(obs: &rtc_obs::MetricsRegistry, analyzed: u64, failed: u64) {
    if !obs.is_enabled() {
        return;
    }
    obs.counter("rtc_study_calls_total", &[], "Calls analyzed to completion.").add(analyzed);
    obs.counter("rtc_study_call_failures_total", &[], "Calls whose analysis failed and was excluded.").add(failed);
}

/// Fold one call's analysis into the aggregator (the pipeline's fifth
/// stage), timing it under [`pipeline::StageKind::Aggregate`]. Only the
/// compact by-products survive: the record, findings, header-profile
/// summaries, and SSRC inventory — the dissection is dropped here.
/// Fold one completed call into an aggregator (and the aggregate-stage
/// counters): header-profile summaries, SSRC inventory, findings, record.
/// The batch driver, the streaming driver, and the live service all absorb
/// through this one path, which is what makes their reports comparable
/// byte for byte.
pub fn absorb_analysis(
    aggregate: &mut rtc_report::Aggregator,
    stats: &mut pipeline::PipelineStats,
    analysis: CallAnalysis,
    obs: &rtc_obs::MetricsRegistry,
) {
    let _span = obs.span("aggregate");
    let t = std::time::Instant::now();
    let summaries: Vec<String> = analysis.header_profiles.iter().map(|p| p.summary()).collect();
    let ssrcs = rtc_compliance::findings::ssrc_set(&analysis.dissection);
    aggregate.absorb_call(analysis.record, &analysis.findings, &summaries, ssrcs);
    let elapsed = t.elapsed();
    let m = stats.stage_mut(pipeline::StageKind::Aggregate);
    m.items_in += 1;
    m.items_out += 1;
    m.busy += elapsed;
    pipeline::record_stage_metrics(obs, pipeline::StageKind::Aggregate, 1, 1, elapsed);
}

/// The streaming study driver: analyzes a saved experiment directory
/// (see [`rtc_capture::save_experiment`]) call by call through the staged
/// engine, reading each capture in bounded chunks — peak memory is
/// O(chunk + live streams + one call's RTC traffic), independent of trace
/// or campaign size.
pub struct StreamingStudy;

/// Options for [`StreamingStudy::analyze_dir_with`].
#[derive(Default)]
pub struct StreamingOptions<'a> {
    /// How many pcap records are resident per read (0 = reader default).
    pub chunk_records: usize,
    /// Per-call progress lines are written here when set.
    pub progress: Option<&'a mut dyn std::io::Write>,
    /// Every N completed calls, write a compact metrics summary line to the
    /// progress writer (0 = never). Needs `progress` and an enabled
    /// [`StudyConfig::obs`] registry to have any effect.
    pub metrics_every: usize,
}

impl StreamingStudy {
    /// Analyze every saved call under `dir`. `chunk_records` bounds how
    /// many pcap records are resident per read (0 = default). When
    /// `progress` is given, one line per call reports the per-stage
    /// counters and timings.
    pub fn analyze_dir(
        dir: impl AsRef<std::path::Path>,
        config: &StudyConfig,
        chunk_records: usize,
        progress: Option<&mut dyn std::io::Write>,
    ) -> std::io::Result<StudyReport> {
        Self::analyze_dir_with(dir, config, StreamingOptions { chunk_records, progress, metrics_every: 0 })
    }

    /// [`StreamingStudy::analyze_dir`] with the full option set.
    pub fn analyze_dir_with(
        dir: impl AsRef<std::path::Path>,
        config: &StudyConfig,
        options: StreamingOptions<'_>,
    ) -> std::io::Result<StudyReport> {
        let StreamingOptions { chunk_records, mut progress, metrics_every } = options;
        let manifests = rtc_capture::scan_experiment(dir)?;

        let total = manifests.len();
        let _study_span = config.obs.span("study");
        let mut aggregate = rtc_report::Aggregator::new();
        let mut stats = pipeline::PipelineStats::default();
        let mut failures: Vec<FailedCall> = Vec::new();
        let mut analyzed = 0u64;
        for (index, (pcap_path, manifest)) in manifests.into_iter().enumerate() {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pipeline::analyze_saved_call(&pcap_path, &manifest, config, chunk_records)
            }));
            // A broken or poisoned capture is recorded and skipped; the
            // remaining calls still produce a report.
            let error = match outcome {
                Ok(Ok((analysis, call_stats))) => {
                    analyzed += 1;
                    stats.absorb(&call_stats);
                    absorb_analysis(&mut aggregate, &mut stats, analysis, &config.obs);
                    if let Some(w) = progress.as_deref_mut() {
                        writeln!(
                            w,
                            "[{}/{}] {} / {} #{}: {}",
                            index + 1,
                            total,
                            manifest.application().name(),
                            manifest.network,
                            manifest.repeat,
                            call_stats.summary_line()
                        )?;
                        if metrics_every > 0 && analyzed.is_multiple_of(metrics_every as u64) {
                            writeln!(w, "{}", metrics_progress_line(&config.obs.snapshot()))?;
                        }
                    }
                    continue;
                }
                Ok(Err(io_err)) => io_err.to_string(),
                Err(panic) => panic_message(panic.as_ref()),
            };
            if let Some(w) = progress.as_deref_mut() {
                writeln!(
                    w,
                    "[{}/{}] {} / {} #{}: FAILED: {error}",
                    index + 1,
                    total,
                    manifest.app,
                    manifest.network,
                    manifest.repeat
                )?;
            }
            failures.push(FailedCall {
                index,
                app: manifest.application().name().to_string(),
                network: manifest.network.clone(),
                error,
            });
        }
        record_study_totals(&config.obs, analyzed, failures.len() as u64);
        let rtc_report::AggregateReport { data, findings, header_profiles } = aggregate.finish();
        drop(_study_span);
        Ok(StudyReport { data, findings, header_profiles, failures, pipeline: stats, metrics: config.obs.snapshot() })
    }
}

/// One compact line summarizing the registry's headline counters, for the
/// `--progress-metrics` streaming output.
fn metrics_progress_line(snap: &rtc_obs::Snapshot) -> String {
    let peak = match snap.get("rtc_filter_peak_retained_bytes", &[]) {
        Some(rtc_obs::MetricValue::Gauge(v)) => *v,
        _ => 0,
    };
    format!(
        "    metrics: messages={} compliant={} candidates={} rejected_datagrams={} peak_retained={}B",
        snap.counter_family_total("rtc_compliance_messages_total"),
        snap.counter_family_total("rtc_compliance_compliant_total"),
        snap.counter_family_total("rtc_dpi_candidates_total"),
        snap.counter_family_total("rtc_dpi_rejected_datagrams_total"),
        peak,
    )
}

/// Best-effort text of a caught panic payload.
pub fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_call_pipeline() {
        let config = StudyConfig::smoke(3);
        let cap = rtc_capture::run_call(
            &config.experiment,
            rtc_apps::Application::WhatsApp,
            rtc_netemu::NetworkConfig::WifiP2p,
            0,
        );
        let analysis = analyze_capture(&cap, &config);
        assert_eq!(analysis.record.app, "WhatsApp");
        assert!(analysis.record.rtc.udp_datagrams > 100);
        assert!(!analysis.record.checked.messages.is_empty());
        assert!(analysis.record.checked.volume_compliance() > 0.9);
    }

    #[test]
    fn analysis_panics_are_contained() {
        let mut config = StudyConfig::smoke(7);
        config.experiment.apps = vec!["zoom".into(), "discord".into()];
        config.experiment.networks = vec!["wifi-relay".into()];
        let captures = rtc_capture::run_experiment(&config.experiment);
        assert_eq!(captures.len(), 2);
        let report = Study::analyze_with(&captures, &config, |cap, config| {
            if cap.manifest.application().name() == "Discord" {
                panic!("injected failure");
            }
            analyze_capture_staged(cap, config)
        });
        // The healthy call is fully analyzed, the poisoned one recorded.
        assert_eq!(report.data.calls.len(), 1);
        assert_eq!(report.data.calls[0].app, "Zoom");
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].app, "Discord");
        assert!(report.failures[0].error.contains("injected failure"));
        let all = report.render_all();
        assert!(all.contains("Analysis failures"));
        assert!(all.contains("injected failure"));
    }

    #[test]
    fn smoke_study_renders_everything() {
        let mut config = StudyConfig::smoke(5);
        config.experiment.apps = vec!["zoom".into(), "discord".into()];
        config.experiment.networks = vec!["wifi-relay".into()];
        let report = Study::run(&config);
        assert_eq!(report.data.calls.len(), 2);
        let all = report.render_all();
        for needle in ["Table 1", "Table 3", "Figure 4", "Zoom", "Discord"] {
            assert!(all.contains(needle), "missing {needle}");
        }
        // Discord's type compliance is zero (paper: 0/9).
        let (ok, total) = report.data.app_type_ratio_all("Discord");
        assert_eq!(ok, 0, "discord compliant types: {ok}/{total}");
        assert!(total >= 5);
    }
}
