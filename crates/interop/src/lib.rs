//! # rtc-interop
//!
//! The paper's §6 argues that the EU Digital Markets Act's interoperability
//! mandate collides with today's protocol non-compliance: "each application
//! would need to implement bespoke parsers to handle the protocol quirks of
//! every other application". This crate makes that engineering question
//! quantitative by implementing the bespoke layer once — a *normalizer*
//! that mechanically rewrites a datagram into specification-compliant form
//! where a mechanical rewrite exists:
//!
//! * proprietary prefixes are stripped (the embedded standard messages are
//!   re-emitted at offset zero),
//! * undefined STUN/TURN attributes are removed and lengths recomputed
//!   (FINGERPRINT, if present, is recalculated),
//! * undefined RTP extension profiles are dropped and reserved-ID-0
//!   one-byte elements are removed,
//! * undefined RTCP trailers (Discord's direction byte) are stripped,
//! * ChannelData length shortfalls are corrected.
//!
//! What *cannot* be fixed mechanically is the interesting residue:
//! undefined message types (no semantics to translate), missing SRTCP
//! authentication tags (the key material does not exist on the wire) and
//! fully proprietary datagrams. [`normalize_call`] reports both halves, and
//! the round-trip property — *normalized traffic re-judged by the same
//! checker is compliant* — is asserted in this crate's tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rtc_dpi::{CandidateKind, DatagramClass, DatagramDissection, DpiMessage};
use rtc_wire::rtp;
use rtc_wire::stun::{self, Message, MessageBuilder};

/// Why a datagram (or message) could not be normalized.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Unfixable {
    /// The message type itself is undefined; there are no semantics to
    /// translate into.
    UndefinedMessageType(String),
    /// The datagram carries no recognizable standard message at all.
    FullyProprietary,
    /// SRTCP authentication material is absent and cannot be invented.
    MissingAuthTag,
    /// A structural repair failed (malformed beyond mechanical rewriting).
    RepairFailed(&'static str),
}

/// The outcome for one datagram.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Already fully compliant; forward as-is.
    AlreadyCompliant,
    /// Rewritten into the returned compliant payload(s) — one per
    /// top-level message (a gateway would forward each separately).
    Normalized(Vec<Vec<u8>>),
    /// Not mechanically translatable.
    Dropped(Unfixable),
}

/// Aggregate statistics for a normalized call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NormalizationReport {
    /// Datagrams forwarded unchanged.
    pub passed: usize,
    /// Datagrams rewritten into compliant form.
    pub normalized: usize,
    /// Datagrams a gateway would have to drop (or handle with
    /// app-specific logic), by reason.
    pub dropped: std::collections::BTreeMap<String, usize>,
}

impl NormalizationReport {
    /// Fraction of datagrams a mechanical gateway can forward.
    pub fn translatable_ratio(&self) -> f64 {
        let dropped: usize = self.dropped.values().sum();
        let total = self.passed + self.normalized + dropped;
        if total == 0 {
            1.0
        } else {
            (self.passed + self.normalized) as f64 / total as f64
        }
    }
}

/// Normalize one dissected datagram.
pub fn normalize_datagram(dgram: &DatagramDissection) -> Outcome {
    if dgram.class == DatagramClass::FullyProprietary {
        return Outcome::Dropped(Unfixable::FullyProprietary);
    }

    let mut rewritten = Vec::new();
    let mut changed = dgram.class == DatagramClass::ProprietaryHeader;
    for msg in &dgram.messages {
        // Nested messages ride inside their (rewritten) container except
        // when the container itself was proprietary framing; the simple
        // gateway policy here forwards each top-level unit. Nested RTP
        // inside compliant ChannelData stays inside it.
        if msg.nested {
            continue;
        }
        match normalize_message(dgram, msg) {
            Ok(Some(bytes)) => {
                changed = true;
                rewritten.push(bytes);
            }
            Ok(None) => rewritten.push(msg.data.to_vec()),
            Err(u) => return Outcome::Dropped(u),
        }
    }
    if rewritten.is_empty() {
        return Outcome::Dropped(Unfixable::RepairFailed("no top-level messages"));
    }
    // Discord's trailer (or any unexplained trailing bytes) is stripped by
    // construction: only message bytes are re-emitted. SRTCP trailers are
    // the exception — they must be preserved, and a missing tag is fatal.
    if !dgram.trailing.is_empty() {
        match rtc_compliance::rtcp::classify_trailer(&dgram.trailing) {
            rtc_compliance::rtcp::TrailerKind::Srtcp { auth_tag_len: 0 } => {
                return Outcome::Dropped(Unfixable::MissingAuthTag)
            }
            rtc_compliance::rtcp::TrailerKind::Srtcp { .. } => {
                // Keep the valid trailer attached to the last message.
                if let Some(last) = rewritten.last_mut() {
                    last.extend_from_slice(&dgram.trailing);
                }
            }
            rtc_compliance::rtcp::TrailerKind::Undefined { .. } => changed = true, // stripped
            rtc_compliance::rtcp::TrailerKind::None => {}
        }
    }

    if changed {
        Outcome::Normalized(rewritten)
    } else {
        Outcome::AlreadyCompliant
    }
}

/// Normalize one message: `Ok(None)` = already compliant as-is,
/// `Ok(Some(bytes))` = rewritten, `Err` = untranslatable.
fn normalize_message(dgram: &DatagramDissection, msg: &DpiMessage) -> Result<Option<Vec<u8>>, Unfixable> {
    match &msg.kind {
        CandidateKind::Stun { message_type, modern } => {
            if !rtc_compliance::registry::stun_type_defined(*message_type) {
                return Err(Unfixable::UndefinedMessageType(format!("{message_type:#06x}")));
            }
            let parsed = Message::new_checked(&msg.data).map_err(|_| Unfixable::RepairFailed("stun reparse"))?;
            // Drop undefined attributes; keep defined ones in order.
            let mut kept: Vec<(u16, Vec<u8>)> = Vec::new();
            let mut dropped_any = false;
            let mut had_fingerprint = false;
            for a in parsed.attributes().flatten() {
                if a.typ == stun::attr::FINGERPRINT {
                    had_fingerprint = true;
                    continue; // recomputed below when needed
                }
                if rtc_compliance::registry::stun_attr_defined(a.typ) {
                    kept.push((a.typ, a.value.to_vec()));
                } else {
                    dropped_any = true;
                }
            }
            if !dropped_any {
                return Ok(None);
            }
            let mut txid = [0u8; 12];
            txid.copy_from_slice(parsed.transaction_id());
            let mut b = if *modern {
                MessageBuilder::new(*message_type, txid)
            } else {
                let mut prefix = [0u8; 4];
                prefix.copy_from_slice(&parsed.legacy_transaction_id()[..4]);
                MessageBuilder::new_legacy(*message_type, prefix, txid)
            };
            for (t, v) in kept {
                b = b.attribute(t, v);
            }
            Ok(Some(if had_fingerprint { b.build_with_fingerprint() } else { b.build() }))
        }
        CandidateKind::ChannelData { channel } => {
            if !stun::ChannelData::CHANNEL_RANGE.contains(channel) {
                // Out-of-range channels do not reach the DPI as ChannelData
                // anymore, but keep the gateway defensive.
                return Err(Unfixable::RepairFailed("channel out of range"));
            }
            if dgram.trailing.is_empty() {
                Ok(None)
            } else {
                // Length shortfall: rebuild the frame over its actual data.
                let cd = stun::ChannelData::new_checked(&msg.data)
                    .map_err(|_| Unfixable::RepairFailed("channeldata reparse"))?;
                Ok(Some(stun::ChannelData::build(cd.channel_number(), cd.data())))
            }
        }
        CandidateKind::Rtp { .. } => {
            let parsed = rtp::Packet::new_checked(&msg.data).map_err(|_| Unfixable::RepairFailed("rtp reparse"))?;
            let Some(ext) = parsed.extension() else {
                return Ok(None);
            };
            let defined_profile = rtc_compliance::registry::rtp_ext_profile_defined(ext.profile);
            let bad_elements = defined_profile
                && ext.is_one_byte_form()
                && ext.one_byte_elements().iter().any(|e| e.id == 0 && (e.wire_len > 0 || !e.data.is_empty()));
            if defined_profile && !bad_elements {
                return Ok(None);
            }
            // Rebuild: drop an undefined-profile extension entirely; keep a
            // defined one minus its reserved-ID elements.
            let mut b = rtp::PacketBuilder::new(
                parsed.payload_type(),
                parsed.sequence_number(),
                parsed.timestamp(),
                parsed.ssrc(),
            )
            .marker(parsed.marker())
            .payload(parsed.payload().to_vec());
            for csrc in parsed.csrcs() {
                b = b.csrc(csrc);
            }
            if defined_profile {
                let elements: Vec<(u8, Vec<u8>)> = ext
                    .one_byte_elements()
                    .into_iter()
                    .filter(|e| (1..=14).contains(&e.id) && !e.data.is_empty() && e.data.len() <= 16)
                    .map(|e| (e.id, e.data.to_vec()))
                    .collect();
                if !elements.is_empty() {
                    let refs: Vec<(u8, &[u8])> = elements.iter().map(|(id, d)| (*id, d.as_slice())).collect();
                    b = b.one_byte_extension(&refs);
                }
            }
            Ok(Some(b.build()))
        }
        CandidateKind::Rtcp { .. } => Ok(None), // header-level issues are in the trailer, handled above
        CandidateKind::QuicLong { .. } | CandidateKind::QuicShortProbe => Ok(None),
    }
}

/// Normalize every datagram of a dissected call.
pub fn normalize_call(dissection: &rtc_dpi::CallDissection) -> (NormalizationReport, Vec<Outcome>) {
    let mut report = NormalizationReport::default();
    let mut outcomes = Vec::with_capacity(dissection.datagrams.len());
    for d in &dissection.datagrams {
        let o = normalize_datagram(d);
        match &o {
            Outcome::AlreadyCompliant => report.passed += 1,
            Outcome::Normalized(_) => report.normalized += 1,
            Outcome::Dropped(u) => {
                let key = match u {
                    Unfixable::UndefinedMessageType(_) => "undefined message type".to_string(),
                    Unfixable::FullyProprietary => "fully proprietary".to_string(),
                    Unfixable::MissingAuthTag => "missing SRTCP auth tag".to_string(),
                    Unfixable::RepairFailed(w) => format!("repair failed: {w}"),
                };
                *report.dropped.entry(key).or_default() += 1;
            }
        }
        outcomes.push(o);
    }
    (report, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rtc_dpi::{dissect_call, DpiConfig};
    use rtc_pcap::trace::Datagram;
    use rtc_pcap::Timestamp;
    use rtc_wire::ip::FiveTuple;
    use rtc_wire::rtp::PacketBuilder;

    fn dgram(ts_ms: u64, payload: Vec<u8>) -> Datagram {
        Datagram {
            ts: Timestamp::from_millis(ts_ms),
            five_tuple: FiveTuple::udp("10.0.0.1:1000".parse().unwrap(), "1.2.3.4:2000".parse().unwrap()),
            payload: Bytes::from(payload),
        }
    }

    /// Run DPI + normalize, then DPI + compliance over the rewritten bytes,
    /// returning the re-judged volume compliance.
    fn roundtrip_compliance(datagrams: Vec<Datagram>) -> f64 {
        let dis = dissect_call(&datagrams, &DpiConfig::default());
        let (_, outcomes) = normalize_call(&dis);
        let mut rewritten = Vec::new();
        for (orig, o) in datagrams.iter().zip(outcomes) {
            match o {
                Outcome::AlreadyCompliant => rewritten.push(orig.clone()),
                Outcome::Normalized(payloads) => {
                    for p in payloads {
                        rewritten.push(Datagram { payload: Bytes::from(p), ..orig.clone() });
                    }
                }
                Outcome::Dropped(_) => {}
            }
        }
        let dis2 = dissect_call(&rewritten, &DpiConfig::default());
        rtc_compliance::check_call(&dis2).volume_compliance()
    }

    #[test]
    fn proprietary_prefix_is_stripped() {
        let mut d = Vec::new();
        for i in 0..8u16 {
            let mut p = vec![0x0B; 12]; // proprietary prefix
            p.extend(PacketBuilder::new(96, 100 + i, 0, 0x55).payload(vec![1; 40]).build());
            d.push(dgram(i as u64 * 20, p));
        }
        let dis = dissect_call(&d, &DpiConfig::default());
        let (report, outcomes) = normalize_call(&dis);
        assert_eq!(report.normalized, 8);
        for o in outcomes {
            match o {
                Outcome::Normalized(payloads) => {
                    assert_eq!(payloads.len(), 1);
                    let p = rtp::Packet::new_checked(&payloads[0]).unwrap();
                    assert_eq!(p.ssrc(), 0x55);
                }
                other => panic!("{other:?}"),
            }
        }
        assert!((roundtrip_compliance(d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn undefined_stun_attributes_are_removed_and_fingerprint_recomputed() {
        let bytes = rtc_wire::stun::MessageBuilder::new(0x0001, [7; 12])
            .attribute(rtc_wire::stun::attr::PRIORITY, vec![0, 0, 1, 0])
            .attribute(0x8007, vec![0, 0, 0, 9]) // FaceTime's undefined attr
            .build_with_fingerprint();
        let d = vec![dgram(0, bytes)];
        let dis = dissect_call(&d, &DpiConfig::default());
        let (report, outcomes) = normalize_call(&dis);
        assert_eq!(report.normalized, 1);
        let Outcome::Normalized(payloads) = &outcomes[0] else { panic!() };
        let m = Message::new_checked(&payloads[0]).unwrap();
        assert!(m.attribute(0x8007).is_none());
        assert!(m.attribute(rtc_wire::stun::attr::PRIORITY).is_some());
        assert_eq!(m.verify_fingerprint(), Some(true), "fingerprint recomputed");
        assert!((roundtrip_compliance(d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn undefined_message_types_are_dropped() {
        let bytes = rtc_wire::stun::MessageBuilder::new(0x0801, [7; 12]).attribute(0x4003, vec![0xFF]).build();
        let d = vec![dgram(0, bytes)];
        let dis = dissect_call(&d, &DpiConfig::default());
        let (report, _) = normalize_call(&dis);
        assert_eq!(report.dropped.get("undefined message type"), Some(&1));
        assert!(report.translatable_ratio() < 1.0);
    }

    #[test]
    fn undefined_rtp_extension_profile_is_stripped() {
        let d: Vec<Datagram> = (0..8)
            .map(|i| {
                dgram(
                    i * 20,
                    PacketBuilder::new(100, 100 + i as u16, 9, 0x66)
                        .extension(0x8500, vec![1, 2, 3, 4])
                        .payload(vec![2; 30])
                        .build(),
                )
            })
            .collect();
        assert!((roundtrip_compliance(d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reserved_id_zero_elements_are_removed_but_good_ones_kept() {
        let d: Vec<Datagram> = (0..8)
            .map(|i| {
                let mut ext = vec![0x02u8, 9, 9, 9]; // id 0, len 2 (+3 data)
                ext.push(0x10); // id 1 in the high nibble, len field 0 → 1 byte
                ext.push(0x42);
                dgram(
                    i * 20,
                    PacketBuilder::new(120, 100 + i as u16, 9, 0x67)
                        .extension(rtp::ONE_BYTE_PROFILE, ext)
                        .payload(vec![2; 30])
                        .build(),
                )
            })
            .collect();
        let dis = dissect_call(&d, &DpiConfig::default());
        let (_, outcomes) = normalize_call(&dis);
        let Outcome::Normalized(payloads) = &outcomes[0] else { panic!("{:?}", outcomes[0]) };
        let p = rtp::Packet::new_checked(&payloads[0]).unwrap();
        let els = p.extension().unwrap().one_byte_elements();
        assert_eq!(els.len(), 1);
        assert_eq!(els[0].id, 1);
        assert_eq!(els[0].data, &[0x42]);
        assert!((roundtrip_compliance(d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn discord_trailer_is_stripped() {
        // Establish the stream's RTP SSRC so the RTCP validates, then a
        // trailered RTCP message.
        let mut d: Vec<Datagram> = (0..6)
            .map(|i| dgram(i * 20, PacketBuilder::new(96, 100 + i as u16, 0, 0x99).payload(vec![0; 30]).build()))
            .collect();
        let mut rtcp_bytes = rtc_wire::rtcp::Feedback {
            packet_type: rtc_wire::rtcp::packet_type::RTPFB,
            fmt: 15,
            sender_ssrc: 0x99,
            media_ssrc: 0x99,
            fci: vec![0; 8],
        }
        .build();
        rtcp_bytes.extend_from_slice(&[0x00, 0x2A, 0x80]);
        d.push(dgram(200, rtcp_bytes));
        assert!((roundtrip_compliance(d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_srtcp_tag_is_unfixable() {
        let mut d: Vec<Datagram> = (0..6)
            .map(|i| dgram(i * 20, PacketBuilder::new(96, 100 + i as u16, 0, 0x9A).payload(vec![0; 30]).build()))
            .collect();
        let mut body = 0x9Au32.to_be_bytes().to_vec();
        body.extend_from_slice(&[0xEE; 20]);
        let mut pkt = rtc_wire::rtcp::build_raw(1, 200, &body);
        pkt.extend_from_slice(&rtc_wire::rtcp::SrtcpTrailer { encrypted: true, index: 5, auth_tag_len: 0 }.build(1));
        d.push(dgram(200, pkt));
        let dis = dissect_call(&d, &DpiConfig::default());
        let (report, _) = normalize_call(&dis);
        assert_eq!(report.dropped.get("missing SRTCP auth tag"), Some(&1));
    }

    #[test]
    fn compliant_traffic_passes_untouched() {
        let d: Vec<Datagram> = (0..10)
            .map(|i| dgram(i * 20, PacketBuilder::new(111, 100 + i as u16, 0, 0x11).payload(vec![0; 60]).build()))
            .collect();
        let dis = dissect_call(&d, &DpiConfig::default());
        let (report, _) = normalize_call(&dis);
        assert_eq!(report.passed, 10);
        assert_eq!(report.normalized, 0);
        assert!((report.translatable_ratio() - 1.0).abs() < 1e-9);
    }
}
