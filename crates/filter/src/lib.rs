//! # rtc-filter
//!
//! The paper's two-stage filtering pipeline (§3.2), which isolates RTC media
//! traffic from everything else a phone emits during a capture.
//!
//! 1. **Stream grouping** — packets are grouped into transport streams by
//!    their 5-tuple (source IP/port, destination IP/port, protocol).
//! 2. **Stage 1, timespan filtering** — any stream whose active span is not
//!    fully enclosed in the call window (expanded by a ±2 s slack) is
//!    removed: streams that start before the call, end after it, or span it
//!    are background activity (§3.2.1).
//! 3. **Stage 2, intra-call heuristics** (§3.2.2):
//!    * *3-tuple timing*: if a destination-side (IP, port, protocol) tuple
//!      is also seen outside the call window, every in-window stream to it
//!      is removed (catches persistent push services that rebind source
//!      ports),
//!    * *TLS SNI*: TCP streams whose ClientHello SNI matches a blocklist of
//!      known non-RTC domains are removed,
//!    * *local IP*: streams touching private/link-local ranges whose IP
//!      pair was already seen in the pre-call phase are removed (LAN
//!      management chatter) — P2P media between the two handsets survives
//!      because its IP pair first appears mid-call,
//!    * *port exclusion*: streams on well-known non-RTC service ports
//!      (DNS, DHCP, NTP, SSDP, mDNS, …) are removed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rtc_pcap::trace::Datagram;
use rtc_pcap::Timestamp;
use rtc_wire::ip::{FiveTuple, ThreeTuple, Transport};
use std::collections::{BTreeMap, HashSet};
use std::net::IpAddr;

/// A transport stream: one 5-tuple and its datagrams in time order.
#[derive(Debug, Clone)]
pub struct Stream {
    /// The 5-tuple key.
    pub tuple: FiveTuple,
    /// Datagrams of the stream, in capture order.
    pub datagrams: Vec<Datagram>,
}

impl Stream {
    /// First capture time, `None` for an empty stream. (An empty stream
    /// must not read as "active at time zero" — that would classify it as
    /// starting before any call window.)
    pub fn first_ts(&self) -> Option<Timestamp> {
        self.datagrams.first().map(|d| d.ts)
    }

    /// Last capture time, `None` for an empty stream.
    pub fn last_ts(&self) -> Option<Timestamp> {
        self.datagrams.last().map(|d| d.ts)
    }

    /// Number of datagrams/segments.
    pub fn len(&self) -> usize {
        self.datagrams.len()
    }

    /// Whether the stream holds no datagrams.
    pub fn is_empty(&self) -> bool {
        self.datagrams.is_empty()
    }

    /// Total payload bytes.
    pub fn payload_bytes(&self) -> usize {
        self.datagrams.iter().map(|d| d.payload.len()).sum()
    }
}

/// The expanded call window of stage 1: a **closed** interval
/// `[lo, hi]`. Both stage 1 and the stage-2 out-of-window observations
/// share this one predicate, so a datagram stamped exactly at a boundary
/// is "inside" for both — the two stages can never disagree about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Earliest in-window time (inclusive).
    pub lo: Timestamp,
    /// Latest in-window time (inclusive).
    pub hi: Timestamp,
}

impl Window {
    /// Expand a `(start, end)` call window by `slack_us` on each side
    /// (saturating at time zero).
    pub fn around(call_window: (Timestamp, Timestamp), slack_us: u64) -> Window {
        let (start, end) = call_window;
        Window {
            lo: Timestamp::from_micros(start.as_micros().saturating_sub(slack_us)),
            hi: end.plus_micros(slack_us),
        }
    }

    /// Whether `ts` lies inside the closed interval.
    pub fn contains(self, ts: Timestamp) -> bool {
        self.lo <= ts && ts <= self.hi
    }

    /// Whether a stream spanning `[first, last]` lies entirely inside the
    /// window.
    pub fn encloses(self, first: Timestamp, last: Timestamp) -> bool {
        self.contains(first) && self.contains(last)
    }
}

/// Group decoded datagrams into per-5-tuple streams.
pub fn group_streams(datagrams: &[Datagram]) -> Vec<Stream> {
    let mut map: BTreeMap<FiveTuple, Vec<Datagram>> = BTreeMap::new();
    for d in datagrams {
        map.entry(d.five_tuple).or_default().push(d.clone());
    }
    map.into_iter().map(|(tuple, datagrams)| Stream { tuple, datagrams }).collect()
}

/// Which heuristic removed a stream in stage 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Heuristic {
    /// Destination 3-tuple also active outside the call window.
    ThreeTupleTiming,
    /// TLS SNI matched the non-RTC domain blocklist.
    TlsSni,
    /// Local-scope endpoints whose IP pair was seen pre-call.
    LocalIp,
    /// Transport port reserved for a non-RTC service.
    PortExclusion,
}

impl Heuristic {
    /// All heuristics, in the paper's application order.
    pub const ALL: [Heuristic; 4] =
        [Heuristic::ThreeTupleTiming, Heuristic::TlsSni, Heuristic::LocalIp, Heuristic::PortExclusion];

    /// Stable kebab-case label (used as a metrics label value).
    pub fn label(self) -> &'static str {
        match self {
            Heuristic::ThreeTupleTiming => "3tuple-timing",
            Heuristic::TlsSni => "tls-sni",
            Heuristic::LocalIp => "local-ip",
            Heuristic::PortExclusion => "port-exclusion",
        }
    }
}

/// Configuration of the pipeline.
#[derive(Debug, Clone)]
pub struct FilterConfig {
    /// Call-window slack on each side, microseconds (paper: 2 s).
    pub slack_us: u64,
    /// Blocklisted SNI domains (paper: derived from 7.5 h of idle traffic).
    pub sni_blocklist: HashSet<String>,
    /// Excluded well-known ports (paper: IANA registry).
    pub excluded_ports: HashSet<u16>,
}

/// The default SNI blocklist, standing in for the paper's idle-traffic
/// derivation.
pub const DEFAULT_SNI_BLOCKLIST: [&str; 8] = [
    "oauth2.googleapis.com",
    "web.facebook.com",
    "itunes.apple.com",
    "app-measurement.com",
    "graph.instagram.com",
    "ads.doubleclick.net",
    "mesu.apple.com",
    "gsp-ssl.ls.apple.com",
];

/// Well-known non-RTC service ports excluded by default (paper: IANA
/// Service Name and Port Number Registry).
pub const DEFAULT_EXCLUDED_PORTS: [u16; 12] = [53, 67, 68, 123, 137, 138, 139, 546, 547, 1900, 5353, 5355];

/// Derive an SNI blocklist from idle-phone captures (paper §3.2.2): every
/// hostname observed in a TLS ClientHello during idle recording is, by
/// construction, not RTC traffic.
pub fn derive_sni_blocklist(idle_datagrams: &[Datagram]) -> HashSet<String> {
    // Grouped into streams first, so a ClientHello split across TCP
    // segments is reassembled exactly like in the stage-2 SNI filter.
    group_streams(idle_datagrams)
        .iter()
        .filter(|s| s.tuple.transport == Transport::Tcp)
        .filter_map(stream_sni)
        .collect()
}

impl FilterConfig {
    /// A configuration whose SNI blocklist comes from idle captures instead
    /// of the built-in inventory.
    pub fn with_derived_blocklist(idle_datagrams: &[Datagram]) -> FilterConfig {
        FilterConfig { sni_blocklist: derive_sni_blocklist(idle_datagrams), ..Default::default() }
    }
}

impl Default for FilterConfig {
    fn default() -> FilterConfig {
        FilterConfig {
            slack_us: 2_000_000,
            sni_blocklist: DEFAULT_SNI_BLOCKLIST.iter().map(|s| s.to_string()).collect(),
            excluded_ports: DEFAULT_EXCLUDED_PORTS.into_iter().collect(),
        }
    }
}

/// Per-stage removal statistics, split by transport (the columns of the
/// paper's Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// UDP streams removed.
    pub udp_streams: usize,
    /// UDP datagrams removed.
    pub udp_datagrams: usize,
    /// TCP streams removed.
    pub tcp_streams: usize,
    /// TCP segments removed.
    pub tcp_segments: usize,
}

impl StageStats {
    fn absorb(&mut self, s: &Stream) {
        match s.tuple.transport {
            Transport::Udp => {
                self.udp_streams += 1;
                self.udp_datagrams += s.len();
            }
            Transport::Tcp => {
                self.tcp_streams += 1;
                self.tcp_segments += s.len();
            }
        }
    }
}

/// The full outcome of the pipeline for one call.
#[derive(Debug, Clone)]
pub struct FilterResult {
    /// Streams classified as RTC traffic.
    pub rtc_streams: Vec<Stream>,
    /// Streams removed by stage 1 (timespan).
    pub stage1_removed: Vec<Stream>,
    /// Streams removed by stage 2, with the triggering heuristic.
    pub stage2_removed: Vec<(Stream, Heuristic)>,
    /// Raw traffic statistics before filtering.
    pub raw: StageStats,
    /// Stage-1 removal statistics.
    pub stage1: StageStats,
    /// Stage-2 removal statistics.
    pub stage2: StageStats,
    /// RTC (kept) statistics.
    pub rtc: StageStats,
}

impl FilterResult {
    /// The kept RTC UDP datagrams in global capture-time order (the input
    /// to the DPI stage — the paper analyzes UDP only, §3.3). Streams are
    /// merged by timestamp: the grouping into per-tuple streams must not
    /// leak into the order downstream timing analyses see.
    ///
    /// Returns a borrowed view over the retained streams — callers that
    /// need ownership clone individual datagrams (cheap: `Bytes` payloads),
    /// instead of this method cloning every accepted datagram up front.
    pub fn rtc_udp_datagrams(&self) -> Vec<&Datagram> {
        let mut out: Vec<&Datagram> = self
            .rtc_streams
            .iter()
            .filter(|s| s.tuple.transport == Transport::Udp)
            .flat_map(|s| s.datagrams.iter())
            .collect();
        // Stable, so same-timestamp datagrams keep stream order.
        out.sort_by_key(|d| d.ts);
        out
    }

    /// Like [`FilterResult::rtc_udp_datagrams`], but consumes the result
    /// and *moves* the retained datagrams out — the owned handoff for
    /// callers that outlive the filter result (each payload stays a
    /// zero-copy view into its capture buffer either way).
    pub fn into_rtc_udp_datagrams(self) -> Vec<Datagram> {
        let mut out: Vec<Datagram> = self
            .rtc_streams
            .into_iter()
            .filter(|s| s.tuple.transport == Transport::Udp)
            .flat_map(|s| s.datagrams)
            .collect();
        out.sort_by_key(|d| d.ts);
        out
    }
}

/// How many early segments of a TCP stream are scanned for a ClientHello.
const SNI_SCAN_SEGMENTS: usize = 8;

/// Extract the SNI of a TCP stream by scanning its early segments for a
/// TLS ClientHello. `segments` are the stream's payloads in capture order;
/// only the first [`SNI_SCAN_SEGMENTS`] are consulted.
fn segments_sni(segments: &[Datagram]) -> Option<String> {
    // A ClientHello in a single segment (the common case): try each early
    // segment on its own, so a hello that starts mid-stream is still found.
    if let Some(sni) = segments
        .iter()
        .take(SNI_SCAN_SEGMENTS)
        .find_map(|d| rtc_wire::tls::client_hello_sni(&d.payload).ok().flatten())
    {
        return Some(sni);
    }
    // Large hellos (big ALPN/key-share lists) span TCP segment boundaries,
    // where every individual segment parses as truncated. Reassemble the
    // stream head progressively and retry after each segment.
    let mut head = Vec::new();
    for d in segments.iter().take(SNI_SCAN_SEGMENTS).skip(1) {
        if head.is_empty() {
            head.extend_from_slice(&segments[0].payload);
        }
        head.extend_from_slice(&d.payload);
        if let Ok(sni) = rtc_wire::tls::client_hello_sni(&head) {
            return sni;
        }
    }
    None
}

fn stream_sni(stream: &Stream) -> Option<String> {
    segments_sni(&stream.datagrams)
}

/// What the online filter retains per stream while datagrams arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Keep every datagram: `finish_result` yields the classic
    /// [`FilterResult`] with full streams. This is the batch wrapper mode.
    Full,
    /// Keep only what classification needs: UDP payloads until a stream is
    /// provably rejected, and the first few TCP segments for SNI
    /// extraction. Peak memory is O(live candidate streams) instead of
    /// O(capture).
    AcceptedUdp,
}

/// Summary outcome of a streaming ([`Retention::AcceptedUdp`]) filter pass.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// Kept RTC UDP datagrams merged in global capture-time order — exactly
    /// what `FilterResult::rtc_udp_datagrams()` yields on the batch path.
    pub accepted_udp: Vec<Datagram>,
    /// Raw traffic statistics before filtering.
    pub raw: StageStats,
    /// Stage-1 removal statistics.
    pub stage1: StageStats,
    /// Stage-2 removal statistics.
    pub stage2: StageStats,
    /// RTC (kept) statistics.
    pub rtc: StageStats,
    /// Streams removed by each stage-2 heuristic (the per-heuristic
    /// breakdown of `stage2`, for the observability layer).
    pub stage2_heuristics: BTreeMap<Heuristic, usize>,
    /// High-water mark of retained payload bytes while streaming.
    pub peak_retained_bytes: usize,
}

#[derive(Debug, Default)]
struct StreamAcct {
    first_ts: Option<Timestamp>,
    last_ts: Option<Timestamp>,
    count: usize,
    retained: Vec<Datagram>,
    /// `AcceptedUdp` mode only: retention was abandoned because the stream
    /// is already provably rejected (accounting continues regardless).
    dropped: bool,
}

fn ip_pair(t: &FiveTuple) -> (IpAddr, IpAddr) {
    let (a, b) = (t.src.ip(), t.dst.ip());
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Where the final classification placed a stream.
enum StreamClass {
    Stage1,
    Stage2(Heuristic),
    Rtc,
}

/// The paper's classification decision for one stream, shared verbatim by
/// the batch wrapper and the streaming finish so the two can never diverge.
#[allow(clippy::too_many_arguments)]
fn classify_stream(
    win: Window,
    config: &FilterConfig,
    out_of_window_3tuples: &HashSet<ThreeTuple>,
    precall_ip_pairs: &HashSet<(IpAddr, IpAddr)>,
    tuple: &FiveTuple,
    first_ts: Option<Timestamp>,
    last_ts: Option<Timestamp>,
    head: &[Datagram],
) -> StreamClass {
    // Stage 1: timespan alignment. An empty stream (no timestamps at all)
    // carries nothing worth keeping and is counted as removed.
    let enclosed = match (first_ts, last_ts) {
        (Some(first), Some(last)) => win.encloses(first, last),
        _ => false,
    };
    if !enclosed {
        return StreamClass::Stage1;
    }
    // Stage 2: intra-call heuristics, applied in the paper's order.
    if out_of_window_3tuples.contains(&tuple.dst_three_tuple()) {
        StreamClass::Stage2(Heuristic::ThreeTupleTiming)
    } else if tuple.transport == Transport::Tcp
        && segments_sni(head).is_some_and(|sni| config.sni_blocklist.contains(&sni))
    {
        StreamClass::Stage2(Heuristic::TlsSni)
    } else if tuple.touches_local_range() && precall_ip_pairs.contains(&ip_pair(tuple)) {
        StreamClass::Stage2(Heuristic::LocalIp)
    } else if config.excluded_ports.contains(&tuple.src.port()) || config.excluded_ports.contains(&tuple.dst.port()) {
        StreamClass::Stage2(Heuristic::PortExclusion)
    } else {
        StreamClass::Rtc
    }
}

/// The two-stage pipeline as an online engine: datagrams are pushed as they
/// arrive, per-stream accounting and the stage-2 observation sets grow
/// incrementally, and the final classification happens at [`finish`].
///
/// The key to bounded memory is that every retention drop is *monotone*:
/// a stream's payloads are only discarded once it is provably impossible
/// for the batch pipeline to classify it as RTC (its first datagram lies
/// outside the window, it touched an out-of-window destination 3-tuple, it
/// runs on an excluded port, or its local IP pair was seen pre-call).
/// Dropping affects retention only — counts and timestamps keep
/// accumulating — and the final classification is recomputed from the
/// complete accounting, so the outcome is bit-identical to the batch run
/// even on unsorted input.
///
/// [`finish`]: OnlineFilter::finish_streaming
#[derive(Debug)]
pub struct OnlineFilter {
    call_start: Timestamp,
    win: Window,
    config: FilterConfig,
    retention: Retention,
    streams: BTreeMap<FiveTuple, StreamAcct>,
    out_of_window_3tuples: HashSet<ThreeTuple>,
    precall_ip_pairs: HashSet<(IpAddr, IpAddr)>,
    retained_bytes: usize,
    peak_retained_bytes: usize,
}

impl OnlineFilter {
    /// Start an online filtering pass for one call.
    ///
    /// `call_window` is the (initiation, termination) pair from the capture
    /// manifest.
    pub fn new(call_window: (Timestamp, Timestamp), config: FilterConfig, retention: Retention) -> OnlineFilter {
        let win = Window::around(call_window, config.slack_us);
        OnlineFilter {
            call_start: call_window.0,
            win,
            config,
            retention,
            streams: BTreeMap::new(),
            out_of_window_3tuples: HashSet::new(),
            precall_ip_pairs: HashSet::new(),
            retained_bytes: 0,
            peak_retained_bytes: 0,
        }
    }

    /// Number of 5-tuple streams seen so far.
    pub fn live_streams(&self) -> usize {
        self.streams.len()
    }

    /// Currently retained payload bytes.
    pub fn retained_bytes(&self) -> usize {
        self.retained_bytes
    }

    /// High-water mark of retained payload bytes.
    pub fn peak_retained_bytes(&self) -> usize {
        self.peak_retained_bytes
    }

    /// Feed one decoded datagram, in capture order.
    pub fn push(&mut self, d: Datagram) {
        // Stage-2 observations, gathered from the FULL capture:
        // destination-side 3-tuples active outside the call window, and
        // local IP pairs seen before the call. A fresh observation can doom
        // streams that were still retaining payloads — sweep them.
        if !self.win.contains(d.ts) && self.out_of_window_3tuples.insert(d.five_tuple.dst_three_tuple()) {
            let hit = d.five_tuple.dst_three_tuple();
            self.sweep(|tuple| tuple.dst_three_tuple() == hit);
        }
        if d.ts < self.call_start {
            let pair = ip_pair(&d.five_tuple);
            if self.precall_ip_pairs.insert(pair) {
                self.sweep(|tuple| tuple.touches_local_range() && ip_pair(tuple) == pair);
            }
        }

        let doomed = self.retention == Retention::AcceptedUdp && self.is_doomed(&d);
        let acct = self.streams.entry(d.five_tuple).or_default();
        if acct.first_ts.is_none() {
            acct.first_ts = Some(d.ts);
        }
        acct.last_ts = Some(d.ts);
        acct.count += 1;

        let retain = match (self.retention, d.five_tuple.transport) {
            (Retention::Full, _) => true,
            // TCP payloads only ever feed SNI extraction, which scans the
            // first SNI_SCAN_SEGMENTS segments: cap the head, keep it even
            // for doomed streams (stage-2 attribution may still need it).
            (Retention::AcceptedUdp, Transport::Tcp) => acct.retained.len() < SNI_SCAN_SEGMENTS,
            (Retention::AcceptedUdp, Transport::Udp) => {
                if doomed && !acct.dropped {
                    acct.dropped = true;
                    let freed: usize = acct.retained.iter().map(|r| r.payload.len()).sum();
                    acct.retained = Vec::new();
                    self.retained_bytes -= freed;
                }
                !acct.dropped
            }
        };
        if retain {
            self.retained_bytes += d.payload.len();
            self.peak_retained_bytes = self.peak_retained_bytes.max(self.retained_bytes);
            acct.retained.push(d);
        }
    }

    /// Whether the arriving datagram's stream is already provably rejected
    /// (a *monotone* condition: it can never become RTC later).
    fn is_doomed(&self, d: &Datagram) -> bool {
        let tuple = &d.five_tuple;
        let first = self.streams.get(tuple).and_then(|a| a.first_ts).unwrap_or(d.ts);
        // First datagram outside the window → stage-1 removed, forever.
        !self.win.contains(first)
            // Any out-of-window activity on this destination 3-tuple (the
            // sets only grow, and an out-of-window datagram of the stream
            // itself inserts its own destination) → stage 1 or 2 removed.
            || self.out_of_window_3tuples.contains(&tuple.dst_three_tuple())
            // Excluded ports are static properties of the tuple.
            || self.config.excluded_ports.contains(&tuple.src.port())
            || self.config.excluded_ports.contains(&tuple.dst.port())
            // A local IP pair seen pre-call stays seen.
            || (tuple.touches_local_range() && self.precall_ip_pairs.contains(&ip_pair(tuple)))
    }

    /// Drop retained payloads of UDP streams newly doomed by a fresh
    /// observation.
    fn sweep(&mut self, doomed: impl Fn(&FiveTuple) -> bool) {
        if self.retention != Retention::AcceptedUdp {
            return;
        }
        let mut freed = 0;
        for (tuple, acct) in self.streams.iter_mut() {
            if tuple.transport == Transport::Udp && !acct.dropped && doomed(tuple) {
                acct.dropped = true;
                freed += acct.retained.iter().map(|r| r.payload.len()).sum::<usize>();
                acct.retained = Vec::new();
            }
        }
        self.retained_bytes -= freed;
    }

    /// Finish a [`Retention::Full`] pass with the classic [`FilterResult`].
    ///
    /// # Panics
    /// Panics when the filter was built with [`Retention::AcceptedUdp`]
    /// (full streams were not retained).
    pub fn finish_result(self) -> FilterResult {
        assert_eq!(self.retention, Retention::Full, "finish_result requires Retention::Full");
        let OnlineFilter { win, config, streams, out_of_window_3tuples, precall_ip_pairs, .. } = self;

        let mut raw = StageStats::default();
        let mut stage1 = StageStats::default();
        let mut stage2 = StageStats::default();
        let mut rtc = StageStats::default();
        let mut stage1_removed = Vec::new();
        let mut stage2_removed = Vec::new();
        let mut rtc_streams = Vec::new();
        for (tuple, acct) in streams {
            let class = classify_stream(
                win,
                &config,
                &out_of_window_3tuples,
                &precall_ip_pairs,
                &tuple,
                acct.first_ts,
                acct.last_ts,
                &acct.retained,
            );
            let stream = Stream { tuple, datagrams: acct.retained };
            raw.absorb(&stream);
            match class {
                StreamClass::Stage1 => {
                    stage1.absorb(&stream);
                    stage1_removed.push(stream);
                }
                StreamClass::Stage2(h) => {
                    stage2.absorb(&stream);
                    stage2_removed.push((stream, h));
                }
                StreamClass::Rtc => {
                    rtc.absorb(&stream);
                    rtc_streams.push(stream);
                }
            }
        }
        FilterResult { rtc_streams, stage1_removed, stage2_removed, raw, stage1, stage2, rtc }
    }

    /// Finish a streaming pass: classify every stream from its accounting
    /// and emit the accepted RTC UDP datagrams in global capture-time
    /// order, plus the per-stage statistics.
    ///
    /// Works in either retention mode; in [`Retention::AcceptedUdp`] mode
    /// the peak payload residency was bounded by the live candidate
    /// streams.
    pub fn finish_streaming(self) -> OnlineOutcome {
        let peak_retained_bytes = self.peak_retained_bytes;
        let OnlineFilter { win, config, streams, out_of_window_3tuples, precall_ip_pairs, .. } = self;

        let mut raw = StageStats::default();
        let mut stage1 = StageStats::default();
        let mut stage2 = StageStats::default();
        let mut rtc = StageStats::default();
        let mut stage2_heuristics: BTreeMap<Heuristic, usize> = BTreeMap::new();
        let mut accepted_udp = Vec::new();
        for (tuple, acct) in streams {
            let class = classify_stream(
                win,
                &config,
                &out_of_window_3tuples,
                &precall_ip_pairs,
                &tuple,
                acct.first_ts,
                acct.last_ts,
                &acct.retained,
            );
            // Stats count every datagram the stream saw, not just what was
            // retained — `absorb` must not read `datagrams.len()` here.
            let stats = match class {
                StreamClass::Stage1 => &mut stage1,
                StreamClass::Stage2(h) => {
                    *stage2_heuristics.entry(h).or_default() += 1;
                    &mut stage2
                }
                StreamClass::Rtc => &mut rtc,
            };
            match tuple.transport {
                Transport::Udp => {
                    raw.udp_streams += 1;
                    raw.udp_datagrams += acct.count;
                    stats.udp_streams += 1;
                    stats.udp_datagrams += acct.count;
                }
                Transport::Tcp => {
                    raw.tcp_streams += 1;
                    raw.tcp_segments += acct.count;
                    stats.tcp_streams += 1;
                    stats.tcp_segments += acct.count;
                }
            }
            if matches!(class, StreamClass::Rtc) && tuple.transport == Transport::Udp {
                debug_assert!(!acct.dropped, "an RTC-classified stream must never have been dropped");
                accepted_udp.extend(acct.retained);
            }
        }
        // Streams flatten in BTreeMap (tuple) order; the stable sort merges
        // them by capture time exactly like `rtc_udp_datagrams()`.
        accepted_udp.sort_by_key(|d| d.ts);
        OnlineOutcome { accepted_udp, raw, stage1, stage2, rtc, stage2_heuristics, peak_retained_bytes }
    }
}

/// Run the full two-stage pipeline over one call's decoded datagrams.
///
/// `call_window` is the (initiation, termination) pair from the capture
/// manifest; datagrams outside the capture (there are none in practice)
/// still participate in the out-of-window observations the stage-2
/// 3-tuple filter needs.
///
/// This is a thin wrapper over [`OnlineFilter`] in [`Retention::Full`]
/// mode — the batch and streaming paths share one classification engine.
pub fn run(datagrams: &[Datagram], call_window: (Timestamp, Timestamp), config: &FilterConfig) -> FilterResult {
    let mut filter = OnlineFilter::new(call_window, config.clone(), Retention::Full);
    for d in datagrams {
        filter.push(d.clone());
    }
    filter.finish_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn dg(ts_s: u64, src: &str, dst: &str, transport: Transport, payload: &[u8]) -> Datagram {
        Datagram {
            ts: Timestamp::from_secs(ts_s),
            five_tuple: FiveTuple { src: src.parse().unwrap(), dst: dst.parse().unwrap(), transport },
            payload: Bytes::copy_from_slice(payload),
        }
    }

    const WINDOW: (Timestamp, Timestamp) = (Timestamp::from_secs(60), Timestamp::from_secs(360));

    #[test]
    fn stream_grouping_by_exact_tuple() {
        let d = vec![
            dg(70, "10.0.0.1:100", "1.2.3.4:200", Transport::Udp, b"a"),
            dg(71, "10.0.0.1:100", "1.2.3.4:200", Transport::Udp, b"b"),
            dg(72, "1.2.3.4:200", "10.0.0.1:100", Transport::Udp, b"c"),
        ];
        let streams = group_streams(&d);
        assert_eq!(streams.len(), 2, "directions are distinct streams");
        assert_eq!(streams.iter().map(|s| s.len()).sum::<usize>(), 3);
    }

    #[test]
    fn stage1_removes_boundary_straddlers() {
        let d = vec![
            // Starts before the call.
            dg(10, "174.192.14.21:100", "1.2.3.4:200", Transport::Udp, b"x"),
            dg(100, "174.192.14.21:100", "1.2.3.4:200", Transport::Udp, b"x"),
            // Fully inside.
            dg(100, "174.192.14.21:101", "1.2.3.4:201", Transport::Udp, b"y"),
            dg(200, "174.192.14.21:101", "1.2.3.4:201", Transport::Udp, b"y"),
            // Ends after the call.
            dg(100, "174.192.14.21:102", "1.2.3.4:202", Transport::Udp, b"z"),
            dg(400, "174.192.14.21:102", "1.2.3.4:202", Transport::Udp, b"z"),
        ];
        let r = run(&d, WINDOW, &FilterConfig::default());
        assert_eq!(r.stage1_removed.len(), 2);
        assert_eq!(r.rtc_streams.len(), 1);
        assert_eq!(r.rtc_streams[0].tuple.src.port(), 101);
    }

    #[test]
    fn slack_tolerates_two_seconds() {
        let d = vec![
            dg(59, "174.192.14.21:100", "1.2.3.4:200", Transport::Udp, b"x"), // 1 s early: ok
            dg(361, "174.192.14.21:100", "1.2.3.4:200", Transport::Udp, b"x"), // 1 s late: ok
        ];
        let r = run(&d, WINDOW, &FilterConfig::default());
        assert_eq!(r.rtc_streams.len(), 1);
    }

    #[test]
    fn three_tuple_timing_catches_rebinding_push_service() {
        let d = vec![
            // Same destination 3-tuple before the call (different source port).
            dg(20, "10.0.0.1:100", "17.57.1.1:5223", Transport::Tcp, b"apns"),
            // In-window stream to the same destination: removed by 3-tuple.
            dg(100, "10.0.0.1:333", "17.57.1.1:5223", Transport::Tcp, b"apns"),
            dg(120, "10.0.0.1:333", "17.57.1.1:5223", Transport::Tcp, b"apns"),
        ];
        let r = run(&d, WINDOW, &FilterConfig::default());
        assert!(r.rtc_streams.is_empty());
        assert_eq!(r.stage2_removed.len(), 1);
        assert_eq!(r.stage2_removed[0].1, Heuristic::ThreeTupleTiming);
    }

    #[test]
    fn sni_blocklist_removes_tracker_flows() {
        let hello = rtc_wire::tls::build_client_hello(Some("ads.doubleclick.net"), [1; 32]);
        let ok_hello = rtc_wire::tls::build_client_hello(Some("rtc-media.example.com"), [2; 32]);
        let d = vec![
            dg(100, "10.0.0.1:400", "1.2.3.4:443", Transport::Tcp, &hello),
            dg(101, "10.0.0.1:401", "1.2.3.5:443", Transport::Tcp, &ok_hello),
        ];
        let r = run(&d, WINDOW, &FilterConfig::default());
        assert_eq!(r.rtc_streams.len(), 1);
        assert_eq!(r.rtc_streams[0].tuple.src.port(), 401);
        assert_eq!(r.stage2_removed[0].1, Heuristic::TlsSni);
    }

    #[test]
    fn local_ip_filter_spares_p2p_between_handsets() {
        let d = vec![
            // LAN chatter: local pair, ALSO seen pre-call → removed.
            dg(30, "192.168.1.101:49300", "192.168.1.50:49200", Transport::Udp, b"ssdp-ish"),
            dg(100, "192.168.1.101:49300", "192.168.1.50:49200", Transport::Udp, b"ssdp-ish"),
            dg(140, "192.168.1.101:49300", "192.168.1.50:49200", Transport::Udp, b"ssdp-ish"),
            // P2P media: local pair but first seen in-call → kept.
            dg(100, "192.168.1.101:50000", "192.168.1.102:50001", Transport::Udp, b"rtp"),
            dg(200, "192.168.1.101:50000", "192.168.1.102:50001", Transport::Udp, b"rtp"),
        ];
        let r = run(&d, WINDOW, &FilterConfig::default());
        // The pre-call LAN datagram stream is stage-1 removed (starts early);
        // the in-window LAN stream shares its 3-tuple... use distinct ports to
        // isolate the local-ip heuristic:
        let kept: Vec<_> = r.rtc_streams.iter().map(|s| s.tuple.src.port()).collect();
        assert!(kept.contains(&50000), "p2p media survives: {kept:?}");
        assert!(!kept.contains(&49300));
    }

    #[test]
    fn port_exclusion_removes_dns_and_ssdp() {
        let d = vec![
            dg(100, "10.0.0.1:500", "8.8.8.8:53", Transport::Udp, b"dns"),
            dg(100, "10.0.0.1:1900", "239.255.255.250:1900", Transport::Udp, b"ssdp"),
            dg(100, "10.0.0.1:501", "1.2.3.4:3478", Transport::Udp, b"stun"),
        ];
        let r = run(&d, WINDOW, &FilterConfig::default());
        assert_eq!(r.rtc_streams.len(), 1);
        assert_eq!(r.rtc_streams[0].tuple.dst.port(), 3478);
        let heuristics: Vec<_> = r.stage2_removed.iter().map(|(_, h)| *h).collect();
        assert_eq!(heuristics, vec![Heuristic::PortExclusion; 2]);
    }

    #[test]
    fn stats_are_consistent() {
        let d = vec![
            dg(10, "10.0.0.1:100", "1.2.3.4:200", Transport::Udp, b"early"),
            dg(100, "10.0.0.1:101", "8.8.8.8:53", Transport::Udp, b"dns"),
            dg(100, "10.0.0.1:102", "1.2.3.4:202", Transport::Udp, b"rtc"),
            dg(100, "10.0.0.1:103", "1.2.3.4:443", Transport::Tcp, b"sig"),
        ];
        let r = run(&d, WINDOW, &FilterConfig::default());
        assert_eq!(r.raw.udp_streams, 3);
        assert_eq!(r.raw.tcp_streams, 1);
        assert_eq!(r.raw.udp_datagrams, r.stage1.udp_datagrams + r.stage2.udp_datagrams + r.rtc.udp_datagrams);
        assert_eq!(r.raw.tcp_segments, r.stage1.tcp_segments + r.stage2.tcp_segments + r.rtc.tcp_segments);
        assert_eq!(r.rtc_udp_datagrams().len(), r.rtc.udp_datagrams);
    }

    #[test]
    fn blocklist_derivation_from_idle_traffic() {
        let hello = |host: &str, port: u16| {
            dg(
                100,
                &format!("10.0.0.1:{port}"),
                "1.2.3.4:443",
                Transport::Tcp,
                &rtc_wire::tls::build_client_hello(Some(host), [1; 32]),
            )
        };
        let idle = vec![
            hello("tracker.example.com", 400),
            hello("push.example.net", 401),
            // Non-ClientHello TCP and UDP noise must be ignored.
            dg(100, "10.0.0.1:402", "1.2.3.4:443", Transport::Tcp, b"not-tls"),
            dg(100, "10.0.0.1:403", "1.2.3.4:53", Transport::Udp, b"dns"),
        ];
        let list = derive_sni_blocklist(&idle);
        assert_eq!(list.len(), 2);
        assert!(list.contains("tracker.example.com"));
        // And the derived config actually filters matching in-call flows.
        let cfg = FilterConfig::with_derived_blocklist(&idle);
        let d = vec![hello("tracker.example.com", 500), hello("media.rtc.example", 501)];
        let r = run(&d, WINDOW, &cfg);
        assert_eq!(r.rtc_streams.len(), 1);
        assert_eq!(r.rtc_streams[0].tuple.src.port(), 501);
    }

    fn dg_us(ts_us: u64, src: &str, dst: &str, transport: Transport, payload: &[u8]) -> Datagram {
        Datagram {
            ts: Timestamp::from_micros(ts_us),
            five_tuple: FiveTuple { src: src.parse().unwrap(), dst: dst.parse().unwrap(), transport },
            payload: Bytes::copy_from_slice(payload),
        }
    }

    #[test]
    fn window_is_a_closed_interval() {
        let w = Window::around(WINDOW, 2_000_000);
        assert_eq!(w.lo, Timestamp::from_secs(58));
        assert_eq!(w.hi, Timestamp::from_secs(362));
        assert!(w.contains(w.lo), "lower boundary is inside");
        assert!(w.contains(w.hi), "upper boundary is inside");
        assert!(!w.contains(Timestamp::from_micros(w.lo.as_micros() - 1)));
        assert!(!w.contains(Timestamp::from_micros(w.hi.as_micros() + 1)));
        assert!(w.encloses(w.lo, w.hi));
        // Expansion saturates at time zero instead of wrapping.
        let early = Window::around((Timestamp::from_secs(1), Timestamp::from_secs(2)), 2_000_000);
        assert_eq!(early.lo, Timestamp::ZERO);
    }

    #[test]
    fn stage1_keeps_streams_touching_the_exact_boundary() {
        // Regression: the boundary semantics live in one shared predicate.
        // A datagram stamped exactly at win.lo (or win.hi) is in-window for
        // stage 1 AND not an out-of-window observation for stage 2, so the
        // stream survives both stages; 1 µs beyond either edge flips both.
        let lo_us = 58_000_000u64;
        let hi_us = 362_000_000u64;
        let at_edges = vec![
            dg_us(lo_us, "174.192.14.21:100", "1.2.3.4:200", Transport::Udp, b"x"),
            dg_us(hi_us, "174.192.14.21:100", "1.2.3.4:200", Transport::Udp, b"x"),
        ];
        let r = run(&at_edges, WINDOW, &FilterConfig::default());
        assert_eq!(r.rtc_streams.len(), 1, "boundary datagrams are inside the closed window");
        assert!(r.stage2_removed.is_empty());

        for (early, late) in [(lo_us - 1, hi_us), (lo_us, hi_us + 1)] {
            let past_edge = vec![
                dg_us(early, "174.192.14.21:100", "1.2.3.4:200", Transport::Udp, b"x"),
                dg_us(late, "174.192.14.21:100", "1.2.3.4:200", Transport::Udp, b"x"),
            ];
            let r = run(&past_edge, WINDOW, &FilterConfig::default());
            assert!(r.rtc_streams.is_empty(), "1 µs beyond the window is outside");
            assert_eq!(r.stage1_removed.len(), 1);
        }
    }

    #[test]
    fn rtc_udp_datagrams_merge_interleaved_streams_by_time() {
        // Regression: flattening per-stream in BTreeMap (tuple) order used
        // to emit all of stream A before all of stream B even when their
        // datagrams interleaved in capture time.
        let d = vec![
            dg_us(100_000_000, "10.0.0.9:700", "1.2.3.4:200", Transport::Udp, b"b0"),
            dg_us(101_000_000, "10.0.0.1:600", "1.2.3.4:200", Transport::Udp, b"a0"),
            dg_us(102_000_000, "10.0.0.9:700", "1.2.3.4:200", Transport::Udp, b"b1"),
            dg_us(103_000_000, "10.0.0.1:600", "1.2.3.4:200", Transport::Udp, b"a1"),
        ];
        let r = run(&d, WINDOW, &FilterConfig::default());
        assert_eq!(r.rtc_streams.len(), 2);
        let merged = r.rtc_udp_datagrams();
        let order: Vec<&[u8]> = merged.iter().map(|d| d.payload.as_ref()).collect();
        assert_eq!(order, vec![&b"b0"[..], b"a0", b"b1", b"a1"], "global capture-time order");
        let mut ts: Vec<_> = merged.iter().map(|d| d.ts).collect();
        let sorted = {
            let mut s = ts.clone();
            s.sort();
            s
        };
        assert_eq!(ts, sorted);
        ts.dedup();
        assert_eq!(ts.len(), 4);
    }

    #[test]
    fn split_client_hello_is_reassembled() {
        // Regression: a ClientHello spanning TCP segments parses as
        // truncated in every individual segment; both the stage-2 SNI
        // filter and the idle-traffic blocklist derivation must reassemble
        // the stream head before extraction.
        let hello = rtc_wire::tls::build_client_hello(Some("ads.doubleclick.net"), [1; 32]);
        let (seg1, seg2) = hello.split_at(hello.len() / 2);
        let d = vec![
            dg_us(100_000_000, "10.0.0.1:400", "1.2.3.4:443", Transport::Tcp, seg1),
            dg_us(100_100_000, "10.0.0.1:400", "1.2.3.4:443", Transport::Tcp, seg2),
        ];
        let r = run(&d, WINDOW, &FilterConfig::default());
        assert!(r.rtc_streams.is_empty(), "split hello still matches the blocklist");
        assert_eq!(r.stage2_removed.len(), 1);
        assert_eq!(r.stage2_removed[0].1, Heuristic::TlsSni);

        // The same split hello feeds blocklist derivation.
        let idle_hello = rtc_wire::tls::build_client_hello(Some("tracker.example.com"), [2; 32]);
        let (i1, i2) = idle_hello.split_at(20);
        let idle = vec![
            dg_us(100_000_000, "10.0.0.1:500", "1.2.3.4:443", Transport::Tcp, i1),
            dg_us(100_100_000, "10.0.0.1:500", "1.2.3.4:443", Transport::Tcp, i2),
        ];
        let list = derive_sni_blocklist(&idle);
        assert_eq!(list.len(), 1);
        assert!(list.contains("tracker.example.com"));
    }

    #[test]
    fn empty_stream_has_no_timespan() {
        // Regression: first_ts/last_ts used to report Timestamp::ZERO for
        // an empty stream, which read as "started before the call".
        let s = Stream {
            tuple: FiveTuple::udp("10.0.0.1:1".parse().unwrap(), "1.2.3.4:2".parse().unwrap()),
            datagrams: vec![],
        };
        assert!(s.is_empty());
        assert_eq!(s.first_ts(), None);
        assert_eq!(s.last_ts(), None);
        let full =
            Stream { tuple: s.tuple, datagrams: vec![dg(100, "10.0.0.1:1", "1.2.3.4:2", Transport::Udp, b"x")] };
        assert_eq!(full.first_ts(), Some(Timestamp::from_secs(100)));
        assert_eq!(full.last_ts(), Some(Timestamp::from_secs(100)));
    }

    #[test]
    fn empty_input() {
        let r = run(&[], WINDOW, &FilterConfig::default());
        assert!(r.rtc_streams.is_empty());
        assert_eq!(r.raw, StageStats::default());
    }

    /// The pre-refactor batch implementation, retained verbatim as the
    /// reference the online engine is differentially tested against.
    fn run_reference(
        datagrams: &[Datagram],
        call_window: (Timestamp, Timestamp),
        config: &FilterConfig,
    ) -> FilterResult {
        let (call_start, _call_end) = call_window;
        let win = Window::around(call_window, config.slack_us);

        let mut out_of_window_3tuples: HashSet<ThreeTuple> = HashSet::new();
        let mut precall_ip_pairs: HashSet<(IpAddr, IpAddr)> = HashSet::new();
        for d in datagrams {
            if !win.contains(d.ts) {
                out_of_window_3tuples.insert(d.five_tuple.dst_three_tuple());
            }
            if d.ts < call_start {
                let (a, b) = (d.five_tuple.src.ip(), d.five_tuple.dst.ip());
                precall_ip_pairs.insert(if a <= b { (a, b) } else { (b, a) });
            }
        }

        let streams = group_streams(datagrams);
        let mut raw = StageStats::default();
        for s in &streams {
            raw.absorb(s);
        }

        let mut stage1_removed = Vec::new();
        let mut survivors = Vec::new();
        for s in streams {
            let enclosed = match (s.first_ts(), s.last_ts()) {
                (Some(first), Some(last)) => win.encloses(first, last),
                _ => false,
            };
            if enclosed {
                survivors.push(s);
            } else {
                stage1_removed.push(s);
            }
        }

        let mut stage2_removed = Vec::new();
        let mut rtc_streams = Vec::new();
        for s in survivors {
            let heuristic = if out_of_window_3tuples.contains(&s.tuple.dst_three_tuple()) {
                Some(Heuristic::ThreeTupleTiming)
            } else if s.tuple.transport == Transport::Tcp
                && stream_sni(&s).is_some_and(|sni| config.sni_blocklist.contains(&sni))
            {
                Some(Heuristic::TlsSni)
            } else if s.tuple.touches_local_range() && {
                let (a, b) = (s.tuple.src.ip(), s.tuple.dst.ip());
                let pair = if a <= b { (a, b) } else { (b, a) };
                precall_ip_pairs.contains(&pair)
            } {
                Some(Heuristic::LocalIp)
            } else if config.excluded_ports.contains(&s.tuple.src.port())
                || config.excluded_ports.contains(&s.tuple.dst.port())
            {
                Some(Heuristic::PortExclusion)
            } else {
                None
            };
            match heuristic {
                Some(h) => stage2_removed.push((s, h)),
                None => rtc_streams.push(s),
            }
        }

        let mut stage1 = StageStats::default();
        for s in &stage1_removed {
            stage1.absorb(s);
        }
        let mut stage2 = StageStats::default();
        for (s, _) in &stage2_removed {
            stage2.absorb(s);
        }
        let mut rtc = StageStats::default();
        for s in &rtc_streams {
            rtc.absorb(s);
        }

        FilterResult { rtc_streams, stage1_removed, stage2_removed, raw, stage1, stage2, rtc }
    }

    fn assert_results_equal(a: &FilterResult, b: &FilterResult) {
        let streams_eq = |x: &[Stream], y: &[Stream]| {
            assert_eq!(x.len(), y.len());
            for (s, t) in x.iter().zip(y) {
                assert_eq!(s.tuple, t.tuple);
                assert_eq!(s.datagrams, t.datagrams);
            }
        };
        streams_eq(&a.rtc_streams, &b.rtc_streams);
        streams_eq(&a.stage1_removed, &b.stage1_removed);
        assert_eq!(a.stage2_removed.len(), b.stage2_removed.len());
        for ((s, h), (t, k)) in a.stage2_removed.iter().zip(&b.stage2_removed) {
            assert_eq!(s.tuple, t.tuple);
            assert_eq!(s.datagrams, t.datagrams);
            assert_eq!(h, k);
        }
        assert_eq!((a.raw, a.stage1, a.stage2, a.rtc), (b.raw, b.stage1, b.stage2, b.rtc));
    }

    mod online {
        use super::*;
        use proptest::prelude::*;

        /// A datagram pool exercising every heuristic: pre/in/post-window
        /// timestamps, excluded ports, local IP pairs, blocklisted SNI
        /// hellos, and plain RTC-looking UDP.
        fn arb_datagram() -> impl Strategy<Value = Datagram> {
            // WINDOW is (60 s, 360 s); slack 2 s → closed [58 s, 362 s].
            let picks = (0u8..6, any::<u64>(), 0u8..4, 0u8..4, 0u8..10, 0u8..5);
            let shape = (0u8..4, 0u8..6, collection::vec(any::<u8>(), 0..40));
            (picks, shape).prop_map(|((ts_sel, ts_raw, sip, dip, sp, dp), (transport, pay_sel, raw))| {
                let ts = match ts_sel {
                    0..=2 => 58_000_000 + ts_raw % (362_000_000 - 58_000_000 + 1), // in-window
                    3 => ts_raw % 58_000_000,                                      // pre-call
                    4 => 362_000_001 + ts_raw % 38_000_000,                        // post-call
                    _ => [57_999_999, 58_000_000, 362_000_000, 362_000_001][(ts_raw % 4) as usize], // edges
                };
                let sip = ["10.0.0.1", "10.0.0.2", "192.168.1.101", "192.168.1.102"][sip as usize];
                let dip = ["1.2.3.4", "1.2.3.5", "192.168.1.50", "192.168.1.102"][dip as usize];
                let sp = if sp == 9 { 5353 } else { 40000 + sp as u16 };
                let dp = [3478u16, 443, 50001, 50002, 53][dp as usize];
                let transport = if transport == 3 { Transport::Tcp } else { Transport::Udp };
                let payload = match pay_sel {
                    0..=3 => raw,
                    4 => rtc_wire::tls::build_client_hello(Some("ads.doubleclick.net"), [7; 32]),
                    _ => rtc_wire::tls::build_client_hello(Some("media.rtc.example"), [9; 32]),
                };
                Datagram {
                    ts: Timestamp::from_micros(ts),
                    five_tuple: FiveTuple {
                        src: format!("{sip}:{sp}").parse().unwrap(),
                        dst: format!("{dip}:{dp}").parse().unwrap(),
                        transport,
                    },
                    payload: payload.into(),
                }
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The rewritten `run` (online engine, Full retention) matches
            /// the retained pre-refactor batch implementation exactly —
            /// including on unsorted input, where first/last timestamps
            /// follow push order rather than min/max.
            #[test]
            fn full_mode_matches_batch_reference(datagrams in proptest::collection::vec(arb_datagram(), 0..120)) {
                let cfg = FilterConfig::default();
                let reference = run_reference(&datagrams, WINDOW, &cfg);
                let online = run(&datagrams, WINDOW, &cfg);
                assert_results_equal(&online, &reference);
            }

            /// The bounded-retention streaming mode emits exactly the batch
            /// pipeline's accepted UDP datagrams and per-stage stats.
            #[test]
            fn accepted_udp_mode_matches_batch(datagrams in proptest::collection::vec(arb_datagram(), 0..120)) {
                let cfg = FilterConfig::default();
                let reference = run_reference(&datagrams, WINDOW, &cfg);
                let mut f = OnlineFilter::new(WINDOW, cfg, Retention::AcceptedUdp);
                for d in &datagrams {
                    f.push(d.clone());
                }
                let out = f.finish_streaming();
                let want: Vec<Datagram> = reference.rtc_udp_datagrams().into_iter().cloned().collect();
                prop_assert_eq!(out.accepted_udp, want);
                prop_assert_eq!(out.raw, reference.raw);
                prop_assert_eq!(out.stage1, reference.stage1);
                prop_assert_eq!(out.stage2, reference.stage2);
                prop_assert_eq!(out.rtc, reference.rtc);
            }
        }

        #[test]
        fn doomed_streams_release_their_payloads() {
            // A chatty pre-call stream is dropped the moment it is seen;
            // retained bytes stay bounded by the single live RTC stream.
            let mut f = OnlineFilter::new(WINDOW, FilterConfig::default(), Retention::AcceptedUdp);
            for i in 0..100u64 {
                f.push(dg(10 + i / 50, "174.192.14.21:100", "1.2.3.4:200", Transport::Udp, &[0u8; 100]));
            }
            assert_eq!(f.retained_bytes(), 0, "pre-call stream retains nothing");
            f.push(dg(100, "174.192.14.21:101", "1.2.3.4:3478", Transport::Udp, &[0u8; 100]));
            assert_eq!(f.retained_bytes(), 100);
            // An excluded-port stream never retains.
            f.push(dg(101, "174.192.14.21:102", "8.8.8.8:53", Transport::Udp, &[0u8; 500]));
            assert_eq!(f.retained_bytes(), 100);
            assert_eq!(f.peak_retained_bytes(), 100);
            let out = f.finish_streaming();
            assert_eq!(out.accepted_udp.len(), 1);
            assert_eq!(out.raw.udp_datagrams, 102);
        }

        #[test]
        fn late_observation_sweeps_retained_stream() {
            // A stream accepted-so-far loses its payloads when its
            // destination 3-tuple later shows up out-of-window — and the
            // final classification still matches batch.
            let mut f = OnlineFilter::new(WINDOW, FilterConfig::default(), Retention::AcceptedUdp);
            let d = vec![
                dg(100, "174.192.14.21:100", "1.2.3.4:3478", Transport::Udp, &[0u8; 64]),
                dg(101, "174.192.14.21:101", "1.2.3.4:443", Transport::Udp, &[0u8; 64]),
                // Post-window datagram to 1.2.3.4:3478 → dooms the first.
                dg(380, "174.192.14.9:999", "1.2.3.4:3478", Transport::Udp, &[0u8; 8]),
            ];
            f.push(d[0].clone());
            f.push(d[1].clone());
            assert_eq!(f.retained_bytes(), 128);
            f.push(d[2].clone());
            assert_eq!(f.retained_bytes(), 64, "swept the newly doomed stream");
            let out = f.finish_streaming();
            let reference = run(&d, WINDOW, &FilterConfig::default());
            let want: Vec<Datagram> = reference.rtc_udp_datagrams().into_iter().cloned().collect();
            assert_eq!(out.accepted_udp, want);
            assert_eq!(out.accepted_udp.len(), 1);
            assert_eq!(out.accepted_udp[0].five_tuple.dst.port(), 443);
        }

        #[test]
        fn tcp_head_is_capped_for_sni() {
            let hello = rtc_wire::tls::build_client_hello(Some("ads.doubleclick.net"), [1; 32]);
            let mut f = OnlineFilter::new(WINDOW, FilterConfig::default(), Retention::AcceptedUdp);
            f.push(dg(100, "10.0.0.1:400", "1.2.3.4:443", Transport::Tcp, &hello));
            for i in 0..50u64 {
                f.push(dg(101 + i, "10.0.0.1:400", "1.2.3.4:443", Transport::Tcp, &[0u8; 1000]));
            }
            assert!(
                f.retained_bytes() < hello.len() + SNI_SCAN_SEGMENTS * 1000,
                "TCP retention bounded by the SNI scan head"
            );
            let out = f.finish_streaming();
            assert_eq!(out.stage2.tcp_streams, 1, "blocklisted SNI still attributed from the capped head");
            assert_eq!(out.stage2.tcp_segments, 51);
        }
    }
}
