//! Differential tests: the streaming filter ([`OnlineFilter`] in
//! [`Retention::AcceptedUdp`] mode) must be observationally equivalent to
//! the batch pipeline ([`rtc_filter::run`]) on every input the study can
//! produce — same accepted RTC UDP datagrams in the same order, same
//! per-stage statistics, same stage-2 heuristic attribution — while
//! retaining strictly less memory. The batch path is itself a thin
//! wrapper over `Retention::Full`, so these tests pin the only place the
//! two modes can diverge: the monotone payload-drop ("doomed stream")
//! logic and its sweeps.

use std::collections::BTreeMap;

use bytes::Bytes;
use proptest::prelude::*;
use rtc_capture::{run_call, ExperimentConfig};
use rtc_filter::{run, FilterConfig, Heuristic, OnlineFilter, Retention};
use rtc_netemu::NetworkConfig;
use rtc_pcap::trace::Datagram;
use rtc_pcap::Timestamp;
use rtc_wire::ip::{FiveTuple, Transport};

/// Run both drivers over the same datagrams and assert every observable
/// output agrees. Returns the streaming peak so callers can make
/// memory-bound assertions on top.
fn assert_equivalent(datagrams: &[Datagram], window: (Timestamp, Timestamp), config: &FilterConfig) -> usize {
    let batch = run(datagrams, window, config);

    let mut online = OnlineFilter::new(window, config.clone(), Retention::AcceptedUdp);
    for d in datagrams {
        online.push(d.clone());
    }
    let streamed = online.finish_streaming();

    let batch_udp: Vec<Datagram> = batch.rtc_udp_datagrams().into_iter().cloned().collect();
    assert_eq!(streamed.accepted_udp, batch_udp, "accepted RTC UDP datagrams diverge");
    assert_eq!(streamed.raw, batch.raw, "raw stats diverge");
    assert_eq!(streamed.stage1, batch.stage1, "stage-1 stats diverge");
    assert_eq!(streamed.stage2, batch.stage2, "stage-2 stats diverge");
    assert_eq!(streamed.rtc, batch.rtc, "rtc stats diverge");

    let mut batch_heuristics: BTreeMap<Heuristic, usize> = BTreeMap::new();
    for (_, h) in &batch.stage2_removed {
        *batch_heuristics.entry(*h).or_default() += 1;
    }
    assert_eq!(streamed.stage2_heuristics, batch_heuristics, "stage-2 attribution diverges");

    // Streaming retention can never exceed what full retention holds at
    // the end (= every payload byte pushed).
    let full_residency: usize = datagrams.iter().map(|d| d.payload.len()).sum();
    assert!(streamed.peak_retained_bytes <= full_residency);
    streamed.peak_retained_bytes
}

#[test]
fn streaming_matches_batch_on_generated_calls() {
    // Real emulated captures: every app of the smoke matrix over a relay
    // and a P2P network, i.e. the exact traffic mix the study feeds the
    // filter (media, STUN/TURN handshakes, background noise, pre/post-call
    // activity).
    let config = ExperimentConfig::smoke(11);
    for app in config.applications() {
        for network in [NetworkConfig::WifiRelay, NetworkConfig::WifiP2p] {
            let capture = run_call(&config, app, network, 0);
            let datagrams = capture.trace.datagrams();
            let window = capture.manifest.call_window();
            let peak = assert_equivalent(&datagrams, window, &FilterConfig::default());
            // Each capture carries background traffic the filter rejects;
            // the streaming mode must have shed at least some of it.
            let total: usize = datagrams.iter().map(|d| d.payload.len()).sum();
            assert!(
                peak < total,
                "{} / {}: streaming retained every byte ({peak} of {total})",
                app.slug(),
                network.label()
            );
        }
    }
}

#[test]
fn streaming_is_insensitive_to_cross_stream_arrival_order() {
    // Interleave the capture's streams in a pseudo-random order while
    // preserving each stream's internal order (what out-of-order delivery
    // across flows looks like). Classification and output must not move.
    let config = ExperimentConfig::smoke(23);
    let app = config.applications()[0];
    let capture = run_call(&config, app, NetworkConfig::WifiRelay, 0);
    let datagrams = capture.trace.datagrams();
    let window = capture.manifest.call_window();

    // Group per 5-tuple (preserving capture order within each stream)...
    let mut per_stream: BTreeMap<String, Vec<Datagram>> = BTreeMap::new();
    for d in &datagrams {
        per_stream.entry(d.five_tuple.to_string()).or_default().push(d.clone());
    }
    // ...then merge with an LCG picking which stream advances next.
    let mut queues: Vec<Vec<Datagram>> = per_stream
        .into_values()
        .map(|mut v| {
            v.reverse(); // pop() yields capture order
            v
        })
        .collect();
    let mut lcg: u64 = 0x2545_f491_4f6c_dd1d;
    let mut shuffled = Vec::with_capacity(datagrams.len());
    while !queues.is_empty() {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let i = (lcg >> 33) as usize % queues.len();
        shuffled.push(queues[i].pop().unwrap());
        if queues[i].is_empty() {
            queues.swap_remove(i);
        }
    }
    assert_eq!(shuffled.len(), datagrams.len());

    let batch = run(&datagrams, window, &FilterConfig::default());
    let mut online = OnlineFilter::new(window, FilterConfig::default(), Retention::AcceptedUdp);
    for d in &shuffled {
        online.push(d.clone());
    }
    let streamed = online.finish_streaming();

    let batch_udp: Vec<Datagram> = batch.rtc_udp_datagrams().into_iter().cloned().collect();
    assert_eq!(streamed.accepted_udp, batch_udp);
    assert_eq!(streamed.raw, batch.raw);
    assert_eq!(streamed.stage1, batch.stage1);
    assert_eq!(streamed.stage2, batch.stage2);
    assert_eq!(streamed.rtc, batch.rtc);
}

const WINDOW: (Timestamp, Timestamp) = (Timestamp::from_secs(60), Timestamp::from_secs(360));

fn dg(ts_s: u64, tuple: FiveTuple, payload: &[u8]) -> Datagram {
    Datagram { ts: Timestamp::from_secs(ts_s), five_tuple: tuple, payload: Bytes::copy_from_slice(payload) }
}

fn udp(src: &str, dst: &str) -> FiveTuple {
    FiveTuple::udp(src.parse().unwrap(), dst.parse().unwrap())
}

#[test]
fn doomed_streams_never_accumulate_payloads() {
    // Every stream here is provably rejected at (or before) its first
    // datagram: out-of-window start, excluded port, or an out-of-window
    // observation on its destination 3-tuple. The streaming filter must
    // retain zero bytes while still producing batch-identical accounting.
    let rebinder = udp("10.0.0.1:9000", "203.0.113.9:40000"); // active pre-call...
    let same_dst = udp("10.0.0.1:9001", "203.0.113.9:40000"); // ...dooming this in-window twin
    let dns = udp("10.0.0.1:5353", "203.0.113.53:53");
    let big = vec![0xAB; 1000];

    let datagrams =
        vec![dg(10, rebinder, &big), dg(100, same_dst, &big), dg(120, rebinder, &big), dg(130, dns, &big)];
    let peak = assert_equivalent(&datagrams, WINDOW, &FilterConfig::default());
    assert_eq!(peak, 0, "every stream was doomed on arrival yet bytes were retained");
}

#[test]
fn late_observation_sweeps_already_retained_payloads() {
    // A stream looks acceptable while the call runs, then a post-call
    // datagram on the same destination 3-tuple retroactively dooms it.
    // The sweep must release the retained payloads (peak stays at the
    // pre-sweep high-water mark) and classification must match batch.
    let candidate = udp("10.0.0.1:9000", "203.0.113.9:40000");
    let rebinder = udp("10.0.0.1:9001", "203.0.113.9:40000");
    let keeper = udp("10.0.0.1:9002", "203.0.113.10:40001");

    let datagrams = vec![
        dg(100, candidate, &[1; 300]),
        dg(150, candidate, &[2; 300]),
        dg(200, keeper, &[3; 100]),
        dg(250, keeper, &[4; 100]),
        dg(400, rebinder, &[5; 50]), // out of window: dooms both 203.0.113.9 streams
    ];
    let peak = assert_equivalent(&datagrams, WINDOW, &FilterConfig::default());
    assert_eq!(peak, 800, "peak should be the pre-sweep residency");

    // After the sweep only the keeper's 200 bytes remain live: the freed
    // 600 candidate bytes must actually leave the residency counter.
    let mut online = OnlineFilter::new(WINDOW, FilterConfig::default(), Retention::AcceptedUdp);
    for d in &datagrams {
        online.push(d.clone());
    }
    assert_eq!(online.peak_retained_bytes(), 800);
    assert_eq!(online.retained_bytes(), 200, "sweep must release the doomed payloads");
}

/// A small adversarial alphabet: RTC candidates, a shared destination
/// 3-tuple, an excluded port, a local-range pair, and a TCP flow.
fn alphabet() -> [FiveTuple; 6] {
    [
        udp("10.0.0.1:5004", "203.0.113.1:40000"),
        udp("10.0.0.1:5006", "203.0.113.2:40002"),
        udp("10.0.0.1:9001", "203.0.113.1:40000"), // shares dst 3-tuple with [0]
        udp("10.0.0.1:7777", "203.0.113.3:53"),    // excluded port
        udp("192.168.1.5:6000", "192.168.1.9:6001"), // local-range pair
        FiveTuple::tcp("10.0.0.1:4444".parse().unwrap(), "203.0.113.4:5223".parse().unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random capture-ordered mixes over the alphabet, with timestamps
    /// straddling the window on both sides, must classify identically
    /// under both drivers. This hammers the doom/sweep interplay: which
    /// observation lands first, whether payloads were already retained,
    /// and boundary-straddling first/last timestamps.
    #[test]
    fn random_captures_classify_identically(
        picks in proptest::collection::vec((0usize..6, 0u64..500, 1usize..24), 0..48)
    ) {
        let tuples = alphabet();
        let mut datagrams: Vec<Datagram> = picks
            .iter()
            .map(|&(t, ts, len)| dg(ts, tuples[t], &vec![t as u8 + 1; len]))
            .collect();
        // Captures are timestamp-sorted (Trace::push maintains this), and
        // within-stream order is an input invariant of both drivers.
        datagrams.sort_by_key(|d| d.ts);
        assert_equivalent(&datagrams, WINDOW, &FilterConfig::default());
        // Transport sanity: TCP never reaches the accepted UDP output.
        let mut online = OnlineFilter::new(WINDOW, FilterConfig::default(), Retention::AcceptedUdp);
        for d in &datagrams {
            online.push(d.clone());
        }
        prop_assert!(online
            .finish_streaming()
            .accepted_udp
            .iter()
            .all(|d| d.five_tuple.transport == Transport::Udp));
    }
}
