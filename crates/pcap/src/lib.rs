//! # rtc-pcap
//!
//! A from-scratch reader/writer for the classic libpcap capture format and
//! the in-memory trace model the compliance pipeline operates on.
//!
//! The paper's raw inputs are Wireshark captures from two iPhones; this
//! crate is the substitution's I/O layer. The emulated experiment harness
//! (`rtc-capture`) writes traces through [`Writer`], and the analysis
//! pipeline reads them back through [`Reader`] — so the analysis code sees
//! exactly what it would see on real captures: timestamped link-layer
//! frames.
//!
//! Supported: the classic pcap format (magic `0xa1b2c3d4`), both byte
//! orders, microsecond and nanosecond timestamp resolutions, and link types
//! [`LinkType::Ethernet`] and [`LinkType::RawIp`]. The [`pcapng`] module reads
//! and writes Wireshark's default pcapng format as well.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pcapng;
pub mod time;
pub mod trace;

pub use time::Timestamp;
pub use trace::{decode_record, Record, Trace};

use std::io::{Read, Write};

/// Errors produced by pcap I/O.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with a recognized pcap magic number.
    BadMagic(u32),
    /// A structural problem in the file; the payload names it.
    Malformed(&'static str),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "pcap i/o error: {e}"),
            Error::BadMagic(m) => write!(f, "unrecognized pcap magic {m:#010x}"),
            Error::Malformed(what) => write!(f, "malformed pcap: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Coverage probe on malformed-capture rejections: each distinct
/// constraint string is its own rtc-cov slot. Compiled out without the
/// `cov-probes` feature.
#[inline]
fn malformed(what: &'static str) -> Error {
    #[cfg(feature = "cov-probes")]
    {
        rtc_cov::hit(rtc_cov::dynamic_id(&["pcap-error", what]));
    }
    Error::Malformed(what)
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}

/// Result alias for pcap I/O.
pub type Result<T> = core::result::Result<T, Error>;

/// Magic number of a microsecond-resolution little/big-endian pcap file.
pub const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// Magic number of a nanosecond-resolution pcap file.
pub const MAGIC_NANOS: u32 = 0xa1b2_3c4d;

/// Link-layer framing of the records in a trace.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkType {
    /// Ethernet II frames (`LINKTYPE_ETHERNET` = 1).
    #[default]
    Ethernet,
    /// Raw IPv4/IPv6 packets (`LINKTYPE_RAW` = 101).
    RawIp,
}

impl LinkType {
    /// The on-file link-type code.
    pub fn code(self) -> u32 {
        match self {
            LinkType::Ethernet => 1,
            LinkType::RawIp => 101,
        }
    }

    /// Decode an on-file link-type code.
    pub fn from_code(code: u32) -> Option<LinkType> {
        match code {
            1 => Some(LinkType::Ethernet),
            101 => Some(LinkType::RawIp),
            _ => None,
        }
    }
}

/// Maximum bytes captured per packet, as written in our file headers.
pub const DEFAULT_SNAPLEN: u32 = 262_144;

#[derive(Debug, Clone, Copy)]
struct FileHeader {
    swapped: bool,
    nanos: bool,
    link_type: LinkType,
}

/// Bytes per arena chunk the reader carves record buffers from. Records
/// larger than this get their own allocation.
const ARENA_CHUNK: usize = 1 << 16;

/// Streaming pcap reader.
///
/// Record payloads are carved out of a shared chunk arena: the reader
/// fills `ARENA_CHUNK`-sized `BytesMut` buffers and freezes a view per
/// record, so a chunk of ~90 average-sized records costs one heap
/// allocation instead of one per record, and every downstream `Datagram`
/// payload is a range-indexed view into the same buffer (zero copies from
/// file read to candidate extraction). A chunk is released once every
/// record sliced from it is dropped.
pub struct Reader<R: Read> {
    inner: R,
    header: FileHeader,
    arena: bytes::BytesMut,
}

impl<R: Read> Reader<R> {
    /// Open a pcap stream, consuming and validating the 24-byte file header.
    pub fn new(mut inner: R) -> Result<Reader<R>> {
        let mut h = [0u8; 24];
        inner.read_exact(&mut h)?;
        let magic = u32::from_be_bytes([h[0], h[1], h[2], h[3]]);
        let (swapped, nanos) = match magic {
            MAGIC_MICROS => (false, false),
            MAGIC_NANOS => (false, true),
            m if m.swap_bytes() == MAGIC_MICROS => (true, false),
            m if m.swap_bytes() == MAGIC_NANOS => (true, true),
            m => return Err(Error::BadMagic(m)),
        };
        let read_u32 = |b: &[u8]| {
            let v = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let link_code = read_u32(&h[20..24]);
        let link_type = LinkType::from_code(link_code).ok_or_else(|| malformed("unsupported link type"))?;
        #[cfg(feature = "cov-probes")]
        {
            match (swapped, nanos) {
                (false, false) => rtc_cov::probe!("pcap.header.be-micros"),
                (false, true) => rtc_cov::probe!("pcap.header.be-nanos"),
                (true, false) => rtc_cov::probe!("pcap.header.le-micros"),
                (true, true) => rtc_cov::probe!("pcap.header.le-nanos"),
            }
        }
        Ok(Reader { inner, header: FileHeader { swapped, nanos, link_type }, arena: bytes::BytesMut::new() })
    }

    /// The trace's link-layer type.
    pub fn link_type(&self) -> LinkType {
        self.header.link_type
    }

    /// Read the next record; `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        let mut h = [0u8; 16];
        match self.inner.read_exact(&mut h[..1]) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        self.inner.read_exact(&mut h[1..])?;
        let read_u32 = |b: &[u8]| {
            let v = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
            if self.header.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let ts_sec = read_u32(&h[0..4]) as u64;
        let ts_frac = read_u32(&h[4..8]) as u64;
        let incl_len = read_u32(&h[8..12]) as usize;
        let orig_len = read_u32(&h[12..16]) as usize;
        if incl_len > DEFAULT_SNAPLEN as usize {
            return Err(malformed("record exceeds snaplen"));
        }
        if incl_len > orig_len {
            return Err(malformed("incl_len > orig_len"));
        }
        let micros = if self.header.nanos { ts_frac / 1000 } else { ts_frac };
        // Carve the record out of the arena. `reserve` reuses spare
        // capacity in the current chunk and only allocates a fresh one
        // when the chunk is exhausted (outstanding record views keep the
        // old chunk alive, so it cannot be recycled in place).
        if self.arena.capacity() < incl_len {
            self.arena.reserve(incl_len.max(ARENA_CHUNK));
        }
        self.arena.resize(incl_len, 0);
        self.inner.read_exact(&mut self.arena[..incl_len])?;
        let data = self.arena.split_to(incl_len).freeze();
        rtc_cov::probe!("pcap.record.accept");
        Ok(Some(Record { ts: Timestamp::from_micros(ts_sec * 1_000_000 + micros), data }))
    }

    /// Read the remaining records into a [`Trace`].
    pub fn read_trace(mut self) -> Result<Trace> {
        let mut records = Vec::new();
        while let Some(r) = self.next_record()? {
            records.push(r);
        }
        Ok(Trace { link_type: self.header.link_type, records })
    }
}

/// Default number of records per [`TraceReader`] chunk.
pub const DEFAULT_CHUNK_RECORDS: usize = 1024;

/// Chunked streaming reader: iterates a capture in bounded record batches
/// without ever materializing the whole [`Trace`] in memory.
///
/// Each chunk is at most `chunk_records` records; peak memory for the read
/// side is therefore O(chunk), independent of capture size. Use
/// [`TraceReader::next_record`] for one-at-a-time iteration or
/// [`TraceReader::next_chunk`] for batch-friendly consumers.
pub struct TraceReader<R: Read> {
    inner: Reader<R>,
    chunk_records: usize,
}

impl<R: Read> TraceReader<R> {
    /// Open a pcap stream for chunked reading.
    ///
    /// `chunk_records` of 0 selects [`DEFAULT_CHUNK_RECORDS`].
    pub fn new(inner: R, chunk_records: usize) -> Result<TraceReader<R>> {
        let inner = Reader::new(inner)?;
        let chunk_records = if chunk_records == 0 { DEFAULT_CHUNK_RECORDS } else { chunk_records };
        Ok(TraceReader { inner, chunk_records })
    }

    /// The trace's link-layer type.
    pub fn link_type(&self) -> LinkType {
        self.inner.link_type()
    }

    /// The configured chunk size in records.
    pub fn chunk_records(&self) -> usize {
        self.chunk_records
    }

    /// Read the next record; `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        self.inner.next_record()
    }

    /// Read the next bounded batch of records; `Ok(None)` at end of file.
    ///
    /// A returned chunk is never empty and never longer than the configured
    /// chunk size.
    pub fn next_chunk(&mut self) -> Result<Option<Vec<Record>>> {
        let mut chunk = Vec::new();
        while chunk.len() < self.chunk_records {
            match self.inner.next_record()? {
                Some(r) => chunk.push(r),
                None => break,
            }
        }
        if chunk.is_empty() {
            Ok(None)
        } else {
            Ok(Some(chunk))
        }
    }
}

/// Open a pcap file on disk for chunked streaming reads.
///
/// `chunk_records` of 0 selects [`DEFAULT_CHUNK_RECORDS`].
pub fn open_file(
    path: impl AsRef<std::path::Path>,
    chunk_records: usize,
) -> Result<TraceReader<std::io::BufReader<std::fs::File>>> {
    let file = std::fs::File::open(path)?;
    TraceReader::new(std::io::BufReader::new(file), chunk_records)
}

/// Parse a complete pcap byte buffer into a [`Trace`].
pub fn parse(bytes: &[u8]) -> Result<Trace> {
    Reader::new(bytes)?.read_trace()
}

/// Parse a capture buffer in either format: pcapng is detected by its
/// section-header magic, anything else is tried as classic pcap.
pub fn parse_any(bytes: &[u8]) -> Result<Trace> {
    if pcapng::sniff(bytes) {
        rtc_cov::probe!("pcap.sniff.pcapng");
        pcapng::parse(bytes)
    } else {
        rtc_cov::probe!("pcap.sniff.classic");
        parse(bytes)
    }
}

/// Read a pcap file from disk.
pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<Trace> {
    let file = std::fs::File::open(path)?;
    Reader::new(std::io::BufReader::new(file))?.read_trace()
}

/// Read a capture file from disk in either classic pcap or pcapng format.
pub fn read_file_any(path: impl AsRef<std::path::Path>) -> Result<Trace> {
    let bytes = std::fs::read(path)?;
    parse_any(&bytes)
}

/// Streaming pcap writer (native byte order is big-endian on the wire here:
/// we always write the un-swapped microsecond format).
pub struct Writer<W: Write> {
    inner: W,
}

impl<W: Write> Writer<W> {
    /// Start a pcap stream, emitting the 24-byte file header.
    pub fn new(mut inner: W, link_type: LinkType) -> Result<Writer<W>> {
        inner.write_all(&MAGIC_MICROS.to_be_bytes())?;
        inner.write_all(&2u16.to_be_bytes())?; // version major
        inner.write_all(&4u16.to_be_bytes())?; // version minor
        inner.write_all(&0i32.to_be_bytes())?; // thiszone
        inner.write_all(&0u32.to_be_bytes())?; // sigfigs
        inner.write_all(&DEFAULT_SNAPLEN.to_be_bytes())?;
        inner.write_all(&link_type.code().to_be_bytes())?;
        Ok(Writer { inner })
    }

    /// Append one record.
    pub fn write_record(&mut self, record: &Record) -> Result<()> {
        let micros = record.ts.as_micros();
        self.inner.write_all(&((micros / 1_000_000) as u32).to_be_bytes())?;
        self.inner.write_all(&((micros % 1_000_000) as u32).to_be_bytes())?;
        self.inner.write_all(&(record.data.len() as u32).to_be_bytes())?;
        self.inner.write_all(&(record.data.len() as u32).to_be_bytes())?;
        self.inner.write_all(&record.data)?;
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Serialize a [`Trace`] to pcap bytes.
pub fn to_bytes(trace: &Trace) -> Vec<u8> {
    let mut w = Writer::new(Vec::new(), trace.link_type).expect("vec write cannot fail");
    for r in &trace.records {
        w.write_record(r).expect("vec write cannot fail");
    }
    w.finish().expect("vec flush cannot fail")
}

/// Write a [`Trace`] to a file on disk.
pub fn write_file(path: impl AsRef<std::path::Path>, trace: &Trace) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = Writer::new(std::io::BufWriter::new(file), trace.link_type)?;
    for r in &trace.records {
        w.write_record(r)?;
    }
    w.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtc_wire::ip::{build_ethernet_packet, FiveTuple};

    fn sample_trace() -> Trace {
        let t = FiveTuple::udp("10.0.0.1:1000".parse().unwrap(), "203.0.113.1:2000".parse().unwrap());
        Trace {
            link_type: LinkType::Ethernet,
            records: vec![
                Record { ts: Timestamp::from_micros(1_000_000), data: build_ethernet_packet(&t, b"one", 0).into() },
                Record { ts: Timestamp::from_micros(1_020_000), data: build_ethernet_packet(&t, b"two", 0).into() },
                Record { ts: Timestamp::from_micros(2_500_001), data: build_ethernet_packet(&t, b"three", 0).into() },
            ],
        }
    }

    #[test]
    fn roundtrip_in_memory() {
        let trace = sample_trace();
        let bytes = to_bytes(&trace);
        let back = parse(&bytes).unwrap();
        assert_eq!(back.link_type, LinkType::Ethernet);
        assert_eq!(back.records.len(), 3);
        for (a, b) in trace.records.iter().zip(&back.records) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("rtc-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pcap");
        let trace = sample_trace();
        write_file(&path, &trace).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.records.len(), trace.records.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn swapped_byte_order_is_read() {
        let trace = sample_trace();
        let bytes = to_bytes(&trace);
        // Byte-swap every header field to fake an opposite-endian writer.
        let mut sw = Vec::new();
        for i in (0..24).step_by(4) {
            // header words are u32 except version (two u16) — swap as u32
            // works because the reader swaps back symmetrically, but the
            // version check is lenient, so handle the two u16s properly.
            if i == 4 {
                sw.extend_from_slice(&[bytes[5], bytes[4], bytes[7], bytes[6]]);
            } else {
                sw.extend_from_slice(&[bytes[i + 3], bytes[i + 2], bytes[i + 1], bytes[i]]);
            }
        }
        let mut o = 24;
        while o < bytes.len() {
            for i in (0..16).step_by(4) {
                sw.extend_from_slice(&[bytes[o + i + 3], bytes[o + i + 2], bytes[o + i + 1], bytes[o + i]]);
            }
            let incl = u32::from_be_bytes([bytes[o + 8], bytes[o + 9], bytes[o + 10], bytes[o + 11]]) as usize;
            sw.extend_from_slice(&bytes[o + 16..o + 16 + incl]);
            o += 16 + incl;
        }
        let back = parse(&sw).unwrap();
        assert_eq!(back.records.len(), 3);
        assert_eq!(back.records[0].ts, Timestamp::from_micros(1_000_000));
    }

    #[test]
    fn nanosecond_magic_is_scaled() {
        let trace = sample_trace();
        let mut bytes = to_bytes(&trace);
        bytes[..4].copy_from_slice(&MAGIC_NANOS.to_be_bytes());
        // The fractional fields are now interpreted as nanoseconds.
        let back = parse(&bytes).unwrap();
        assert_eq!(back.records[0].ts, Timestamp::from_micros(1_000_000)); // .0 s unchanged
        assert_eq!(back.records[2].ts.as_micros(), 2_000_000 + 500_001 / 1000);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&sample_trace());
        bytes[0] = 0;
        assert!(matches!(parse(&bytes), Err(Error::BadMagic(_))));
    }

    #[test]
    fn rejects_unsupported_link_type() {
        let mut bytes = to_bytes(&sample_trace());
        bytes[20..24].copy_from_slice(&228u32.to_be_bytes()); // LINKTYPE_IPV4, unsupported
        assert!(matches!(parse(&bytes), Err(Error::Malformed(_))));
    }

    #[test]
    fn truncated_record_is_io_error() {
        let bytes = to_bytes(&sample_trace());
        let cut = bytes.len() - 2;
        assert!(matches!(parse(&bytes[..cut]), Err(Error::Io(_))));
    }

    #[test]
    fn empty_trace_roundtrip() {
        let trace = Trace { link_type: LinkType::RawIp, records: vec![] };
        let back = parse(&to_bytes(&trace)).unwrap();
        assert_eq!(back.link_type, LinkType::RawIp);
        assert!(back.records.is_empty());
    }

    #[test]
    fn trace_reader_chunks_are_bounded_and_complete() {
        let trace = sample_trace();
        let bytes = to_bytes(&trace);
        let mut tr = TraceReader::new(&bytes[..], 2).unwrap();
        assert_eq!(tr.link_type(), LinkType::Ethernet);
        let first = tr.next_chunk().unwrap().unwrap();
        assert_eq!(first.len(), 2);
        let second = tr.next_chunk().unwrap().unwrap();
        assert_eq!(second.len(), 1);
        assert!(tr.next_chunk().unwrap().is_none());
        let streamed: Vec<Record> = first.into_iter().chain(second).collect();
        assert_eq!(streamed, trace.records);
    }

    #[test]
    fn trace_reader_zero_chunk_uses_default() {
        let bytes = to_bytes(&sample_trace());
        let tr = TraceReader::new(&bytes[..], 0).unwrap();
        assert_eq!(tr.chunk_records(), DEFAULT_CHUNK_RECORDS);
    }

    #[test]
    fn open_file_streams_records() {
        let dir = std::env::temp_dir().join("rtc-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chunked.pcap");
        let trace = sample_trace();
        write_file(&path, &trace).unwrap();
        let mut tr = open_file(&path, 1).unwrap();
        let mut n = 0;
        while let Some(chunk) = tr.next_chunk().unwrap() {
            assert_eq!(chunk.len(), 1);
            n += chunk.len();
        }
        assert_eq!(n, trace.records.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incl_len_greater_than_orig_rejected() {
        let mut bytes = to_bytes(&sample_trace());
        // Set orig_len of the first record to incl_len - 1.
        let incl = u32::from_be_bytes([bytes[32], bytes[33], bytes[34], bytes[35]]);
        bytes[36..40].copy_from_slice(&(incl - 1).to_be_bytes());
        assert!(matches!(parse(&bytes), Err(Error::Malformed(_))));
    }
}
