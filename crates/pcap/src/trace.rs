//! The in-memory trace model: timestamped link-layer records, plus helpers
//! to decode them into transport-level datagrams.

use crate::{LinkType, Timestamp};
use bytes::Bytes;
use rtc_wire::ip::{parse_ethernet_packet, FiveTuple};

/// One captured packet: a capture timestamp and the link-layer bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Capture time.
    pub ts: Timestamp,
    /// Link-layer frame bytes (cheaply cloneable).
    pub data: Bytes,
}

/// A decoded transport-layer packet from a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Capture time.
    pub ts: Timestamp,
    /// Stream key.
    pub five_tuple: FiveTuple,
    /// Transport payload (UDP datagram payload / TCP segment payload).
    pub payload: Bytes,
}

/// An ordered capture: link type plus records.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Link-layer framing of all records.
    pub link_type: LinkType,
    /// Records in capture order.
    pub records: Vec<Record>,
}

impl Trace {
    /// An empty Ethernet trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Total captured bytes (sum of record lengths).
    pub fn total_bytes(&self) -> usize {
        self.records.iter().map(|r| r.data.len()).sum()
    }

    /// Time range `(first, last)` of the capture, if non-empty.
    pub fn time_range(&self) -> Option<(Timestamp, Timestamp)> {
        let first = self.records.first()?.ts;
        let last = self.records.last()?.ts;
        Some((first, last))
    }

    /// Append a record, keeping capture order by timestamp.
    ///
    /// Emulated sources generate events out of order across streams; this
    /// keeps the trace sorted the way a real capture file would be.
    pub fn push(&mut self, record: Record) {
        match self.records.last() {
            Some(last) if last.ts > record.ts => {
                let idx = self.records.partition_point(|r| r.ts <= record.ts);
                self.records.insert(idx, record);
            }
            _ => self.records.push(record),
        }
    }

    /// Decode every record into a transport [`Datagram`], skipping records
    /// that do not parse (e.g. non-IP frames a real capture might contain).
    ///
    /// Only Ethernet-framed traces can be decoded; the study's harness
    /// always writes Ethernet.
    pub fn datagrams(&self) -> Vec<Datagram> {
        assert_eq!(self.link_type, LinkType::Ethernet, "only ethernet traces decode to datagrams");
        self.records.iter().filter_map(decode_record).collect()
    }
}

/// Decode one Ethernet-framed [`Record`] into a transport [`Datagram`].
///
/// Returns `None` for records that do not parse as Ethernet/IP/UDP-or-TCP
/// (e.g. non-IP frames a real capture might contain). The payload is a
/// zero-copy [`Bytes`] slice of the record's frame buffer, so streaming
/// consumers keep at most the frames they retain alive.
pub fn decode_record(r: &Record) -> Option<Datagram> {
    let parsed = parse_ethernet_packet(&r.data).ok()?;
    let offset = parsed.payload.as_ptr() as usize - r.data.as_ptr() as usize;
    Some(Datagram {
        ts: r.ts,
        five_tuple: parsed.five_tuple,
        payload: r.data.slice(offset..offset + parsed.payload.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtc_wire::ip::build_ethernet_packet;

    fn tuple() -> FiveTuple {
        FiveTuple::udp("10.0.0.1:1111".parse().unwrap(), "203.0.113.7:3478".parse().unwrap())
    }

    fn rec(ts_ms: u64, payload: &[u8]) -> Record {
        Record { ts: Timestamp::from_millis(ts_ms), data: build_ethernet_packet(&tuple(), payload, 0).into() }
    }

    #[test]
    fn push_keeps_order() {
        let mut trace = Trace::new();
        trace.push(rec(10, b"a"));
        trace.push(rec(30, b"c"));
        trace.push(rec(20, b"b"));
        let ts: Vec<u64> = trace.records.iter().map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn datagrams_decode_payload_and_tuple() {
        let mut trace = Trace::new();
        trace.push(rec(5, b"payload-bytes"));
        let dgrams = trace.datagrams();
        assert_eq!(dgrams.len(), 1);
        assert_eq!(dgrams[0].five_tuple, tuple());
        assert_eq!(&dgrams[0].payload[..], b"payload-bytes");
        assert_eq!(dgrams[0].ts, Timestamp::from_millis(5));
    }

    #[test]
    fn undecodable_records_are_skipped() {
        let mut trace = Trace::new();
        trace.push(rec(1, b"ok"));
        trace.push(Record { ts: Timestamp::from_millis(2), data: Bytes::from_static(&[0xFF; 20]) });
        assert_eq!(trace.datagrams().len(), 1);
    }

    #[test]
    fn totals_and_range() {
        let mut trace = Trace::new();
        assert!(trace.time_range().is_none());
        trace.push(rec(1, b"aa"));
        trace.push(rec(9, b"bb"));
        let (a, b) = trace.time_range().unwrap();
        assert_eq!(a, Timestamp::from_millis(1));
        assert_eq!(b, Timestamp::from_millis(9));
        assert!(trace.total_bytes() > 0);
    }
}
