//! Trace time: a microsecond-resolution timestamp shared across the study's
//! crates. Experiment clocks are virtual (the emulator advances them
//! deterministically), so this is a plain integer type rather than
//! `std::time::SystemTime`.

/// A point in trace time, microseconds since the trace epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The trace epoch.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Construct from microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Timestamp {
        Timestamp(micros)
    }

    /// Construct from milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Timestamp {
        Timestamp(millis * 1_000)
    }

    /// Construct from seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Timestamp {
        Timestamp(secs * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This timestamp advanced by `micros`.
    pub const fn plus_micros(self, micros: u64) -> Timestamp {
        Timestamp(self.0 + micros)
    }

    /// This timestamp advanced by `millis`.
    pub const fn plus_millis(self, millis: u64) -> Timestamp {
        Timestamp(self.0 + millis * 1_000)
    }

    /// This timestamp advanced by `secs`.
    pub const fn plus_secs(self, secs: u64) -> Timestamp {
        Timestamp(self.0 + secs * 1_000_000)
    }

    /// Saturating difference in microseconds (`self - earlier`).
    pub const fn micros_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl core::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}.{:06}s", self.0 / 1_000_000, self.0 % 1_000_000)
    }
}

impl core::ops::Add<u64> for Timestamp {
    type Output = Timestamp;
    /// Add microseconds.
    fn add(self, micros: u64) -> Timestamp {
        Timestamp(self.0 + micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Timestamp::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Timestamp::from_millis(1500).as_secs(), 1);
        assert_eq!(Timestamp::from_micros(2_500_000).as_secs_f64(), 2.5);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(10);
        assert_eq!(t.plus_millis(250).as_micros(), 10_250_000);
        assert_eq!(t.plus_secs(5), Timestamp::from_secs(15));
        assert_eq!(t.plus_secs(5).micros_since(t), 5_000_000);
        assert_eq!(t.micros_since(t.plus_secs(5)), 0); // saturating
        assert_eq!((t + 7).as_micros(), 10_000_007);
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp::from_micros(1_000_042).to_string(), "1.000042s");
    }

    #[test]
    fn ordering() {
        assert!(Timestamp::from_secs(1) < Timestamp::from_secs(2));
        assert_eq!(Timestamp::ZERO, Timestamp::default());
    }
}
