//! pcapng (the pcap *next generation* format, and Wireshark's default
//! output since 1.8) — reader and writer for the block types a packet
//! trace needs: Section Header (SHB), Interface Description (IDB),
//! Enhanced Packet (EPB) and Simple Packet (SPB) blocks.
//!
//! The paper's captures come from Wireshark, which writes pcapng unless
//! told otherwise; supporting it means `rtc-core`'s pcap entry points work
//! on unconverted captures. Scope: both byte orders, multiple interfaces,
//! per-interface timestamp resolution (`if_tsresol`), unknown blocks and
//! options skipped; name-resolution and statistics blocks ignored.

use crate::{LinkType, Record, Result, Timestamp, Trace};

/// Block type of the Section Header Block.
pub const SHB_TYPE: u32 = 0x0A0D_0D0A;
/// Block type of the Interface Description Block.
pub const IDB_TYPE: u32 = 0x0000_0001;
/// Block type of the Enhanced Packet Block.
pub const EPB_TYPE: u32 = 0x0000_0006;
/// Block type of the Simple Packet Block.
pub const SPB_TYPE: u32 = 0x0000_0003;
/// The SHB byte-order magic.
pub const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;

#[derive(Debug, Clone, Copy)]
struct Interface {
    link_type: Option<LinkType>,
    /// Timestamp units per second (default 10^6).
    ticks_per_sec: u64,
}

/// Whether a byte buffer starts with a pcapng section header.
pub fn sniff(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) == SHB_TYPE
}

/// Parse a complete pcapng byte buffer into a [`Trace`].
///
/// All packets must come from interfaces with a supported link type
/// (Ethernet or raw IP); packets from other interfaces are skipped, like
/// undecodable records in a classic pcap.
pub fn parse(bytes: &[u8]) -> Result<Trace> {
    if !sniff(bytes) {
        return Err(crate::malformed("not a pcapng section header"));
    }
    let mut offset = 0usize;
    let mut big_endian = true;
    let mut interfaces: Vec<Interface> = Vec::new();
    let mut trace = Trace { link_type: LinkType::Ethernet, records: Vec::new() };
    let mut link_type_set = false;

    while offset + 12 <= bytes.len() {
        // Block type is written in section byte order; SHB is detectable in
        // either because its type is a palindrome.
        let raw_type = read_u32(bytes, offset, big_endian)?;
        if raw_type == SHB_TYPE {
            // (Re-)establish byte order from the byte-order magic.
            let bom_be =
                u32::from_be_bytes([bytes[offset + 8], bytes[offset + 9], bytes[offset + 10], bytes[offset + 11]]);
            big_endian = match bom_be {
                BYTE_ORDER_MAGIC => true,
                m if m.swap_bytes() == BYTE_ORDER_MAGIC => false,
                _ => return Err(crate::malformed("bad byte-order magic")),
            };
            interfaces.clear();
        }
        let block_type = read_u32(bytes, offset, big_endian)?;
        let total_len = read_u32(bytes, offset + 4, big_endian)? as usize;
        if total_len < 12 || !total_len.is_multiple_of(4) || offset + total_len > bytes.len() {
            return Err(crate::malformed("block length"));
        }
        let body = &bytes[offset + 8..offset + total_len - 4];
        // Trailing length must echo the leading one.
        if read_u32(bytes, offset + total_len - 4, big_endian)? as usize != total_len {
            return Err(crate::malformed("trailing block length mismatch"));
        }

        #[cfg(feature = "cov-probes")]
        {
            match block_type {
                SHB_TYPE => rtc_cov::probe!("pcapng.block.shb"),
                IDB_TYPE => rtc_cov::probe!("pcapng.block.idb"),
                EPB_TYPE => rtc_cov::probe!("pcapng.block.epb"),
                SPB_TYPE => rtc_cov::probe!("pcapng.block.spb"),
                _ => rtc_cov::probe!("pcapng.block.unknown"),
            }
        }
        match block_type {
            SHB_TYPE => {} // handled above
            IDB_TYPE => {
                if body.len() < 8 {
                    return Err(crate::malformed("idb too short"));
                }
                let link_code = read_u16(body, 0, big_endian)? as u32;
                let link_type = LinkType::from_code(link_code);
                let mut iface = Interface { link_type, ticks_per_sec: 1_000_000 };
                // Walk options for if_tsresol (code 9, 1 byte).
                let mut o = 8;
                while o + 4 <= body.len() {
                    let code = read_u16(body, o, big_endian)?;
                    let len = read_u16(body, o + 2, big_endian)? as usize;
                    if code == 0 {
                        break;
                    }
                    if code == 9 && len == 1 {
                        rtc_cov::probe!("pcapng.idb.tsresol");
                        let v = body[o + 4];
                        iface.ticks_per_sec =
                            if v & 0x80 != 0 { 1u64 << (v & 0x7F) } else { 10u64.pow((v & 0x7F).min(12) as u32) };
                    }
                    o += 4 + len + (4 - len % 4) % 4;
                }
                if let Some(lt) = link_type {
                    if !link_type_set {
                        trace.link_type = lt;
                        link_type_set = true;
                    }
                }
                interfaces.push(iface);
            }
            EPB_TYPE => {
                if body.len() < 20 {
                    return Err(crate::malformed("epb too short"));
                }
                let iface_id = read_u32(body, 0, big_endian)? as usize;
                let ts_hi = read_u32(body, 4, big_endian)? as u64;
                let ts_lo = read_u32(body, 8, big_endian)? as u64;
                let cap_len = read_u32(body, 12, big_endian)? as usize;
                if 20 + cap_len > body.len() {
                    return Err(crate::malformed("epb capture length"));
                }
                let iface = interfaces.get(iface_id).ok_or_else(|| crate::malformed("unknown interface"))?;
                if iface.link_type.is_none() {
                    rtc_cov::probe!("pcapng.epb.skip-unsupported-link");
                    offset += total_len;
                    continue; // unsupported link type: skip the packet
                }
                let ticks = (ts_hi << 32) | ts_lo;
                let micros = ticks.saturating_mul(1_000_000) / iface.ticks_per_sec;
                trace.records.push(Record {
                    ts: Timestamp::from_micros(micros),
                    data: body[20..20 + cap_len].to_vec().into(),
                });
            }
            SPB_TYPE => {
                // Simple packets have no timestamp and belong to interface 0.
                if body.len() < 4 {
                    return Err(crate::malformed("spb too short"));
                }
                let orig_len = read_u32(body, 0, big_endian)? as usize;
                let cap_len = orig_len.min(body.len() - 4);
                if interfaces.first().and_then(|i| i.link_type).is_some() {
                    trace.records.push(Record { ts: Timestamp::ZERO, data: body[4..4 + cap_len].to_vec().into() });
                }
            }
            _ => {} // unknown block: skip
        }
        offset += total_len;
    }
    Ok(trace)
}

/// Serialize a [`Trace`] as a single-section, single-interface pcapng file
/// (big-endian, microsecond resolution).
pub fn to_bytes(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::new();
    // SHB: type, len, BOM, version 1.0, section length -1, trailing len.
    push_block(&mut out, SHB_TYPE, &{
        let mut b = Vec::new();
        b.extend_from_slice(&BYTE_ORDER_MAGIC.to_be_bytes());
        b.extend_from_slice(&1u16.to_be_bytes());
        b.extend_from_slice(&0u16.to_be_bytes());
        b.extend_from_slice(&(-1i64).to_be_bytes());
        b
    });
    // IDB: link type, reserved, snaplen (no options → default 10^-6 tsresol).
    push_block(&mut out, IDB_TYPE, &{
        let mut b = Vec::new();
        b.extend_from_slice(&(trace.link_type.code() as u16).to_be_bytes());
        b.extend_from_slice(&0u16.to_be_bytes());
        b.extend_from_slice(&crate::DEFAULT_SNAPLEN.to_be_bytes());
        b
    });
    for r in &trace.records {
        push_block(&mut out, EPB_TYPE, &{
            let mut b = Vec::new();
            let ticks = r.ts.as_micros();
            b.extend_from_slice(&0u32.to_be_bytes()); // interface 0
            b.extend_from_slice(&((ticks >> 32) as u32).to_be_bytes());
            b.extend_from_slice(&(ticks as u32).to_be_bytes());
            b.extend_from_slice(&(r.data.len() as u32).to_be_bytes());
            b.extend_from_slice(&(r.data.len() as u32).to_be_bytes());
            b.extend_from_slice(&r.data);
            while b.len() % 4 != 0 {
                b.push(0);
            }
            b
        });
    }
    out
}

fn push_block(out: &mut Vec<u8>, block_type: u32, body: &[u8]) {
    let total = 12 + body.len();
    out.extend_from_slice(&block_type.to_be_bytes());
    out.extend_from_slice(&(total as u32).to_be_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&(total as u32).to_be_bytes());
}

fn read_u32(buf: &[u8], offset: usize, big_endian: bool) -> Result<u32> {
    let b = buf.get(offset..offset + 4).ok_or_else(|| crate::malformed("truncated block"))?;
    let v = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
    Ok(if big_endian { v } else { v.swap_bytes() })
}

fn read_u16(buf: &[u8], offset: usize, big_endian: bool) -> Result<u16> {
    let b = buf.get(offset..offset + 2).ok_or_else(|| crate::malformed("truncated block"))?;
    let v = u16::from_be_bytes([b[0], b[1]]);
    Ok(if big_endian { v } else { v.swap_bytes() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtc_wire::ip::{build_ethernet_packet, FiveTuple};

    fn sample_trace() -> Trace {
        let t = FiveTuple::udp("10.0.0.1:1000".parse().unwrap(), "203.0.113.1:2000".parse().unwrap());
        Trace {
            link_type: LinkType::Ethernet,
            records: vec![
                Record { ts: Timestamp::from_micros(1_500_000), data: build_ethernet_packet(&t, b"one", 0).into() },
                Record { ts: Timestamp::from_micros(2_750_001), data: build_ethernet_packet(&t, b"two!", 0).into() },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let trace = sample_trace();
        let bytes = to_bytes(&trace);
        assert!(sniff(&bytes));
        let back = parse(&bytes).unwrap();
        assert_eq!(back.link_type, LinkType::Ethernet);
        assert_eq!(back.records.len(), 2);
        for (a, b) in trace.records.iter().zip(&back.records) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.data, b.data);
        }
        // Decoded payloads survive.
        assert_eq!(&back.datagrams()[0].payload[..], b"one");
    }

    #[test]
    fn little_endian_section_is_read() {
        // Hand-build a little-endian section with one EPB.
        let mut out = Vec::new();
        let le_block = |out: &mut Vec<u8>, ty: u32, body: &[u8]| {
            let total = (12 + body.len()) as u32;
            out.extend_from_slice(&ty.to_le_bytes());
            out.extend_from_slice(&total.to_le_bytes());
            out.extend_from_slice(body);
            out.extend_from_slice(&total.to_le_bytes());
        };
        let mut shb = Vec::new();
        shb.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
        shb.extend_from_slice(&1u16.to_le_bytes());
        shb.extend_from_slice(&0u16.to_le_bytes());
        shb.extend_from_slice(&(-1i64).to_le_bytes());
        le_block(&mut out, SHB_TYPE, &shb);
        let mut idb = Vec::new();
        idb.extend_from_slice(&1u16.to_le_bytes()); // Ethernet
        idb.extend_from_slice(&0u16.to_le_bytes());
        idb.extend_from_slice(&65535u32.to_le_bytes());
        le_block(&mut out, IDB_TYPE, &idb);
        let frame = build_ethernet_packet(
            &FiveTuple::udp("10.0.0.1:1".parse().unwrap(), "1.2.3.4:2".parse().unwrap()),
            b"le",
            0,
        );
        let mut epb = Vec::new();
        epb.extend_from_slice(&0u32.to_le_bytes());
        epb.extend_from_slice(&0u32.to_le_bytes()); // ts hi
        epb.extend_from_slice(&42u32.to_le_bytes()); // ts lo (µs)
        epb.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        epb.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        epb.extend_from_slice(&frame);
        while epb.len() % 4 != 0 {
            epb.push(0);
        }
        le_block(&mut out, EPB_TYPE, &epb);

        let trace = parse(&out).unwrap();
        assert_eq!(trace.records.len(), 1);
        assert_eq!(trace.records[0].ts, Timestamp::from_micros(42));
        assert_eq!(&trace.datagrams()[0].payload[..], b"le");
    }

    #[test]
    fn nanosecond_tsresol_option_is_honored() {
        // IDB with if_tsresol = 9 (nanoseconds).
        let mut bytes = to_bytes(&sample_trace());
        // Rebuild with an options-bearing IDB: easier to hand-assemble anew.
        let mut out = Vec::new();
        let shb_total = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        out.extend_from_slice(&bytes[..shb_total]); // reuse the SHB
        let mut idb = Vec::new();
        idb.extend_from_slice(&1u16.to_be_bytes());
        idb.extend_from_slice(&0u16.to_be_bytes());
        idb.extend_from_slice(&65535u32.to_be_bytes());
        idb.extend_from_slice(&9u16.to_be_bytes()); // if_tsresol
        idb.extend_from_slice(&1u16.to_be_bytes());
        idb.extend_from_slice(&[9, 0, 0, 0]); // 10^-9, padded
        idb.extend_from_slice(&0u16.to_be_bytes()); // opt_endofopt
        idb.extend_from_slice(&0u16.to_be_bytes());
        push_block(&mut out, IDB_TYPE, &idb);
        // One EPB with ticks = 3_000_000_000 ns = 3 s.
        let frame = build_ethernet_packet(
            &FiveTuple::udp("10.0.0.1:1".parse().unwrap(), "1.2.3.4:2".parse().unwrap()),
            b"ns",
            0,
        );
        let ticks: u64 = 3_000_000_000;
        let mut epb = Vec::new();
        epb.extend_from_slice(&0u32.to_be_bytes());
        epb.extend_from_slice(&((ticks >> 32) as u32).to_be_bytes());
        epb.extend_from_slice(&(ticks as u32).to_be_bytes());
        epb.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        epb.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        epb.extend_from_slice(&frame);
        while epb.len() % 4 != 0 {
            epb.push(0);
        }
        push_block(&mut out, EPB_TYPE, &epb);
        bytes = out;

        let trace = parse(&bytes).unwrap();
        assert_eq!(trace.records.len(), 1);
        assert_eq!(trace.records[0].ts, Timestamp::from_secs(3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&[0u8; 16]).is_err());
        let mut bytes = to_bytes(&sample_trace());
        bytes[8] ^= 0xFF; // corrupt the byte-order magic
        assert!(parse(&bytes).is_err());
    }

    #[test]
    fn trailing_length_mismatch_detected() {
        let mut bytes = to_bytes(&sample_trace());
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert!(parse(&bytes).is_err());
    }

    #[test]
    fn unknown_blocks_are_skipped() {
        let mut bytes = to_bytes(&sample_trace());
        // Append a private block (type 0x40000000) — must be ignored.
        push_block(&mut bytes, 0x4000_0000, &[1, 2, 3, 4]);
        let trace = parse(&bytes).unwrap();
        assert_eq!(trace.records.len(), 2);
    }
}
