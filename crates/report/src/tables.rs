//! Regeneration of the paper's Tables 1–6 from a [`StudyData`].

use crate::render::{pct, ratio, TextTable};
use crate::StudyData;
use rtc_dpi::Protocol;

/// Table 1 — traffic traces and filtering progress per application.
pub fn table1(data: &StudyData) -> TextTable {
    let mut t = TextTable::new(
        "Table 1: traffic traces and filtering progress",
        &[
            "Application",
            "Volume(MB)",
            "UDP strms|dgrams",
            "TCP strms|segs",
            "S1 UDP strms|dgrams",
            "S2 UDP strms|dgrams",
            "S1 TCP strms|segs",
            "S2 TCP strms|segs",
            "RTC UDP strms|dgrams",
            "RTC TCP strms|segs",
        ],
    );
    for app in data.apps() {
        let calls: Vec<_> = data.calls.iter().filter(|c| c.app == app).collect();
        let sum = |f: fn(&crate::CallRecord) -> (usize, usize)| -> (usize, usize) {
            calls.iter().fold((0, 0), |acc, c| {
                let v = f(c);
                (acc.0 + v.0, acc.1 + v.1)
            })
        };
        let mb: f64 = calls.iter().map(|c| c.raw_bytes as f64 / 1e6).sum();
        let raw_u = sum(|c| (c.raw.udp_streams, c.raw.udp_datagrams));
        let raw_t = sum(|c| (c.raw.tcp_streams, c.raw.tcp_segments));
        let s1_u = sum(|c| (c.stage1.udp_streams, c.stage1.udp_datagrams));
        let s2_u = sum(|c| (c.stage2.udp_streams, c.stage2.udp_datagrams));
        let s1_t = sum(|c| (c.stage1.tcp_streams, c.stage1.tcp_segments));
        let s2_t = sum(|c| (c.stage2.tcp_streams, c.stage2.tcp_segments));
        let rtc_u = sum(|c| (c.rtc.udp_streams, c.rtc.udp_datagrams));
        let rtc_t = sum(|c| (c.rtc.tcp_streams, c.rtc.tcp_segments));
        let pair = |(a, b): (usize, usize)| format!("{a} | {b}");
        t.row(vec![
            app,
            format!("{mb:.1}"),
            pair(raw_u),
            pair(raw_t),
            pair(s1_u),
            pair(s2_u),
            pair(s1_t),
            pair(s2_t),
            pair(rtc_u),
            pair(rtc_t),
        ]);
    }
    t
}

/// Table 2 — message distribution by protocol and application.
pub fn table2(data: &StudyData) -> TextTable {
    let mut t = TextTable::new(
        "Table 2: message distribution by protocols and applications",
        &["Application", "STUN/TURN", "RTP", "RTCP", "QUIC", "Fully Proprietary"],
    );
    for app in data.apps() {
        let (shares, fully) = data.app_message_distribution(&app);
        let cell = |p: Protocol| shares.get(&p).map(|s| pct(*s)).unwrap_or_else(|| "N/A".into());
        t.row(vec![
            app,
            cell(Protocol::StunTurn),
            cell(Protocol::Rtp),
            cell(Protocol::Rtcp),
            cell(Protocol::Quic),
            pct(fully),
        ]);
    }
    t
}

/// Table 3 — protocol compliance ratio by message type.
pub fn table3(data: &StudyData) -> TextTable {
    let mut t = TextTable::new(
        "Table 3: protocol compliance ratio by message type",
        &["Application", "STUN/TURN", "RTP", "RTCP", "QUIC", "All Protocols"],
    );
    for app in data.apps() {
        let cell = |p: Protocol| {
            let (ok, total) = data.app_type_ratio(&app, p);
            ratio(ok, total)
        };
        let (ok, total) = data.app_type_ratio_all(&app);
        t.row(vec![
            app.clone(),
            cell(Protocol::StunTurn),
            cell(Protocol::Rtp),
            cell(Protocol::Rtcp),
            cell(Protocol::Quic),
            ratio(ok, total),
        ]);
    }
    // The "All Apps" protocol-centric bottom row.
    let cell = |p: Protocol| {
        let (ok, total) = data.protocol_type_ratio(p);
        ratio(ok, total)
    };
    t.row(vec![
        "All Apps".into(),
        cell(Protocol::StunTurn),
        cell(Protocol::Rtp),
        cell(Protocol::Rtcp),
        cell(Protocol::Quic),
        String::new(),
    ]);
    t
}

fn type_table(data: &StudyData, protocol: Protocol, title: &str) -> TextTable {
    let mut t = TextTable::new(title, &["Application", "Compliant Types", "Non-compliant Types"]);
    for app in data.apps() {
        let (ok, bad) = data.app_type_lists(&app, protocol);
        if ok.is_empty() && bad.is_empty() {
            continue;
        }
        let fmt = |v: &[rtc_compliance::TypeKey]| {
            if v.is_empty() {
                "-".to_string()
            } else {
                v.iter().map(|k| k.to_string()).collect::<Vec<_>>().join(", ")
            }
        };
        t.row(vec![app, fmt(&ok), fmt(&bad)]);
    }
    t
}

/// Table 4 — observed STUN/TURN message types per application.
pub fn table4(data: &StudyData) -> TextTable {
    type_table(data, Protocol::StunTurn, "Table 4: observed STUN/TURN message types")
}

/// Table 5 — observed RTP payload types per application.
pub fn table5(data: &StudyData) -> TextTable {
    type_table(data, Protocol::Rtp, "Table 5: observed RTP message types")
}

/// Table 6 — observed RTCP packet types per application.
pub fn table6(data: &StudyData) -> TextTable {
    type_table(data, Protocol::Rtcp, "Table 6: observed RTCP message types")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CallRecord;
    use rtc_compliance::{CheckedCall, CheckedMessage, TypeKey};
    use rtc_pcap::Timestamp;
    use rtc_wire::ip::FiveTuple;

    fn sample() -> StudyData {
        let msg = |p, k, ok: bool| CheckedMessage {
            protocol: p,
            type_key: k,
            ts: Timestamp::ZERO,
            stream: FiveTuple::udp("10.0.0.1:1".parse().unwrap(), "1.2.3.4:2".parse().unwrap()),
            violation: (!ok)
                .then(|| rtc_compliance::Violation::new(rtc_compliance::Criterion::MessageTypeDefined, "x")),
        };
        StudyData {
            calls: vec![CallRecord {
                app: "Zoom".into(),
                network: "cellular".into(),
                repeat: 0,
                raw_bytes: 2_500_000,
                raw: rtc_filter::StageStats {
                    udp_streams: 10,
                    udp_datagrams: 1000,
                    tcp_streams: 5,
                    tcp_segments: 50,
                },
                stage1: rtc_filter::StageStats {
                    udp_streams: 3,
                    udp_datagrams: 30,
                    tcp_streams: 2,
                    tcp_segments: 20,
                },
                stage2: rtc_filter::StageStats {
                    udp_streams: 2,
                    udp_datagrams: 20,
                    tcp_streams: 1,
                    tcp_segments: 10,
                },
                rtc: rtc_filter::StageStats { udp_streams: 5, udp_datagrams: 950, tcp_streams: 2, tcp_segments: 20 },
                classes: (1, 900, 99),
                rejections: Default::default(),
                checked: CheckedCall {
                    messages: vec![
                        msg(Protocol::Rtp, TypeKey::Rtp(98), true),
                        msg(Protocol::StunTurn, TypeKey::Stun(2), false),
                    ],
                    fully_proprietary_datagrams: 99,
                },
            }],
        }
    }

    #[test]
    fn all_tables_render() {
        let s = sample();
        for t in [table1(&s), table2(&s), table3(&s), table4(&s), table5(&s), table6(&s)] {
            let text = t.to_text();
            assert!(text.contains("Zoom") || text.contains("Table"), "{text}");
            assert!(!t.to_csv().is_empty());
        }
    }

    #[test]
    fn table3_contents() {
        let s = sample();
        let text = table3(&s).to_text();
        assert!(text.contains("0/1"), "{text}"); // STUN: one type, non-compliant
        assert!(text.contains("1/1"), "{text}"); // RTP: one type, compliant
        assert!(text.contains("All Apps"));
    }

    #[test]
    fn table4_lists_stun_types() {
        let s = sample();
        let text = table4(&s).to_text();
        assert!(text.contains("0x0002"), "{text}");
    }

    #[test]
    fn table1_aggregates_counts() {
        let s = sample();
        let text = table1(&s).to_text();
        assert!(text.contains("2.5"), "{text}"); // MB
        assert!(text.contains("10 | 1000"), "{text}");
        assert!(text.contains("5 | 950"), "{text}");
    }
}
