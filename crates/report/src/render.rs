//! Small rendering helpers: aligned text tables and CSV output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> TextTable {
        TextTable { title: title.into(), header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut TextTable {
        self.rows.push(cells);
        self
    }

    /// Render as aligned text.
    pub fn to_text(&self) -> String {
        let cols = self.header.len().max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header, &widths));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC 4180-style quoting for cells with commas/quotes).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a `(compliant, total)` pair as the paper prints it.
pub fn ratio(ok: usize, total: usize) -> String {
    if total == 0 {
        "N/A".to_string()
    } else {
        format!("{ok}/{total}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_alignment() {
        let mut t = TextTable::new("T", &["a", "long-header"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let text = t.to_text();
        assert!(text.contains("== T =="));
        assert!(text.contains("long-header"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn csv_quoting() {
        let mut t = TextTable::new("T", &["a", "b"]);
        t.row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(ratio(3, 4), "3/4");
        assert_eq!(ratio(0, 0), "N/A");
    }
}
