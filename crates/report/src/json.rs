//! Machine-readable study export (the dataset artifact the paper releases
//! alongside its framework).

use crate::StudyData;
use rtc_dpi::Protocol;
use serde_json::json;

/// Serialize the full study summary as JSON: per-application volume/type
/// metrics, distributions, class shares and type inventories.
pub fn study_to_json(data: &StudyData) -> serde_json::Value {
    let apps: Vec<serde_json::Value> = data
        .apps()
        .iter()
        .map(|app| {
            let (shares, fully) = data.app_message_distribution(app);
            let (std_s, prop, fprop) = data.app_class_shares(app);
            let (ok, total) = data.app_type_ratio_all(app);
            let inventories: serde_json::Value = Protocol::ALL
                .iter()
                .map(|p| {
                    let (c, n) = data.app_type_lists(app, *p);
                    (
                        p.label().to_string(),
                        json!({
                            "compliant": c.iter().map(|k| k.to_string()).collect::<Vec<_>>(),
                            "non_compliant": n.iter().map(|k| k.to_string()).collect::<Vec<_>>(),
                        }),
                    )
                })
                .collect::<serde_json::Map<_, _>>()
                .into();
            json!({
                "application": app,
                "volume_compliance": data.app_volume_compliance(app),
                "type_compliance": { "compliant": ok, "total": total },
                "message_distribution": shares
                    .iter()
                    .map(|(p, s)| (p.label().to_string(), json!(*s)))
                    .collect::<serde_json::Map<String, serde_json::Value>>(),
                "fully_proprietary_share": fully,
                "datagram_classes": { "standard": std_s, "proprietary_header": prop, "fully_proprietary": fprop },
                "rejection_taxonomy": data
                    .app_rejection_taxonomy(app)
                    .into_iter()
                    .map(|(k, n)| (k, json!(n)))
                    .collect::<serde_json::Map<String, serde_json::Value>>(),
                "types": inventories,
            })
        })
        .collect();
    let protocols: serde_json::Value = Protocol::ALL
        .iter()
        .map(|p| {
            let (ok, total) = data.protocol_type_ratio(*p);
            (
                p.label().to_string(),
                json!({
                    "volume_compliance": data.protocol_volume_compliance(*p),
                    "type_compliance": { "compliant": ok, "total": total },
                }),
            )
        })
        .collect::<serde_json::Map<_, _>>()
        .into();
    json!({ "calls": data.calls.len(), "applications": apps, "protocols": protocols })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CallRecord;
    use rtc_compliance::{CheckedCall, CheckedMessage, TypeKey};
    use rtc_pcap::Timestamp;
    use rtc_wire::ip::FiveTuple;

    #[test]
    fn exports_well_formed_json() {
        let data = StudyData {
            calls: vec![CallRecord {
                app: "Zoom".into(),
                network: "cellular".into(),
                repeat: 0,
                raw_bytes: 1,
                raw: Default::default(),
                stage1: Default::default(),
                stage2: Default::default(),
                rtc: Default::default(),
                classes: (1, 2, 3),
                rejections: [("rtp: truncated".to_string(), 3)].into_iter().collect(),
                checked: CheckedCall {
                    messages: vec![CheckedMessage {
                        protocol: Protocol::Rtp,
                        type_key: TypeKey::Rtp(96),
                        ts: Timestamp::ZERO,
                        stream: FiveTuple::udp("10.0.0.1:1".parse().unwrap(), "1.2.3.4:2".parse().unwrap()),
                        violation: None,
                    }],
                    fully_proprietary_datagrams: 3,
                },
            }],
        };
        let v = study_to_json(&data);
        assert_eq!(v["calls"], 1);
        assert_eq!(v["applications"][0]["application"], "Zoom");
        assert_eq!(v["applications"][0]["type_compliance"]["total"], 1);
        assert_eq!(v["applications"][0]["rejection_taxonomy"]["rtp: truncated"], 3);
        assert!(v["protocols"]["RTP"]["volume_compliance"].as_f64().unwrap() > 0.99);
        // Round-trips through a string.
        let s = serde_json::to_string(&v).unwrap();
        let _: serde_json::Value = serde_json::from_str(&s).unwrap();
    }
}
