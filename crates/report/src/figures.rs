//! Regeneration of the paper's Figures 3–5 as data series (text bars +
//! CSV) rather than images: the *numbers* are what the reproduction
//! compares.

use crate::render::{pct, TextTable};
use crate::StudyData;
use rtc_dpi::Protocol;

/// Figure 3 — breakdown of datagrams: standard vs proprietary-header vs
/// fully-proprietary, per application.
pub fn figure3(data: &StudyData) -> TextTable {
    let mut t = TextTable::new(
        "Figure 3: breakdown of datagrams (standard vs proprietary)",
        &["Application", "Standard", "Proprietary header", "Fully proprietary"],
    );
    for app in data.apps() {
        let (s, p, f) = data.app_class_shares(&app);
        t.row(vec![app, pct(s), pct(p), pct(f)]);
    }
    t
}

/// Figure 4 — compliance ratio by traffic volume: one series per
/// application, one per protocol.
pub fn figure4(data: &StudyData) -> TextTable {
    let mut t = TextTable::new("Figure 4: compliance ratio by traffic volume", &["Series", "Subject", "Compliance"]);
    for app in data.apps() {
        t.row(vec!["application".into(), app.clone(), pct(data.app_volume_compliance(&app))]);
    }
    for p in Protocol::ALL {
        let observed = data.calls.iter().flat_map(|c| c.checked.messages.iter()).any(|m| m.protocol == p);
        if observed {
            t.row(vec!["protocol".into(), p.label().into(), pct(data.protocol_volume_compliance(p))]);
        }
    }
    t
}

/// Figure 5 — compliance ratio by message type: one series per
/// application, one per protocol.
pub fn figure5(data: &StudyData) -> TextTable {
    let mut t =
        TextTable::new("Figure 5: compliance ratio by message type", &["Series", "Subject", "Compliance", "Types"]);
    for app in data.apps() {
        let (ok, total) = data.app_type_ratio_all(&app);
        t.row(vec![
            "application".into(),
            app.clone(),
            pct(data.app_type_compliance_ratio(&app)),
            format!("{ok}/{total}"),
        ]);
    }
    for p in Protocol::ALL {
        let (ok, total) = data.protocol_type_ratio(p);
        if total > 0 {
            t.row(vec!["protocol".into(), p.label().into(), pct(ok as f64 / total as f64), format!("{ok}/{total}")]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CallRecord, StudyData};
    use rtc_compliance::{CheckedCall, CheckedMessage, TypeKey};
    use rtc_pcap::Timestamp;
    use rtc_wire::ip::FiveTuple;

    fn sample() -> StudyData {
        let msg = |p, k, ok: bool| CheckedMessage {
            protocol: p,
            type_key: k,
            ts: Timestamp::ZERO,
            stream: FiveTuple::udp("10.0.0.1:1".parse().unwrap(), "1.2.3.4:2".parse().unwrap()),
            violation: (!ok)
                .then(|| rtc_compliance::Violation::new(rtc_compliance::Criterion::HeaderFieldsValid, "x")),
        };
        StudyData {
            calls: vec![CallRecord {
                app: "FaceTime".into(),
                network: "cellular".into(),
                repeat: 0,
                raw_bytes: 0,
                raw: Default::default(),
                stage1: Default::default(),
                stage2: Default::default(),
                rtc: Default::default(),
                classes: (5, 90, 5),
                rejections: Default::default(),
                checked: CheckedCall {
                    messages: vec![
                        msg(Protocol::Rtp, TypeKey::Rtp(100), false),
                        msg(Protocol::Quic, TypeKey::QuicShort, true),
                    ],
                    fully_proprietary_datagrams: 5,
                },
            }],
        }
    }

    #[test]
    fn figures_render() {
        let s = sample();
        let f3 = figure3(&s).to_text();
        assert!(f3.contains("FaceTime"));
        assert!(f3.contains("90.0%"));
        let f4 = figure4(&s).to_text();
        assert!(f4.contains("QUIC"));
        assert!(f4.contains("100.0%"));
        assert!(f4.contains("50.0%")); // FaceTime volume compliance
        let f5 = figure5(&s).to_text();
        assert!(f5.contains("1/1")); // QUIC types
        assert!(f5.contains("0/1")); // RTP types
    }
}
