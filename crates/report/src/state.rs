//! Checkpoint (de)serialization of the incremental [`Aggregator`] state.
//!
//! The sharded study runner persists each shard's partial aggregation so a
//! killed shard resumes from its last checkpoint instead of restarting
//! (DESIGN.md "Scale tiers"). The encoding is explicit JSON — the same
//! hand-rolled `serde_json::Value` idiom as [`crate::json`] — so the
//! format is auditable and the round-trip is exact: deserialize → `merge`
//! equals the in-memory merge for any shard split (property-tested in
//! `tests/checkpoint_roundtrip.rs`).
//!
//! Every enum is encoded by its stable wire label (never a discriminant
//! index), so a checkpoint written by one build is readable by any build
//! that understands the same version header.

use crate::{Aggregator, CallRecord};
use rtc_compliance::findings::{Finding, FindingKind};
use rtc_compliance::{CheckedCall, CheckedMessage, Criterion, TypeKey, Violation};
use rtc_dpi::Protocol;
use rtc_pcap::Timestamp;
use rtc_wire::ip::{FiveTuple, Transport};
use rtc_wire::{Reason, WireError, WireProtocol};
use serde_json::{json, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Deserialization failure: which field was malformed and why.
pub type StateError = String;

fn err(what: &str, v: &Value) -> StateError {
    format!("checkpoint state: invalid {what}: {}", serde_json::to_string(v).unwrap_or_default())
}

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, StateError> {
    v.get(key).ok_or_else(|| format!("checkpoint state: missing field `{key}`"))
}

fn as_u64(v: &Value, what: &str) -> Result<u64, StateError> {
    v.as_u64().ok_or_else(|| err(what, v))
}

fn as_usize(v: &Value, what: &str) -> Result<usize, StateError> {
    Ok(as_u64(v, what)? as usize)
}

fn as_str<'a>(v: &'a Value, what: &str) -> Result<&'a str, StateError> {
    v.as_str().ok_or_else(|| err(what, v))
}

fn as_array<'a>(v: &'a Value, what: &str) -> Result<&'a Vec<Value>, StateError> {
    v.as_array().ok_or_else(|| err(what, v))
}

/// Intern a malformed-field constraint back to `&'static str`.
///
/// [`Reason::Malformed`] carries a static string naming the violated
/// constraint; deserialization re-materializes it by leaking once per
/// distinct constraint. The pool is bounded by the (small, fixed) set of
/// constraint strings the wire grammars emit, so the leak is a one-time
/// cost per process, not per checkpoint.
fn intern_constraint(s: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL.get_or_init(Default::default).lock().expect("constraint intern pool");
    if let Some(hit) = pool.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

fn protocol_to_value(p: Protocol) -> Value {
    json!(p.label())
}

fn protocol_from_value(v: &Value) -> Result<Protocol, StateError> {
    let s = as_str(v, "protocol")?;
    Protocol::ALL.iter().copied().find(|p| p.label() == s).ok_or_else(|| err("protocol", v))
}

fn wire_protocol_to_value(p: WireProtocol) -> Value {
    json!(p.label())
}

fn wire_protocol_from_value(v: &Value) -> Result<WireProtocol, StateError> {
    const ALL: [WireProtocol; 7] = [
        WireProtocol::Ip,
        WireProtocol::Stun,
        WireProtocol::Rtp,
        WireProtocol::Rtcp,
        WireProtocol::Xr,
        WireProtocol::Quic,
        WireProtocol::Tls,
    ];
    let s = as_str(v, "wire protocol")?;
    ALL.iter().copied().find(|p| p.label() == s).ok_or_else(|| err("wire protocol", v))
}

fn wire_error_to_value(e: &WireError) -> Value {
    let reason = match e.reason {
        Reason::Truncated => json!("truncated"),
        Reason::Malformed(what) => json!({ "malformed": what }),
    };
    json!({ "protocol": wire_protocol_to_value(e.protocol), "offset": e.offset, "reason": reason })
}

fn wire_error_from_value(v: &Value) -> Result<WireError, StateError> {
    let protocol = wire_protocol_from_value(get(v, "protocol")?)?;
    let offset = as_usize(get(v, "offset")?, "wire error offset")?;
    let reason = get(v, "reason")?;
    let reason = if reason.as_str() == Some("truncated") {
        Reason::Truncated
    } else {
        Reason::Malformed(intern_constraint(as_str(get(reason, "malformed")?, "malformed constraint")?))
    };
    Ok(WireError { protocol, offset, reason })
}

fn criterion_to_value(c: Criterion) -> Value {
    json!(c.index())
}

fn criterion_from_value(v: &Value) -> Result<Criterion, StateError> {
    match as_u64(v, "criterion")? {
        1 => Ok(Criterion::MessageTypeDefined),
        2 => Ok(Criterion::HeaderFieldsValid),
        3 => Ok(Criterion::AttributeTypesDefined),
        4 => Ok(Criterion::AttributeValuesValid),
        5 => Ok(Criterion::SyntaxSemanticIntegrity),
        _ => Err(err("criterion", v)),
    }
}

fn type_key_to_value(k: TypeKey) -> Value {
    match k {
        TypeKey::Stun(t) => json!({ "t": "stun", "n": t }),
        TypeKey::ChannelData => json!({ "t": "channel-data" }),
        TypeKey::Rtp(pt) => json!({ "t": "rtp", "n": pt }),
        TypeKey::Rtcp(pt) => json!({ "t": "rtcp", "n": pt }),
        TypeKey::QuicLong(t) => json!({ "t": "quic-long", "n": t }),
        TypeKey::QuicShort => json!({ "t": "quic-short" }),
    }
}

fn type_key_from_value(v: &Value) -> Result<TypeKey, StateError> {
    let n = || as_u64(get(v, "n")?, "type key number");
    match as_str(get(v, "t")?, "type key tag")? {
        "stun" => Ok(TypeKey::Stun(n()? as u16)),
        "channel-data" => Ok(TypeKey::ChannelData),
        "rtp" => Ok(TypeKey::Rtp(n()? as u8)),
        "rtcp" => Ok(TypeKey::Rtcp(n()? as u8)),
        "quic-long" => Ok(TypeKey::QuicLong(n()? as u8)),
        "quic-short" => Ok(TypeKey::QuicShort),
        _ => Err(err("type key", v)),
    }
}

fn five_tuple_to_value(t: &FiveTuple) -> Value {
    let transport = match t.transport {
        Transport::Udp => "udp",
        Transport::Tcp => "tcp",
    };
    json!({ "src": t.src.to_string(), "dst": t.dst.to_string(), "transport": transport })
}

fn five_tuple_from_value(v: &Value) -> Result<FiveTuple, StateError> {
    let sock = |key: &str| -> Result<std::net::SocketAddr, StateError> {
        as_str(get(v, key)?, "socket address")?.parse().map_err(|_| err("socket address", v))
    };
    let transport = match as_str(get(v, "transport")?, "transport")? {
        "udp" => Transport::Udp,
        "tcp" => Transport::Tcp,
        _ => return Err(err("transport", v)),
    };
    Ok(FiveTuple { src: sock("src")?, dst: sock("dst")?, transport })
}

fn violation_to_value(v: &Violation) -> Value {
    json!({
        "criterion": criterion_to_value(v.criterion),
        "detail": v.detail.clone(),
        "wire": v.wire.as_ref().map(wire_error_to_value).unwrap_or(Value::Null),
    })
}

fn violation_from_value(v: &Value) -> Result<Violation, StateError> {
    let wire = get(v, "wire")?;
    Ok(Violation {
        criterion: criterion_from_value(get(v, "criterion")?)?,
        detail: as_str(get(v, "detail")?, "violation detail")?.to_string(),
        wire: if wire.is_null() { None } else { Some(wire_error_from_value(wire)?) },
    })
}

fn message_to_value(m: &CheckedMessage) -> Value {
    json!({
        "protocol": protocol_to_value(m.protocol),
        "type_key": type_key_to_value(m.type_key),
        "ts": m.ts.as_micros(),
        "stream": five_tuple_to_value(&m.stream),
        "violation": m.violation.as_ref().map(violation_to_value).unwrap_or(Value::Null),
    })
}

fn message_from_value(v: &Value) -> Result<CheckedMessage, StateError> {
    let violation = get(v, "violation")?;
    Ok(CheckedMessage {
        protocol: protocol_from_value(get(v, "protocol")?)?,
        type_key: type_key_from_value(get(v, "type_key")?)?,
        ts: Timestamp::from_micros(as_u64(get(v, "ts")?, "timestamp")?),
        stream: five_tuple_from_value(get(v, "stream")?)?,
        violation: if violation.is_null() { None } else { Some(violation_from_value(violation)?) },
    })
}

fn stage_stats_to_value(s: &rtc_filter::StageStats) -> Value {
    json!([s.udp_streams, s.udp_datagrams, s.tcp_streams, s.tcp_segments])
}

fn stage_stats_from_value(v: &Value) -> Result<rtc_filter::StageStats, StateError> {
    let a = as_array(v, "stage stats")?;
    if a.len() != 4 {
        return Err(err("stage stats", v));
    }
    let n = |i: usize| as_usize(&a[i], "stage stat");
    Ok(rtc_filter::StageStats { udp_streams: n(0)?, udp_datagrams: n(1)?, tcp_streams: n(2)?, tcp_segments: n(3)? })
}

/// Serialize one [`CallRecord`] (used per-call by the shard checkpoint).
pub fn record_to_value(r: &CallRecord) -> Value {
    json!({
        "app": r.app.clone(),
        "network": r.network.clone(),
        "repeat": r.repeat,
        "raw_bytes": r.raw_bytes,
        "raw": stage_stats_to_value(&r.raw),
        "stage1": stage_stats_to_value(&r.stage1),
        "stage2": stage_stats_to_value(&r.stage2),
        "rtc": stage_stats_to_value(&r.rtc),
        "classes": json!([r.classes.0, r.classes.1, r.classes.2]),
        "messages": r.checked.messages.iter().map(message_to_value).collect::<Vec<_>>(),
        "fully_proprietary_datagrams": r.checked.fully_proprietary_datagrams,
        "rejections": r.rejections.iter().map(|(k, n)| (k.clone(), json!(*n))).collect::<serde_json::Map<_, _>>(),
    })
}

/// Deserialize one [`CallRecord`].
pub fn record_from_value(v: &Value) -> Result<CallRecord, StateError> {
    let classes = as_array(get(v, "classes")?, "classes")?;
    if classes.len() != 3 {
        return Err(err("classes", get(v, "classes")?));
    }
    let mut rejections = BTreeMap::new();
    for (k, n) in get(v, "rejections")?.as_object().ok_or_else(|| err("rejections", v))?.iter() {
        rejections.insert(k.clone(), as_usize(n, "rejection count")?);
    }
    let messages =
        as_array(get(v, "messages")?, "messages")?.iter().map(message_from_value).collect::<Result<Vec<_>, _>>()?;
    Ok(CallRecord {
        app: as_str(get(v, "app")?, "app")?.to_string(),
        network: as_str(get(v, "network")?, "network")?.to_string(),
        repeat: as_usize(get(v, "repeat")?, "repeat")?,
        raw_bytes: as_usize(get(v, "raw_bytes")?, "raw_bytes")?,
        raw: stage_stats_from_value(get(v, "raw")?)?,
        stage1: stage_stats_from_value(get(v, "stage1")?)?,
        stage2: stage_stats_from_value(get(v, "stage2")?)?,
        rtc: stage_stats_from_value(get(v, "rtc")?)?,
        classes: (
            as_usize(&classes[0], "class count")?,
            as_usize(&classes[1], "class count")?,
            as_usize(&classes[2], "class count")?,
        ),
        checked: CheckedCall {
            messages,
            fully_proprietary_datagrams: as_usize(get(v, "fully_proprietary_datagrams")?, "fully proprietary")?,
        },
        rejections,
    })
}

fn finding_to_value(f: &Finding) -> Value {
    json!({ "kind": finding_kind_label(f.kind), "count": f.count, "detail": f.detail.clone() })
}

fn finding_kind_label(k: FindingKind) -> &'static str {
    match k {
        FindingKind::FillerDatagrams => "filler-datagrams",
        FindingKind::DoubleRtpDatagrams => "double-rtp-datagrams",
        FindingKind::ZeroSenderSsrc => "zero-sender-ssrc",
        FindingKind::DirectionTrailer => "direction-trailer",
        FindingKind::ProprietaryKeepalives => "proprietary-keepalives",
        FindingKind::SsrcReuseAcrossCalls => "ssrc-reuse-across-calls",
    }
}

fn finding_from_value(v: &Value) -> Result<Finding, StateError> {
    const ALL: [FindingKind; 6] = [
        FindingKind::FillerDatagrams,
        FindingKind::DoubleRtpDatagrams,
        FindingKind::ZeroSenderSsrc,
        FindingKind::DirectionTrailer,
        FindingKind::ProprietaryKeepalives,
        FindingKind::SsrcReuseAcrossCalls,
    ];
    let label = as_str(get(v, "kind")?, "finding kind")?;
    let kind = ALL.iter().copied().find(|k| finding_kind_label(*k) == label).ok_or_else(|| err("finding kind", v))?;
    Ok(Finding {
        kind,
        count: as_usize(get(v, "count")?, "finding count")?,
        detail: as_str(get(v, "detail")?, "finding detail")?.to_string(),
    })
}

impl Aggregator {
    /// Serialize the full aggregation state for a shard checkpoint.
    ///
    /// The inverse is [`Aggregator::from_state_value`]; the round-trip is
    /// exact (`PartialEq` on every component), so `deserialize → merge`
    /// over any shard split reproduces the in-memory merge bit for bit.
    pub fn to_state_value(&self) -> Value {
        let calls: Vec<Value> = self.calls.iter().map(record_to_value).collect();
        let findings: serde_json::Map<String, Value> = self
            .findings
            .iter()
            .map(|(app, list)| (app.clone(), Value::Array(list.iter().map(finding_to_value).collect())))
            .collect();
        let header_profiles: serde_json::Map<String, Value> =
            self.header_profiles.iter().map(|(app, list)| (app.clone(), json!(list.as_slice()))).collect();
        // `(app, network)`-keyed map flattened to an array of cells:
        // JSON object keys are strings, tuples are not.
        let ssrc_sets: Vec<Value> = self
            .ssrc_sets
            .iter()
            .map(|((app, network), sets)| {
                let sets: Vec<Value> =
                    sets.iter().map(|s| Value::Array(s.iter().map(|n| json!(*n)).collect())).collect();
                json!({ "app": app, "network": network, "sets": sets })
            })
            .collect();
        json!({
            "calls": calls,
            "findings": findings,
            "header_profiles": header_profiles,
            "ssrc_sets": ssrc_sets,
        })
    }

    /// Rebuild an aggregator from a checkpointed state value.
    pub fn from_state_value(v: &Value) -> Result<Aggregator, StateError> {
        let calls =
            as_array(get(v, "calls")?, "calls")?.iter().map(record_from_value).collect::<Result<Vec<_>, _>>()?;
        let mut findings = BTreeMap::new();
        for (app, list) in get(v, "findings")?.as_object().ok_or_else(|| err("findings", v))?.iter() {
            let list =
                as_array(list, "finding list")?.iter().map(finding_from_value).collect::<Result<Vec<_>, _>>()?;
            findings.insert(app.clone(), list);
        }
        let mut header_profiles = BTreeMap::new();
        for (app, list) in get(v, "header_profiles")?.as_object().ok_or_else(|| err("header profiles", v))?.iter() {
            let list = as_array(list, "header profile list")?
                .iter()
                .map(|p| as_str(p, "header profile").map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?;
            header_profiles.insert(app.clone(), list);
        }
        let mut ssrc_sets: BTreeMap<(String, String), Vec<BTreeSet<u32>>> = BTreeMap::new();
        for cell in as_array(get(v, "ssrc_sets")?, "ssrc sets")? {
            let app = as_str(get(cell, "app")?, "ssrc cell app")?.to_string();
            let network = as_str(get(cell, "network")?, "ssrc cell network")?.to_string();
            let sets = as_array(get(cell, "sets")?, "ssrc set list")?
                .iter()
                .map(|s| {
                    as_array(s, "ssrc set")?.iter().map(|n| as_u64(n, "ssrc").map(|n| n as u32)).collect::<Result<
                        BTreeSet<u32>,
                        _,
                    >>(
                    )
                })
                .collect::<Result<Vec<_>, _>>()?;
            ssrc_sets.insert((app, network), sets);
        }
        Ok(Aggregator { calls, findings, header_profiles, ssrc_sets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aggregator() -> Aggregator {
        let mut agg = Aggregator::new();
        let wire = WireError::malformed(WireProtocol::Stun, 2, "length alignment");
        let msg = CheckedMessage {
            protocol: Protocol::StunTurn,
            type_key: TypeKey::Stun(0x0001),
            ts: Timestamp::from_micros(1_234_567),
            stream: FiveTuple::udp("10.0.0.1:3478".parse().unwrap(), "[2001:db8::1]:443".parse().unwrap()),
            violation: Some(Violation {
                criterion: Criterion::AttributeValuesValid,
                detail: "bad length".into(),
                wire: Some(wire),
            }),
        };
        let ok = CheckedMessage {
            protocol: Protocol::Rtp,
            type_key: TypeKey::Rtp(96),
            ts: Timestamp::ZERO,
            stream: FiveTuple::tcp("192.168.1.2:5004".parse().unwrap(), "1.2.3.4:5004".parse().unwrap()),
            violation: None,
        };
        let record = CallRecord {
            app: "Zoom".into(),
            network: "cellular".into(),
            repeat: 2,
            raw_bytes: 4321,
            raw: rtc_filter::StageStats { udp_streams: 9, udp_datagrams: 100, tcp_streams: 3, tcp_segments: 40 },
            stage1: Default::default(),
            stage2: rtc_filter::StageStats { udp_streams: 1, udp_datagrams: 7, tcp_streams: 0, tcp_segments: 0 },
            rtc: rtc_filter::StageStats { udp_streams: 2, udp_datagrams: 80, tcp_streams: 0, tcp_segments: 0 },
            classes: (50, 20, 10),
            checked: CheckedCall { messages: vec![msg, ok], fully_proprietary_datagrams: 10 },
            rejections: BTreeMap::from([("stun: truncated".to_string(), 4)]),
        };
        let finding = Finding { kind: FindingKind::DoubleRtpDatagrams, count: 7, detail: "7 doubles".into() };
        agg.absorb_call(record, &[finding], &["profile A".into()], [0xAA, 0xBB].into_iter().collect());
        agg
    }

    #[test]
    fn state_round_trips_exactly() {
        let agg = sample_aggregator();
        let v = agg.to_state_value();
        // Through a string too: the checkpoint file is serialized text.
        let text = serde_json::to_string(&v).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let back = Aggregator::from_state_value(&parsed).unwrap();
        assert_eq!(back.calls, agg.calls);
        assert_eq!(back.findings, agg.findings);
        assert_eq!(back.header_profiles, agg.header_profiles);
        assert_eq!(back.ssrc_sets, agg.ssrc_sets);
    }

    #[test]
    fn deserialized_merge_equals_in_memory_merge() {
        let agg = sample_aggregator();
        let mut direct = Aggregator::new();
        direct.merge(agg.clone());
        let mut via_state = Aggregator::new();
        via_state.merge(Aggregator::from_state_value(&agg.to_state_value()).unwrap());
        assert_eq!(direct.snapshot(), via_state.snapshot());
        let a = direct.finish();
        let b = via_state.finish();
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.header_profiles, b.header_profiles);
    }

    #[test]
    fn malformed_fields_error_with_context() {
        let agg = sample_aggregator();
        let mut v = agg.to_state_value();
        v.as_object_mut().unwrap().remove("findings");
        let e = Aggregator::from_state_value(&v).unwrap_err();
        assert!(e.contains("findings"), "error names the missing field: {e}");

        let bad: Value = serde_json::from_str(r#"{"calls": [{"app": 3}]}"#).unwrap();
        assert!(Aggregator::from_state_value(&bad).is_err());
    }
}
