//! # rtc-report
//!
//! Aggregation of per-call analysis results into the paper's two
//! compliance metrics and its published tables and figures:
//!
//! * **volume-based metric** (§5.1): compliant messages / all messages,
//! * **message-type-based metric** (§5.1): a message *type* is compliant
//!   only if **every** observed instance conforms; types used by several
//!   applications count once per application,
//! * renderers for **Tables 1–6** and **Figures 3–5** as aligned text,
//!   CSV, and JSON.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod json;
pub mod render;
pub mod state;
pub mod tables;

use rtc_compliance::{CheckedCall, CheckedMessage, TypeKey};
use rtc_dpi::{DatagramClass, Protocol};
use std::collections::BTreeMap;

/// Everything the report layer needs about one analyzed call.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRecord {
    /// Application display name (e.g. "Zoom").
    pub app: String,
    /// Network configuration label.
    pub network: String,
    /// Repeat index.
    pub repeat: usize,
    /// Raw capture size in bytes (link-layer).
    pub raw_bytes: usize,
    /// Pre-filtering traffic stats.
    pub raw: rtc_filter::StageStats,
    /// Stage-1 removals.
    pub stage1: rtc_filter::StageStats,
    /// Stage-2 removals.
    pub stage2: rtc_filter::StageStats,
    /// Kept RTC traffic stats.
    pub rtc: rtc_filter::StageStats,
    /// Figure-3 datagram class counts `(standard, prop-header, fully-prop)`.
    pub classes: (usize, usize, usize),
    /// All judged messages.
    pub checked: CheckedCall,
    /// Rejection-taxonomy counts for the call's fully proprietary
    /// datagrams (`rtc_dpi::CallDissection::rejections`).
    pub rejections: BTreeMap<String, usize>,
}

impl CallRecord {
    /// Summarize the datagram classes of a dissection.
    pub fn class_counts(dissection: &rtc_dpi::CallDissection) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &dissection.datagrams {
            match d.class {
                DatagramClass::Standard => c.0 += 1,
                DatagramClass::ProprietaryHeader => c.1 += 1,
                DatagramClass::FullyProprietary => c.2 += 1,
            }
        }
        c
    }
}

/// The full study: every analyzed call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StudyData {
    /// All call records.
    pub calls: Vec<CallRecord>,
}

impl StudyData {
    /// Application names in canonical (sorted) order. Sorting here — rather
    /// than returning first-seen order — makes every rendered artifact
    /// independent of the order calls were analyzed in, so the batch driver
    /// (experiment-matrix order) and the streaming driver (directory-sweep
    /// order) produce byte-identical reports.
    pub fn apps(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.calls {
            if !out.contains(&c.app) {
                out.push(c.app.clone());
            }
        }
        out.sort();
        out
    }

    /// All judged messages of one application.
    pub fn messages_of<'a>(&'a self, app: &'a str) -> impl Iterator<Item = &'a CheckedMessage> + 'a {
        self.calls.iter().filter(move |c| c.app == app).flat_map(|c| c.checked.messages.iter())
    }

    /// Volume-based compliance for one application (§5.1.1).
    pub fn app_volume_compliance(&self, app: &str) -> f64 {
        let mut total = 0usize;
        let mut ok = 0usize;
        for m in self.messages_of(app) {
            total += 1;
            ok += m.is_compliant() as usize;
        }
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    }

    /// Volume-based compliance for one protocol across all applications.
    pub fn protocol_volume_compliance(&self, protocol: Protocol) -> f64 {
        let mut total = 0usize;
        let mut ok = 0usize;
        for c in &self.calls {
            for m in &c.checked.messages {
                if m.protocol == protocol {
                    total += 1;
                    ok += m.is_compliant() as usize;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    }

    /// The message-type compliance map for one application: for each
    /// observed `(protocol, type)` pair, whether **all** instances were
    /// compliant (§5.1.2).
    pub fn app_type_compliance(&self, app: &str) -> BTreeMap<(Protocol, TypeKey), bool> {
        let mut map: BTreeMap<(Protocol, TypeKey), bool> = BTreeMap::new();
        for m in self.messages_of(app) {
            let e = map.entry((m.protocol, m.type_key)).or_insert(true);
            *e &= m.is_compliant();
        }
        map
    }

    /// `(compliant types, total types)` per protocol for one application
    /// (one row of Table 3).
    pub fn app_type_ratio(&self, app: &str, protocol: Protocol) -> (usize, usize) {
        let map = self.app_type_compliance(app);
        let mut total = 0;
        let mut ok = 0;
        for ((p, _), compliant) in &map {
            if *p == protocol {
                total += 1;
                ok += *compliant as usize;
            }
        }
        (ok, total)
    }

    /// `(compliant, total)` for all protocols of one application.
    pub fn app_type_ratio_all(&self, app: &str) -> (usize, usize) {
        let map = self.app_type_compliance(app);
        let total = map.len();
        let ok = map.values().filter(|c| **c).count();
        (ok, total)
    }

    /// `(compliant, total)` for one protocol across applications, counting
    /// a type once per application that uses it (the paper's "counted
    /// multiple times" rule).
    pub fn protocol_type_ratio(&self, protocol: Protocol) -> (usize, usize) {
        let mut total = 0;
        let mut ok = 0;
        for app in self.apps() {
            let (o, t) = self.app_type_ratio(&app, protocol);
            ok += o;
            total += t;
        }
        (ok, total)
    }

    /// Message-type-based compliance ratio for one application.
    pub fn app_type_compliance_ratio(&self, app: &str) -> f64 {
        let (ok, total) = self.app_type_ratio_all(app);
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    }

    /// Sorted compliant / non-compliant type lists for one application and
    /// protocol (the rows of Tables 4, 5 and 6).
    pub fn app_type_lists(&self, app: &str, protocol: Protocol) -> (Vec<TypeKey>, Vec<TypeKey>) {
        let map = self.app_type_compliance(app);
        let mut ok = Vec::new();
        let mut bad = Vec::new();
        for ((p, key), compliant) in map {
            if p == protocol {
                if compliant {
                    ok.push(key);
                } else {
                    bad.push(key);
                }
            }
        }
        (ok, bad)
    }

    /// Message distribution for one application: share per protocol plus
    /// the fully proprietary share (Table 2's row). The unit is a message,
    /// with each fully proprietary datagram counting as one unit.
    pub fn app_message_distribution(&self, app: &str) -> (BTreeMap<Protocol, f64>, f64) {
        let mut counts: BTreeMap<Protocol, usize> = BTreeMap::new();
        let mut fully = 0usize;
        for c in self.calls.iter().filter(|c| c.app == app) {
            fully += c.checked.fully_proprietary_datagrams;
            for m in &c.checked.messages {
                *counts.entry(m.protocol).or_default() += 1;
            }
        }
        let total = counts.values().sum::<usize>() + fully;
        if total == 0 {
            return (BTreeMap::new(), 0.0);
        }
        let shares = counts.into_iter().map(|(p, n)| (p, n as f64 / total as f64)).collect();
        (shares, fully as f64 / total as f64)
    }

    /// Merged rejection taxonomy across all calls of one application:
    /// taxonomy key → fully-proprietary datagram count. Explains *why* the
    /// unrecognized traffic failed the wire grammars (or validation).
    pub fn app_rejection_taxonomy(&self, app: &str) -> BTreeMap<String, usize> {
        let mut out: BTreeMap<String, usize> = BTreeMap::new();
        for c in self.calls.iter().filter(|c| c.app == app) {
            for (key, n) in &c.rejections {
                *out.entry(key.clone()).or_default() += n;
            }
        }
        out
    }

    /// Sort the call records into canonical `(app, network, repeat)` order.
    ///
    /// Every rendering accessor above is already order-invariant, but the
    /// raw `calls` vector preserves absorption order — which depends on
    /// call scheduling when shards or threads race. Canonicalizing makes
    /// whole-`StudyData` comparisons (and JSON exports of the raw call
    /// list) byte-deterministic across drivers.
    pub fn sort_canonical(&mut self) {
        self.calls.sort_by(|a, b| (&a.app, &a.network, a.repeat).cmp(&(&b.app, &b.network, b.repeat)));
    }

    /// Figure-3 class shares for one application.
    pub fn app_class_shares(&self, app: &str) -> (f64, f64, f64) {
        let mut std_c = 0usize;
        let mut prop = 0usize;
        let mut fully = 0usize;
        for c in self.calls.iter().filter(|c| c.app == app) {
            std_c += c.classes.0;
            prop += c.classes.1;
            fully += c.classes.2;
        }
        let total = (std_c + prop + fully).max(1) as f64;
        (std_c as f64 / total, prop as f64 / total, fully as f64 / total)
    }
}

/// The cross-call study state the [`Aggregator`] folds to when it
/// finishes: everything the study report needs beyond the raw data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AggregateReport {
    /// All call records, in absorption order.
    pub data: StudyData,
    /// Behavioral findings per application, deduplicated by kind.
    pub findings: BTreeMap<String, Vec<rtc_compliance::findings::Finding>>,
    /// Proprietary-header profile summaries per application (at most a few
    /// representative streams each).
    pub header_profiles: BTreeMap<String, Vec<String>>,
}

/// Incremental study aggregation: folds [`CallRecord`]s (plus each call's
/// findings, header-profile summaries, and SSRC inventory) as calls
/// complete, so a streaming driver never retains per-call dissections.
///
/// The batch driver produces the identical result by absorbing every call
/// in input order and calling [`Aggregator::finish`] once — cross-call
/// analyses (SSRC reuse per `(app, network)` cell) run at finish time over
/// the compact SSRC inventories.
#[derive(Debug, Clone, Default)]
pub struct Aggregator {
    calls: Vec<CallRecord>,
    findings: BTreeMap<String, Vec<rtc_compliance::findings::Finding>>,
    header_profiles: BTreeMap<String, Vec<String>>,
    ssrc_sets: BTreeMap<(String, String), Vec<std::collections::BTreeSet<u32>>>,
}

/// How many header-profile summaries the report keeps per application.
pub const MAX_HEADER_PROFILES_PER_APP: usize = 3;

impl Aggregator {
    /// Fresh, empty aggregation state.
    pub fn new() -> Aggregator {
        Aggregator::default()
    }

    /// Number of calls absorbed so far.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether no call has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Fold one completed call into the study: its record, behavioral
    /// findings (deduplicated by kind per application), header-profile
    /// summaries (capped at [`MAX_HEADER_PROFILES_PER_APP`]), and SSRC
    /// inventory (retained per `(app, network)` cell for the cross-call
    /// reuse detector).
    pub fn absorb_call(
        &mut self,
        record: CallRecord,
        findings: &[rtc_compliance::findings::Finding],
        header_profiles: &[String],
        ssrcs: std::collections::BTreeSet<u32>,
    ) {
        // Keep the lexicographically-smallest summaries rather than the
        // first absorbed: "smallest N seen so far" is invariant under call
        // order, so batch and streaming drivers retain the same profiles.
        let profiles = self.header_profiles.entry(record.app.clone()).or_default();
        for p in header_profiles {
            if !profiles.contains(p) {
                profiles.push(p.clone());
            }
        }
        profiles.sort();
        profiles.truncate(MAX_HEADER_PROFILES_PER_APP);
        self.ssrc_sets.entry((record.app.clone(), record.network.clone())).or_default().push(ssrcs);
        // One representative finding per kind. The strongest instance (by
        // count, then detail text) wins rather than the first absorbed, so
        // the retained example does not depend on call scheduling.
        let entry = self.findings.entry(record.app.clone()).or_default();
        for f in findings {
            match entry.iter_mut().find(|e| e.kind == f.kind) {
                None => entry.push(f.clone()),
                Some(e) => {
                    if (f.count, &f.detail) > (e.count, &e.detail) {
                        *e = f.clone();
                    }
                }
            }
        }
        self.calls.push(record);
    }

    /// A point-in-time view of the data aggregated so far; the tables and
    /// figures can be rendered from it mid-study. Snapshots converge to
    /// [`Aggregator::finish`]'s `data` once every call is absorbed.
    pub fn snapshot(&self) -> StudyData {
        StudyData { calls: self.calls.clone() }
    }

    /// A point-in-time [`AggregateReport`] — [`Aggregator::finish`] on a
    /// clone of the current state, with the call list in canonical order.
    /// This is the live report endpoint's view: it can be taken repeatedly
    /// while absorption continues, and once every call is absorbed it is
    /// byte-identical to the sealed report (after canonical sorting).
    pub fn snapshot_report(&self) -> AggregateReport {
        let mut out = self.clone().finish();
        out.data.sort_canonical();
        out
    }

    /// Fold another aggregator's state into this one, as if `other`'s
    /// calls had been absorbed here directly.
    ///
    /// Merging is commutative and associative up to the order of the
    /// `calls` vector (see [`StudyData::sort_canonical`]): findings keep
    /// the strongest instance per kind, header profiles keep the
    /// lexicographically-smallest [`MAX_HEADER_PROFILES_PER_APP`] of the
    /// union (smallest-N is closed under union of smallest-N sides), and
    /// SSRC inventories concatenate (the reuse detector is order-
    /// invariant). This is how the sharded live service folds per-shard
    /// partial aggregations into one per-tenant report.
    pub fn merge(&mut self, other: Aggregator) {
        let Aggregator { calls, findings, header_profiles, ssrc_sets } = other;
        self.calls.extend(calls);
        for (app, list) in findings {
            let entry = self.findings.entry(app).or_default();
            for f in list {
                match entry.iter_mut().find(|e| e.kind == f.kind) {
                    None => entry.push(f),
                    Some(e) => {
                        if (f.count, &f.detail) > (e.count, &e.detail) {
                            *e = f;
                        }
                    }
                }
            }
        }
        for (app, list) in header_profiles {
            let profiles = self.header_profiles.entry(app).or_default();
            for p in list {
                if !profiles.contains(&p) {
                    profiles.push(p);
                }
            }
            profiles.sort();
            profiles.truncate(MAX_HEADER_PROFILES_PER_APP);
        }
        for (cell, sets) in ssrc_sets {
            self.ssrc_sets.entry(cell).or_default().extend(sets);
        }
    }

    /// Seal the study: run the cross-call analyses (SSRC reuse per
    /// `(app, network)` cell) and emit the aggregate report.
    pub fn finish(self) -> AggregateReport {
        let Aggregator { calls, mut findings, mut header_profiles, ssrc_sets } = self;
        for ((app, _net), sets) in &ssrc_sets {
            if let Some(f) = rtc_compliance::findings::detect_ssrc_reuse_sets(sets) {
                let entry = findings.entry(app.clone()).or_default();
                if !entry.iter().any(|e| e.kind == f.kind) {
                    entry.push(f);
                }
            }
        }
        header_profiles.retain(|_, v| !v.is_empty());
        // Canonical finding order per application (they were collected in
        // call-completion order, which the driver choice may permute).
        for list in findings.values_mut() {
            list.sort_by_key(|f| f.kind);
        }
        AggregateReport { data: StudyData { calls }, findings, header_profiles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtc_pcap::Timestamp;
    use rtc_wire::ip::FiveTuple;

    fn msg(protocol: Protocol, key: TypeKey, compliant: bool) -> CheckedMessage {
        CheckedMessage {
            protocol,
            type_key: key,
            ts: Timestamp::ZERO,
            stream: FiveTuple::udp("10.0.0.1:1".parse().unwrap(), "1.2.3.4:2".parse().unwrap()),
            violation: (!compliant)
                .then(|| rtc_compliance::Violation::new(rtc_compliance::Criterion::MessageTypeDefined, "x")),
        }
    }

    fn record(app: &str, messages: Vec<CheckedMessage>, fully: usize) -> CallRecord {
        CallRecord {
            app: app.into(),
            network: "wifi-p2p".into(),
            repeat: 0,
            raw_bytes: 1000,
            raw: Default::default(),
            stage1: Default::default(),
            stage2: Default::default(),
            rtc: Default::default(),
            classes: (10, 5, fully),
            checked: CheckedCall { messages, fully_proprietary_datagrams: fully },
            rejections: BTreeMap::from([("stun: length alignment".to_string(), fully)]),
        }
    }

    fn study() -> StudyData {
        StudyData {
            calls: vec![
                record(
                    "AppA",
                    vec![
                        msg(Protocol::Rtp, TypeKey::Rtp(96), true),
                        msg(Protocol::Rtp, TypeKey::Rtp(96), true),
                        msg(Protocol::Rtp, TypeKey::Rtp(97), false),
                        msg(Protocol::StunTurn, TypeKey::Stun(1), true),
                    ],
                    2,
                ),
                record(
                    "AppB",
                    vec![
                        msg(Protocol::Rtp, TypeKey::Rtp(96), false),
                        msg(Protocol::Rtcp, TypeKey::Rtcp(200), true),
                        msg(Protocol::Rtcp, TypeKey::Rtcp(200), false),
                    ],
                    0,
                ),
            ],
        }
    }

    #[test]
    fn volume_metric_per_app() {
        let s = study();
        assert!((s.app_volume_compliance("AppA") - 0.75).abs() < 1e-9);
        assert!((s.app_volume_compliance("AppB") - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn volume_metric_per_protocol() {
        let s = study();
        // RTP: 4 messages, 2 compliant.
        assert!((s.protocol_volume_compliance(Protocol::Rtp) - 0.5).abs() < 1e-9);
        // RTCP: 2 messages, 1 compliant.
        assert!((s.protocol_volume_compliance(Protocol::Rtcp) - 0.5).abs() < 1e-9);
        // QUIC unobserved: vacuous 1.0.
        assert!((s.protocol_volume_compliance(Protocol::Quic) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn type_metric_all_instances_rule() {
        let s = study();
        // AppA: RTP 96 fully compliant, RTP 97 not → 1/2; STUN 1/1.
        assert_eq!(s.app_type_ratio("AppA", Protocol::Rtp), (1, 2));
        assert_eq!(s.app_type_ratio("AppA", Protocol::StunTurn), (1, 1));
        assert_eq!(s.app_type_ratio_all("AppA"), (2, 3));
        // AppB: RTCP 200 has one non-compliant instance → type non-compliant.
        assert_eq!(s.app_type_ratio("AppB", Protocol::Rtcp), (0, 1));
    }

    #[test]
    fn cross_app_types_count_per_app() {
        let s = study();
        // RTP 96 compliant in AppA, non-compliant in AppB → 1/2 + 0/1... 96
        // counts once per app: AppA {96 ok, 97 bad} + AppB {96 bad} = 1/3.
        assert_eq!(s.protocol_type_ratio(Protocol::Rtp), (1, 3));
    }

    #[test]
    fn type_lists_sorted() {
        let s = study();
        let (ok, bad) = s.app_type_lists("AppA", Protocol::Rtp);
        assert_eq!(ok, vec![TypeKey::Rtp(96)]);
        assert_eq!(bad, vec![TypeKey::Rtp(97)]);
    }

    #[test]
    fn distribution_includes_fully_proprietary() {
        let s = study();
        let (shares, fully) = s.app_message_distribution("AppA");
        // 4 messages + 2 fully proprietary = 6 units.
        assert!((fully - 2.0 / 6.0).abs() < 1e-9);
        assert!((shares[&Protocol::Rtp] - 3.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn rejection_taxonomy_merges_across_calls() {
        let s = study();
        let tax = s.app_rejection_taxonomy("AppA");
        assert_eq!(tax.get("stun: length alignment"), Some(&2));
        assert!(s.app_rejection_taxonomy("AppB").get("stun: length alignment").is_none_or(|n| *n == 0));
    }

    #[test]
    fn aggregator_folds_incrementally() {
        use rtc_compliance::findings::{Finding, FindingKind};
        let s = study();
        let f = Finding { kind: FindingKind::DoubleRtpDatagrams, count: 3, detail: "3 doubles".into() };
        let dup = Finding { kind: FindingKind::DoubleRtpDatagrams, count: 9, detail: "9 doubles".into() };
        let mut agg = Aggregator::new();
        assert!(agg.is_empty());
        let reused: std::collections::BTreeSet<u32> = [0xAA, 0xBB].into_iter().collect();
        for (i, call) in s.calls.iter().enumerate() {
            // Same non-empty SSRC set on every call of the (app, network)
            // cell — but each app has one call here, so no reuse fires.
            agg.absorb_call(call.clone(), &[f.clone(), dup.clone()], &["hdr profile".into()], reused.clone());
            assert_eq!(agg.len(), i + 1);
            assert_eq!(agg.snapshot().calls, s.calls[..=i]);
        }
        // A second AppA call with the identical SSRC inventory triggers the
        // cross-call reuse detector for AppA only.
        agg.absorb_call(s.calls[0].clone(), &[], &[], reused.clone());
        let out = agg.finish();
        assert_eq!(out.data.calls.len(), 3);
        let appa = &out.findings["AppA"];
        assert_eq!(appa.iter().filter(|f| f.kind == FindingKind::DoubleRtpDatagrams).count(), 1, "dedup by kind");
        let double = appa.iter().find(|f| f.kind == FindingKind::DoubleRtpDatagrams).unwrap();
        assert_eq!(double.detail, "9 doubles", "the strongest instance wins, regardless of absorb order");
        assert!(appa.iter().any(|f| f.kind == FindingKind::SsrcReuseAcrossCalls));
        assert!(!out.findings["AppB"].iter().any(|f| f.kind == FindingKind::SsrcReuseAcrossCalls));
        assert_eq!(out.header_profiles["AppA"], vec!["hdr profile".to_string()]);
    }

    #[test]
    fn merge_equals_sequential_absorb() {
        use rtc_compliance::findings::{Finding, FindingKind};
        let s = study();
        let weak = Finding { kind: FindingKind::DoubleRtpDatagrams, count: 3, detail: "3 doubles".into() };
        let strong = Finding { kind: FindingKind::DoubleRtpDatagrams, count: 9, detail: "9 doubles".into() };
        let ssrcs: std::collections::BTreeSet<u32> = [0xAA, 0xBB].into_iter().collect();

        // Sequential: all three calls through one aggregator.
        let mut seq = Aggregator::new();
        seq.absorb_call(s.calls[0].clone(), std::slice::from_ref(&weak), &["p2".into()], ssrcs.clone());
        seq.absorb_call(s.calls[1].clone(), std::slice::from_ref(&strong), &["p1".into()], ssrcs.clone());
        seq.absorb_call(s.calls[0].clone(), &[], &[], ssrcs.clone());

        // Sharded: calls split across two aggregators, merged in the
        // opposite order.
        let mut shard_a = Aggregator::new();
        shard_a.absorb_call(s.calls[0].clone(), std::slice::from_ref(&weak), &["p2".into()], ssrcs.clone());
        shard_a.absorb_call(s.calls[0].clone(), &[], &[], ssrcs.clone());
        let mut shard_b = Aggregator::new();
        shard_b.absorb_call(s.calls[1].clone(), std::slice::from_ref(&strong), &["p1".into()], ssrcs.clone());
        let mut merged = Aggregator::new();
        merged.merge(shard_b);
        merged.merge(shard_a);
        assert_eq!(merged.len(), seq.len());

        let mut a = seq.finish();
        let mut b = merged.finish();
        a.data.sort_canonical();
        b.data.sort_canonical();
        assert_eq!(a.data, b.data);
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.header_profiles, b.header_profiles);
        // The cross-call SSRC reuse detector sees the same inventory either way.
        assert!(a.findings["AppA"].iter().any(|f| f.kind == FindingKind::SsrcReuseAcrossCalls));
    }

    #[test]
    fn snapshot_report_converges_to_finish() {
        let s = study();
        let ssrcs: std::collections::BTreeSet<u32> = [1].into_iter().collect();
        let mut agg = Aggregator::new();
        agg.absorb_call(s.calls[1].clone(), &[], &["h".into()], ssrcs.clone());
        // Mid-study snapshot renders without disturbing state.
        let mid = agg.snapshot_report();
        assert_eq!(mid.data.calls.len(), 1);
        assert_eq!(agg.len(), 1);
        agg.absorb_call(s.calls[0].clone(), &[], &[], ssrcs);
        let snap = agg.snapshot_report();
        let mut fin = agg.finish();
        fin.data.sort_canonical();
        assert_eq!(snap.data, fin.data);
        assert_eq!(snap.findings, fin.findings);
        assert_eq!(snap.header_profiles, fin.header_profiles);
        // Canonical order: AppA sorts before AppB despite absorb order.
        assert_eq!(snap.data.calls[0].app, "AppA");
    }

    #[test]
    fn class_shares() {
        let s = study();
        let (std_s, prop, fully) = s.app_class_shares("AppA");
        assert!((std_s - 10.0 / 17.0).abs() < 1e-9);
        assert!((prop - 5.0 / 17.0).abs() < 1e-9);
        assert!((fully - 2.0 / 17.0).abs() < 1e-9);
    }
}
