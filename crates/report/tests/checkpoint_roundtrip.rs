//! Property tests of the checkpoint state encoding (`rtc_report::state`):
//! for *any* aggregator contents and *any* shard split, serializing each
//! shard's partial aggregation to checkpoint JSON, deserializing it back,
//! and merging equals the purely in-memory merge — and a resumed partial
//! (checkpoint round-trip mid-stream) plus the remainder equals the
//! unsplit run.

use proptest::prelude::*;
use rtc_compliance::findings::{Finding, FindingKind};
use rtc_compliance::{CheckedCall, CheckedMessage, Criterion, TypeKey, Violation};
use rtc_dpi::Protocol;
use rtc_pcap::Timestamp;
use rtc_report::{Aggregator, CallRecord, StudyData};
use rtc_wire::ip::FiveTuple;
use rtc_wire::{WireError, WireProtocol};
use std::collections::{BTreeMap, BTreeSet};

const APPS: [&str; 4] = ["Zoom", "Discord", "FaceTime", "Messenger"];
const NETWORKS: [&str; 3] = ["wifi-p2p", "cellular", "wifi-sfu"];
const CONSTRAINTS: [&str; 3] = ["length alignment", "bad version", "short header"];
const DETAILS: [&str; 4] = ["", "unknown attribute", "padding bit set", "reserved value"];

fn arb_type_key() -> impl Strategy<Value = TypeKey> {
    (0usize..6, any::<u16>()).prop_map(|(k, n)| match k {
        0 => TypeKey::Stun(n),
        1 => TypeKey::ChannelData,
        2 => TypeKey::Rtp(n as u8),
        3 => TypeKey::Rtcp(n as u8),
        4 => TypeKey::QuicLong((n % 4) as u8),
        _ => TypeKey::QuicShort,
    })
}

fn arb_wire_error() -> impl Strategy<Value = WireError> {
    (0usize..3, 0usize..64, 0usize..=CONSTRAINTS.len()).prop_map(|(p, offset, what)| {
        let protocol = [WireProtocol::Stun, WireProtocol::Rtp, WireProtocol::Quic][p];
        match what.checked_sub(1) {
            None => WireError::truncated(protocol, offset),
            Some(i) => WireError::malformed(protocol, offset, CONSTRAINTS[i]),
        }
    })
}

fn arb_violation() -> impl Strategy<Value = Option<Violation>> {
    (any::<bool>(), 0usize..5, 0usize..DETAILS.len(), any::<bool>(), arb_wire_error()).prop_map(
        |(present, criterion, detail, with_wire, wire)| {
            present.then(|| Violation {
                criterion: [
                    Criterion::MessageTypeDefined,
                    Criterion::HeaderFieldsValid,
                    Criterion::AttributeTypesDefined,
                    Criterion::AttributeValuesValid,
                    Criterion::SyntaxSemanticIntegrity,
                ][criterion],
                detail: DETAILS[detail].to_string(),
                wire: with_wire.then_some(wire),
            })
        },
    )
}

fn arb_message() -> impl Strategy<Value = CheckedMessage> {
    (0usize..4, arb_type_key(), 0u64..10_000_000, any::<[u8; 6]>(), arb_violation()).prop_map(
        |(protocol, type_key, micros, addr, violation)| CheckedMessage {
            protocol: [Protocol::StunTurn, Protocol::Rtp, Protocol::Rtcp, Protocol::Quic][protocol],
            type_key,
            ts: Timestamp::from_micros(micros),
            stream: FiveTuple::udp(
                format!("10.0.{}.{}:{}", addr[0], addr[1], 1024 + addr[2] as u16).parse().unwrap(),
                format!("172.16.{}.{}:{}", addr[3], addr[4], 1024 + addr[5] as u16).parse().unwrap(),
            ),
            violation,
        },
    )
}

fn arb_finding() -> impl Strategy<Value = Finding> {
    (0usize..5, 1usize..1000, 0usize..DETAILS.len()).prop_map(|(kind, count, detail)| Finding {
        kind: [
            FindingKind::FillerDatagrams,
            FindingKind::DoubleRtpDatagrams,
            FindingKind::ZeroSenderSsrc,
            FindingKind::DirectionTrailer,
            FindingKind::ProprietaryKeepalives,
        ][kind],
        count,
        detail: DETAILS[detail].to_string(),
    })
}

/// Everything `Aggregator::absorb_call` takes for one call. The repeat
/// index is assigned at absorption time so every generated call has a
/// unique `(app, network, repeat)` coordinate, as real campaigns do.
#[derive(Debug, Clone)]
struct GenCall {
    app: &'static str,
    network: &'static str,
    messages: Vec<CheckedMessage>,
    fully: usize,
    findings: Vec<Finding>,
    profiles: Vec<String>,
    ssrcs: BTreeSet<u32>,
}

fn arb_call() -> impl Strategy<Value = GenCall> {
    (
        0usize..APPS.len(),
        0usize..NETWORKS.len(),
        collection::vec(arb_message(), 0..6),
        0usize..40,
        collection::vec(arb_finding(), 0..3),
        collection::vec((0usize..26, 1usize..9), 0..3),
        collection::vec(any::<u32>(), 0..4),
    )
        .prop_map(|(app, network, messages, fully, findings, profiles, ssrcs)| GenCall {
            app: APPS[app],
            network: NETWORKS[network],
            messages,
            fully,
            findings,
            profiles: profiles
                .into_iter()
                .map(|(letter, len)| {
                    let c = (b'a' + letter as u8) as char;
                    std::iter::repeat_n(c, len).collect()
                })
                .collect(),
            ssrcs: ssrcs.into_iter().collect(),
        })
}

fn absorb(agg: &mut Aggregator, call: &GenCall, repeat: usize) {
    let record = CallRecord {
        app: call.app.to_string(),
        network: call.network.to_string(),
        repeat,
        raw_bytes: 1000 + repeat,
        raw: Default::default(),
        stage1: Default::default(),
        stage2: Default::default(),
        rtc: Default::default(),
        classes: (call.messages.len(), 2, call.fully),
        checked: CheckedCall { messages: call.messages.clone(), fully_proprietary_datagrams: call.fully },
        rejections: BTreeMap::from([("stun: truncated".to_string(), call.fully)]),
    };
    agg.absorb_call(record, &call.findings, &call.profiles, call.ssrcs.clone());
}

/// Serialize → string → parse → deserialize, the exact path a checkpoint
/// file takes through disk.
fn through_checkpoint(agg: &Aggregator) -> Aggregator {
    let text = serde_json::to_string(&agg.to_state_value()).expect("serialize state");
    let v: serde_json::Value = serde_json::from_str(&text).expect("parse state");
    Aggregator::from_state_value(&v).expect("deserialize state")
}

type Canonical = (StudyData, BTreeMap<String, Vec<Finding>>, BTreeMap<String, Vec<String>>);

fn canonical(agg: Aggregator) -> Canonical {
    let report = agg.finish();
    let mut data = report.data;
    data.sort_canonical();
    (data, report.findings, report.header_profiles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Checkpoint serialize → deserialize → merge over a random shard
    /// split equals the in-memory merge of the same shards — snapshot for
    /// snapshot and finished report for finished report.
    #[test]
    fn checkpointed_shard_merge_equals_in_memory(
        calls in collection::vec(arb_call(), 1..12),
        shards in 1usize..5,
    ) {
        let mut partials: Vec<Aggregator> = (0..shards).map(|_| Aggregator::new()).collect();
        for (i, call) in calls.iter().enumerate() {
            absorb(&mut partials[i % shards], call, i);
        }

        let mut in_memory = Aggregator::new();
        for p in &partials {
            in_memory.merge(p.clone());
        }
        let mut via_checkpoint = Aggregator::new();
        for p in &partials {
            via_checkpoint.merge(through_checkpoint(p));
        }

        prop_assert_eq!(via_checkpoint.snapshot(), in_memory.snapshot());
        prop_assert_eq!(canonical(via_checkpoint), canonical(in_memory));
    }

    /// A shard that checkpoints mid-stream, resumes from the deserialized
    /// state, and absorbs the remainder ends up exactly where the
    /// never-interrupted shard does.
    #[test]
    fn resumed_partial_plus_remainder_equals_unsplit(
        calls in collection::vec(arb_call(), 2..12),
        cut_raw in any::<u64>(),
    ) {
        let cut = 1 + (cut_raw as usize) % (calls.len() - 1);

        let mut unsplit = Aggregator::new();
        for (i, call) in calls.iter().enumerate() {
            absorb(&mut unsplit, call, i);
        }

        let mut partial = Aggregator::new();
        for (i, call) in calls[..cut].iter().enumerate() {
            absorb(&mut partial, call, i);
        }
        let mut resumed = through_checkpoint(&partial);
        for (i, call) in calls[cut..].iter().enumerate() {
            absorb(&mut resumed, call, cut + i);
        }

        prop_assert_eq!(resumed.snapshot(), unsplit.snapshot());
        prop_assert_eq!(canonical(resumed), canonical(unsplit));
    }
}
