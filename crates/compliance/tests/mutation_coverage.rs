//! Mutation coverage for the five-criterion checker: for every protocol ×
//! criterion cell that *can* fire, a vector that violates exactly that
//! criterion (asserting the precise `Violation`), together with a repaired
//! variant that passes cleanly — proving the vector isolates the one rule
//! it targets and the checker stops at the first failing criterion.
//!
//! Cells that cannot fire are structural, not omissions, and are asserted
//! as such at the bottom:
//!
//! * **RTP / criterion 1** — every 7-bit payload type is representable and
//!   the paper counts all of them as defined (Table 5).
//! * **RTP / criteria 2 & 5** — the checked parse guarantees the header
//!   invariants (criterion 2 fires only for unparseable bytes) and RTP has
//!   no trailer/ordering semantics for criterion 5.
//! * **ChannelData / criteria 1, 3, 4, 5** — the frame is one type with no
//!   attributes; only the header rules (criterion 2) exist.
//! * **QUIC / criteria 1, 3, 4, 5** — payloads are encrypted; only the
//!   header invariants (criterion 2) are observable.

use bytes::Bytes;
use rtc_compliance::context::CallContext;
use rtc_compliance::{check_message, Criterion, TypeKey, Violation};
use rtc_dpi::{CandidateKind, CidBuf, DatagramClass, DatagramDissection, DpiMessage, Protocol};
use rtc_pcap::Timestamp;
use rtc_wire::ip::FiveTuple;
use rtc_wire::quic::{LongHeader, LongType, ShortHeader, VERSION_1};
use rtc_wire::rtcp::{self, Sdes, SdesChunk, SenderReport};
use rtc_wire::rtp::{PacketBuilder, ONE_BYTE_PROFILE};
use rtc_wire::stun::{attr, msg_type, ChannelData, MessageBuilder};

fn stream() -> FiveTuple {
    FiveTuple::udp("10.0.0.1:1000".parse().unwrap(), "1.2.3.4:2000".parse().unwrap())
}

fn judge(
    protocol: Protocol,
    kind: CandidateKind,
    data: Vec<u8>,
    trailing: Vec<u8>,
    ctx: &CallContext,
) -> (TypeKey, Option<Violation>) {
    let msg = DpiMessage { protocol, kind, offset: 0, data: Bytes::from(data), nested: false };
    let dgram = DatagramDissection {
        ts: Timestamp::ZERO,
        stream: stream(),
        payload_len: msg.data.len(),
        messages: vec![],
        prefix: Bytes::new(),
        trailing: Bytes::from(trailing),
        class: DatagramClass::Standard,
        prop_header_len: 0,
    };
    let checked = check_message(&dgram, &msg, ctx);
    (checked.type_key, checked.violation)
}

fn judge_stun(data: Vec<u8>, ctx: &CallContext) -> (TypeKey, Option<Violation>) {
    judge(Protocol::StunTurn, CandidateKind::Stun { message_type: 0, modern: true }, data, vec![], ctx)
}

fn judge_rtp(data: Vec<u8>) -> (TypeKey, Option<Violation>) {
    judge(
        Protocol::Rtp,
        CandidateKind::Rtp { ssrc: 1, payload_type: 96, seq: 0 },
        data,
        vec![],
        &CallContext::default(),
    )
}

fn judge_rtcp(data: Vec<u8>, trailing: Vec<u8>) -> (TypeKey, Option<Violation>) {
    let kind = CandidateKind::Rtcp { packet_type: data[1], count: data[0] & 0x1F };
    judge(Protocol::Rtcp, kind, data, trailing, &CallContext::default())
}

fn assert_fails(cell: &str, got: Option<Violation>, want: Criterion) {
    let v = got.unwrap_or_else(|| panic!("{cell}: expected a violation of criterion {}", want.index()));
    assert_eq!(v.criterion, want, "{cell}: wrong criterion ({}): {}", v.criterion.index(), v.detail);
}

fn assert_passes(cell: &str, got: Option<Violation>) {
    assert!(got.is_none(), "{cell}: repaired vector still violates: {:?}", got.unwrap());
}

fn sample_sr() -> Vec<u8> {
    SenderReport { ssrc: 7, ntp_timestamp: 1, rtp_timestamp: 2, packet_count: 3, octet_count: 4, reports: vec![] }
        .build()
}

// ---------------------------------------------------------------- STUN ----

#[test]
fn stun_criterion_1_undefined_message_type() {
    let ctx = CallContext::default();
    let (key, v) = judge_stun(MessageBuilder::new(0x0FFD, [9; 12]).build(), &ctx);
    assert_eq!(key, TypeKey::Stun(0x0FFD));
    assert_fails("stun/c1", v, Criterion::MessageTypeDefined);
    // Repair: the same shape with a defined type.
    let (_, v) = judge_stun(MessageBuilder::new(msg_type::BINDING_REQUEST, [9; 12]).build(), &ctx);
    assert_passes("stun/c1 repaired", v);
}

#[test]
fn stun_criterion_2_sequential_transaction_ids() {
    let txid = [7u8; 12];
    let bytes = MessageBuilder::new(msg_type::BINDING_REQUEST, txid).build();
    let mut ctx = CallContext::default();
    ctx.sequential_txids.insert((stream(), txid));
    let (_, v) = judge_stun(bytes.clone(), &ctx);
    assert_fails("stun/c2", v, Criterion::HeaderFieldsValid);
    // Repair: the identical message outside a sequential-ID run.
    let (_, v) = judge_stun(bytes, &CallContext::default());
    assert_passes("stun/c2 repaired", v);
}

#[test]
fn stun_criterion_3_undefined_attribute_type() {
    let ctx = CallContext::default();
    let (_, v) = judge_stun(
        MessageBuilder::new(msg_type::BINDING_REQUEST, [3; 12]).attribute(0x3FFB, vec![1, 2, 3, 4]).build(),
        &ctx,
    );
    assert_fails("stun/c3", v, Criterion::AttributeTypesDefined);
    // Repair: same value bytes under a defined attribute type.
    let (_, v) = judge_stun(
        MessageBuilder::new(msg_type::BINDING_REQUEST, [3; 12]).attribute(attr::PRIORITY, vec![1, 2, 3, 4]).build(),
        &ctx,
    );
    assert_passes("stun/c3 repaired", v);
}

#[test]
fn stun_criterion_4_fingerprint_crc_mismatch() {
    let ctx = CallContext::default();
    let good = MessageBuilder::new(msg_type::BINDING_REQUEST, [4; 12])
        .attribute(attr::PRIORITY, vec![0, 0, 1, 0])
        .build_with_fingerprint();
    let mut bad = good.clone();
    let n = bad.len();
    bad[n - 1] ^= 0x01; // single-bit mutation of the CRC
    let (_, v) = judge_stun(bad, &ctx);
    assert_fails("stun/c4", v, Criterion::AttributeValuesValid);
    let (_, v) = judge_stun(good, &ctx);
    assert_passes("stun/c4 repaired", v);
}

#[test]
fn stun_criterion_5_missing_required_attribute() {
    let ctx = CallContext::default();
    let (_, v) = judge_stun(MessageBuilder::new(msg_type::ALLOCATE_REQUEST, [5; 12]).build(), &ctx);
    assert_fails("stun/c5", v, Criterion::SyntaxSemanticIntegrity);
    // Repair: supply the REQUESTED-TRANSPORT (UDP) the type requires.
    let (_, v) = judge_stun(
        MessageBuilder::new(msg_type::ALLOCATE_REQUEST, [5; 12])
            .attribute(attr::REQUESTED_TRANSPORT, vec![17, 0, 0, 0])
            .build(),
        &ctx,
    );
    assert_passes("stun/c5 repaired", v);
}

// --------------------------------------------------------- ChannelData ----

#[test]
fn channeldata_criterion_2_channel_number_out_of_range() {
    let ctx = CallContext::default();
    let judge_cd = |channel: u16, trailing: Vec<u8>| {
        judge(
            Protocol::StunTurn,
            CandidateKind::ChannelData { channel },
            ChannelData::build(channel, b"abcd"),
            trailing,
            &ctx,
        )
    };
    let (key, v) = judge_cd(0x6000, vec![]);
    assert_eq!(key, TypeKey::ChannelData);
    assert_fails("channeldata/c2 range", v, Criterion::HeaderFieldsValid);
    // A second header rule in the same cell: unexplained bytes after the
    // declared length (no padding over UDP, RFC 8656 §12.5).
    let (_, v) = judge_cd(0x4001, vec![0xAA; 2]);
    assert_fails("channeldata/c2 length", v, Criterion::HeaderFieldsValid);
    let (_, v) = judge_cd(0x4001, vec![]);
    assert_passes("channeldata/c2 repaired", v);
}

// ----------------------------------------------------------------- RTP ----

#[test]
fn rtp_criterion_2_unparseable_header() {
    // The DPI only emits parseable candidates; the checker still guards by
    // judging the raw bytes — a truncated header is a criterion-2 failure.
    let (_, v) = judge_rtp(vec![0x80, 96, 0]);
    assert_fails("rtp/c2", v, Criterion::HeaderFieldsValid);
    let (_, v) = judge_rtp(PacketBuilder::new(96, 1, 2, 3).payload(vec![0; 20]).build());
    assert_passes("rtp/c2 repaired", v);
}

#[test]
fn rtp_criterion_3_undefined_extension_profile() {
    // FaceTime's proprietary 0x8D00 profile (paper §5.2.2).
    let (_, v) =
        judge_rtp(PacketBuilder::new(104, 1, 2, 3).extension(0x8D00, vec![1, 2, 3, 4]).payload(vec![0; 20]).build());
    assert_fails("rtp/c3", v, Criterion::AttributeTypesDefined);
    let (_, v) =
        judge_rtp(PacketBuilder::new(104, 1, 2, 3).one_byte_extension(&[(1, &[0x30])]).payload(vec![0; 20]).build());
    assert_passes("rtp/c3 repaired", v);
}

#[test]
fn rtp_criterion_4_reserved_extension_id_zero() {
    // Discord's ID-0 element with a non-zero length nibble (paper §5.2.2).
    let (_, v) = judge_rtp(
        PacketBuilder::new(120, 1, 2, 3).extension(ONE_BYTE_PROFILE, vec![0x02, 7, 8, 9]).payload(vec![0; 4]).build(),
    );
    assert_fails("rtp/c4", v, Criterion::AttributeValuesValid);
    // Repair: the same element under its defined ID 2.
    let (_, v) = judge_rtp(
        PacketBuilder::new(120, 1, 2, 3).one_byte_extension(&[(2, &[7, 8, 9])]).payload(vec![0; 4]).build(),
    );
    assert_passes("rtp/c4 repaired", v);
}

// ---------------------------------------------------------------- RTCP ----

#[test]
fn rtcp_criterion_1_undefined_packet_type() {
    let (key, v) = judge_rtcp(rtcp::build_raw(0, 210, &[0, 0, 0, 7]), vec![]);
    assert_eq!(key, TypeKey::Rtcp(210));
    assert_fails("rtcp/c1", v, Criterion::MessageTypeDefined);
    let (_, v) = judge_rtcp(sample_sr(), vec![]);
    assert_passes("rtcp/c1 repaired", v);
}

#[test]
fn rtcp_criterion_2_count_exceeds_length() {
    // An RR claiming two report blocks but carrying none.
    let (_, v) = judge_rtcp(rtcp::build_raw(2, 201, &[0, 0, 0, 7]), vec![]);
    assert_fails("rtcp/c2", v, Criterion::HeaderFieldsValid);
    let (_, v) = judge_rtcp(rtcp::build_raw(0, 201, &[0, 0, 0, 7]), vec![]);
    assert_passes("rtcp/c2 repaired", v);
}

#[test]
fn rtcp_criterion_3_undefined_sdes_item() {
    let bad = Sdes { chunks: vec![SdesChunk { ssrc: 7, items: vec![(42, b"x".to_vec())] }] }.build();
    let (_, v) = judge_rtcp(bad, vec![]);
    assert_fails("rtcp/c3", v, Criterion::AttributeTypesDefined);
    // Repair: the same chunk as a defined CNAME item (type 1).
    let good = Sdes { chunks: vec![SdesChunk { ssrc: 7, items: vec![(1, b"x".to_vec())] }] }.build();
    let (_, v) = judge_rtcp(good, vec![]);
    assert_passes("rtcp/c3 repaired", v);
}

#[test]
fn rtcp_criterion_4_app_name_not_ascii() {
    let bad = rtcp::App { subtype: 1, ssrc: 7, name: [0xFF, b'a', b'b', b'c'], data: vec![] }.build();
    let (_, v) = judge_rtcp(bad, vec![]);
    assert_fails("rtcp/c4", v, Criterion::AttributeValuesValid);
    let good = rtcp::App { subtype: 1, ssrc: 7, name: *b"name", data: vec![] }.build();
    let (_, v) = judge_rtcp(good, vec![]);
    assert_passes("rtcp/c4 repaired", v);
}

#[test]
fn rtcp_criterion_4_srtcp_trailer_without_auth_tag() {
    // A 4-byte trailer is an SRTCP index with no authentication tag —
    // Google Meet's relayed-Wi-Fi violation (paper §5.2.3).
    let trailer = rtcp::SrtcpTrailer { encrypted: true, index: 9, auth_tag_len: 0 }.build(1);
    let (_, v) = judge_rtcp(sample_sr(), trailer);
    assert_fails("rtcp/c4 srtcp", v, Criterion::AttributeValuesValid);
    // Repair: the same trailer with the default HMAC-SHA1-80 tag.
    let trailer = rtcp::SrtcpTrailer { encrypted: true, index: 9, auth_tag_len: 10 }.build(1);
    let (_, v) = judge_rtcp(sample_sr(), trailer);
    assert_passes("rtcp/c4 srtcp repaired", v);
}

#[test]
fn rtcp_criterion_5_undefined_trailing_bytes() {
    // Discord's 3-byte counter + direction trailer (paper §5.2.3).
    let (_, v) = judge_rtcp(sample_sr(), vec![0, 1, 0xAA]);
    assert_fails("rtcp/c5", v, Criterion::SyntaxSemanticIntegrity);
    let (_, v) = judge_rtcp(sample_sr(), vec![]);
    assert_passes("rtcp/c5 repaired", v);
}

// ---------------------------------------------------------------- QUIC ----

#[test]
fn quic_long_criterion_2_fixed_bit_cleared() {
    let header = |fixed_bit: bool| LongHeader {
        fixed_bit,
        long_type: LongType::Initial,
        type_specific: 0,
        version: VERSION_1,
        dcid: vec![1; 8],
        scid: vec![2; 8],
        header_len: 0,
    };
    let kind = || CandidateKind::QuicLong {
        version: VERSION_1,
        dcid: CidBuf::try_from_slice(&[1; 8]).unwrap(),
        scid: CidBuf::try_from_slice(&[2; 8]).unwrap(),
    };
    let ctx = CallContext::default();
    let (key, v) = judge(Protocol::Quic, kind(), header(false).build(), vec![], &ctx);
    assert_eq!(key, TypeKey::QuicLong(0));
    assert_fails("quic-long/c2", v, Criterion::HeaderFieldsValid);
    let (_, v) = judge(Protocol::Quic, kind(), header(true).build(), vec![], &ctx);
    assert_passes("quic-long/c2 repaired", v);
}

#[test]
fn quic_short_criterion_2_fixed_bit_cleared() {
    let bytes = |fixed_bit: bool| {
        let mut b = ShortHeader { fixed_bit, spin: false, dcid: vec![3; 8], header_len: 0 }.build();
        b.extend_from_slice(&[0; 20]);
        b
    };
    let ctx = CallContext::default();
    let (key, v) = judge(Protocol::Quic, CandidateKind::QuicShortProbe, bytes(false), vec![], &ctx);
    assert_eq!(key, TypeKey::QuicShort);
    assert_fails("quic-short/c2", v, Criterion::HeaderFieldsValid);
    let (_, v) = judge(Protocol::Quic, CandidateKind::QuicShortProbe, bytes(true), vec![], &ctx);
    assert_passes("quic-short/c2 repaired", v);
}

// ------------------------------------------------- structural non-cells ----

#[test]
fn rtp_criterion_1_cannot_fire_any_payload_type_is_defined() {
    for pt in 0u8..=127 {
        let (key, v) = judge_rtp(PacketBuilder::new(pt, 1, 2, 3).payload(vec![0; 20]).build());
        assert_eq!(key, TypeKey::Rtp(pt));
        assert!(v.is_none(), "payload type {pt} unexpectedly judged non-compliant: {v:?}");
    }
}

#[test]
fn rtp_criterion_5_has_no_rule_trailing_bytes_are_judged_elsewhere() {
    // Trailing datagram bytes belong to the RTCP/SRTP trailer taxonomy;
    // the RTP message itself stays compliant.
    let data = PacketBuilder::new(96, 1, 2, 3).payload(vec![0; 20]).build();
    let msg = DpiMessage {
        protocol: Protocol::Rtp,
        kind: CandidateKind::Rtp { ssrc: 3, payload_type: 96, seq: 1 },
        offset: 0,
        data: Bytes::from(data),
        nested: false,
    };
    let dgram = DatagramDissection {
        ts: Timestamp::ZERO,
        stream: stream(),
        payload_len: msg.data.len(),
        messages: vec![],
        prefix: Bytes::new(),
        trailing: Bytes::from(vec![1, 2, 3]),
        class: DatagramClass::Standard,
        prop_header_len: 0,
    };
    let checked = check_message(&dgram, &msg, &CallContext::default());
    assert!(checked.violation.is_none(), "{:?}", checked.violation);
}

#[test]
fn channeldata_has_only_header_rules() {
    // No attributes, one type key, encrypted payload: criteria 1/3/4/5
    // have nothing to inspect. A well-formed frame is fully compliant.
    let ctx = CallContext::default();
    let (key, v) = judge(
        Protocol::StunTurn,
        CandidateKind::ChannelData { channel: 0x4ABC },
        ChannelData::build(0x4ABC, &[9; 32]),
        vec![],
        &ctx,
    );
    assert_eq!(key, TypeKey::ChannelData);
    assert!(v.is_none(), "{v:?}");
}
