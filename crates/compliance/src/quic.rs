//! QUIC compliance checks (RFC 9000 header invariants).
//!
//! QUIC payloads are always encrypted, so only header fields are judged:
//! the fixed bit, a known version, and connection-ID lengths. The paper
//! found all observed QUIC traffic (FaceTime's) fully compliant.

use crate::{Criterion, TypeKey, Violation};
use rtc_dpi::{CandidateKind, DatagramDissection, DpiMessage};
use rtc_wire::quic::{LongHeader, ShortHeader};

/// Judge one QUIC packet (long or short header).
pub fn check_quic(_dgram: &DatagramDissection, msg: &DpiMessage) -> (TypeKey, Option<Violation>) {
    match &msg.kind {
        CandidateKind::QuicLong { .. } => {
            rtc_cov::probe!("compliance.quic.long");
            let parsed = match LongHeader::parse(&msg.data) {
                Ok(h) => h,
                Err(e) => return (TypeKey::QuicLong(0), Some(Violation::from_wire(Criterion::HeaderFieldsValid, e))),
            };
            let key = TypeKey::QuicLong(parsed.long_type.bits());
            // Criterion 2: the fixed bit MUST be 1 (RFC 9000 §17.2) and
            // connection IDs are capped at 20 bytes (§17.2).
            if !parsed.fixed_bit {
                return (key, Some(Violation::new(Criterion::HeaderFieldsValid, "fixed bit is zero")));
            }
            if parsed.dcid.len() > 20 || parsed.scid.len() > 20 {
                return (
                    key,
                    Some(Violation::new(Criterion::HeaderFieldsValid, "connection ID longer than 20 bytes")),
                );
            }
            (key, None)
        }
        CandidateKind::QuicShortProbe => {
            rtc_cov::probe!("compliance.quic.short");
            let key = TypeKey::QuicShort;
            // The DPI validated the DCID against the stream's connection
            // IDs; here the fixed bit is re-checked on the first byte.
            match ShortHeader::parse(&msg.data, 0) {
                Ok(h) if h.fixed_bit => (key, None),
                Ok(_) => (key, Some(Violation::new(Criterion::HeaderFieldsValid, "fixed bit is zero"))),
                Err(e) => (key, Some(Violation::from_wire(Criterion::HeaderFieldsValid, e))),
            }
        }
        _ => (TypeKey::QuicShort, Some(Violation::new(Criterion::HeaderFieldsValid, "not a QUIC candidate"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rtc_dpi::{CidBuf, DatagramClass, Protocol};
    use rtc_pcap::Timestamp;
    use rtc_wire::ip::FiveTuple;
    use rtc_wire::quic::{LongType, VERSION_1};

    fn wrap(kind: CandidateKind, data: Vec<u8>) -> (DatagramDissection, DpiMessage) {
        let msg = DpiMessage { protocol: Protocol::Quic, kind, offset: 0, data: Bytes::from(data), nested: false };
        let dgram = DatagramDissection {
            ts: Timestamp::ZERO,
            stream: FiveTuple::udp("10.0.0.1:1".parse().unwrap(), "1.2.3.4:2".parse().unwrap()),
            payload_len: 0,
            messages: vec![],
            prefix: Bytes::new(),
            trailing: Bytes::new(),
            class: DatagramClass::Standard,
            prop_header_len: 0,
        };
        (dgram, msg)
    }

    #[test]
    fn compliant_long_header() {
        let h = LongHeader {
            fixed_bit: true,
            long_type: LongType::Initial,
            type_specific: 0,
            version: VERSION_1,
            dcid: vec![1; 8],
            scid: vec![2; 8],
            header_len: 0,
        };
        let (d, m) = wrap(
            CandidateKind::QuicLong {
                version: VERSION_1,
                dcid: CidBuf::try_from_slice(&[1; 8]).unwrap(),
                scid: CidBuf::try_from_slice(&[2; 8]).unwrap(),
            },
            h.build(),
        );
        let (key, v) = check_quic(&d, &m);
        assert_eq!(key, TypeKey::QuicLong(0));
        assert!(v.is_none());
    }

    #[test]
    fn cleared_fixed_bit_fails() {
        let h = LongHeader {
            fixed_bit: false,
            long_type: LongType::Handshake,
            type_specific: 0,
            version: VERSION_1,
            dcid: vec![],
            scid: vec![],
            header_len: 0,
        };
        let (d, m) =
            wrap(CandidateKind::QuicLong { version: VERSION_1, dcid: CidBuf::EMPTY, scid: CidBuf::EMPTY }, h.build());
        let v = check_quic(&d, &m).1.unwrap();
        assert_eq!(v.criterion, Criterion::HeaderFieldsValid);
    }

    #[test]
    fn oversized_cid_fails() {
        let h = LongHeader {
            fixed_bit: true,
            long_type: LongType::Initial,
            type_specific: 0,
            version: VERSION_1,
            dcid: vec![1; 21],
            scid: vec![],
            header_len: 0,
        };
        // The DPI drops >20-byte CIDs at extraction (RFC 9000 §17.2), but
        // the checker re-parses the wire bytes and must still flag them if
        // handed such a message directly.
        let (d, m) =
            wrap(CandidateKind::QuicLong { version: VERSION_1, dcid: CidBuf::EMPTY, scid: CidBuf::EMPTY }, h.build());
        assert!(check_quic(&d, &m).1.is_some());
    }

    #[test]
    fn compliant_short_header() {
        let h = ShortHeader { fixed_bit: true, spin: true, dcid: vec![], header_len: 0 };
        let mut bytes = h.build();
        bytes.extend_from_slice(&[0; 20]);
        let (d, m) = wrap(CandidateKind::QuicShortProbe, bytes);
        let (key, v) = check_quic(&d, &m);
        assert_eq!(key, TypeKey::QuicShort);
        assert!(v.is_none());
    }
}
