//! STUN/TURN compliance checks (criteria 1–5 for the STUN message format
//! and TURN ChannelData framing).

use crate::context::CallContext;
use crate::registry;
use crate::{Criterion, TypeKey, Violation};
use rtc_dpi::{DatagramDissection, DpiMessage};
use rtc_wire::stun::{ChannelData, Message};

/// Judge one STUN/TURN message. Returns its type key and the first
/// violation, if any.
pub fn check_stun(dgram: &DatagramDissection, msg: &DpiMessage, ctx: &CallContext) -> (TypeKey, Option<Violation>) {
    let parsed = match Message::new_checked(&msg.data) {
        Ok(m) => m,
        Err(e) => {
            // The DPI only emits parseable messages; guard anyway.
            return (TypeKey::Stun(0), Some(Violation::from_wire(Criterion::HeaderFieldsValid, e)));
        }
    };
    let message_type = parsed.message_type();
    let key = TypeKey::Stun(message_type);

    // Criterion 1: the message type must be defined.
    if !registry::stun_type_defined(message_type) {
        return (
            key,
            Some(Violation::new(
                Criterion::MessageTypeDefined,
                format!("message type {message_type:#06x} is not defined in any STUN/TURN specification"),
            )),
        );
    }

    // Criterion 2: header fields. The parser already guarantees the type
    // bits, length alignment and length fit; what remains is transaction-ID
    // plausibility (RFC 8489 §6: "transaction ID ... MUST be uniformly and
    // randomly chosen"), which needs stream context.
    let mut txid = [0u8; 12];
    txid.copy_from_slice(parsed.transaction_id());
    if ctx.sequential_txids.contains(&(dgram.stream, txid)) {
        return (
            key,
            Some(Violation::new(
                Criterion::HeaderFieldsValid,
                "transaction IDs are sequential rather than randomly generated",
            )),
        );
    }

    // Criterion 3: every attribute type must be defined.
    for a in parsed.attributes().flatten() {
        if !registry::stun_attr_defined(a.typ) {
            return (
                key,
                Some(Violation::new(
                    Criterion::AttributeTypesDefined,
                    format!("attribute type {:#06x} is not defined in any specification", a.typ),
                )),
            );
        }
    }

    // Criterion 4: attribute values must be valid.
    for a in parsed.attributes().flatten() {
        if let Some(problem) = registry::stun_attr_value_problem(a.typ, a.value) {
            return (
                key,
                Some(Violation::new(Criterion::AttributeValuesValid, format!("attribute {:#06x}: {problem}", a.typ))),
            );
        }
    }
    // Criterion 4: a FINGERPRINT must carry the correct CRC-32 (RFC 8489
    // §14.7) — verifiable without keys, unlike MESSAGE-INTEGRITY.
    #[cfg(feature = "cov-probes")]
    {
        if parsed.verify_fingerprint().is_some() {
            rtc_cov::probe!("compliance.stun.fingerprint-present");
        }
    }
    if parsed.verify_fingerprint() == Some(false) {
        return (
            key,
            Some(Violation::new(
                Criterion::AttributeValuesValid,
                "FINGERPRINT CRC-32 does not match the message contents",
            )),
        );
    }

    // Criterion 5: syntax and semantic integrity.
    // 5a. Attribute ordering: FINGERPRINT, when present, must be the last
    // attribute, after any MESSAGE-INTEGRITY (RFC 8489 §14.7).
    let order: Vec<u16> = parsed.attributes().flatten().map(|a| a.typ).collect();
    if let Some(fp) = order.iter().position(|t| *t == rtc_wire::stun::attr::FINGERPRINT) {
        if fp != order.len() - 1 {
            return (
                key,
                Some(Violation::new(Criterion::SyntaxSemanticIntegrity, "FINGERPRINT is not the final attribute")),
            );
        }
    }
    // 5b. Allowed attribute set (strict for TURN indications).
    if let Some(allowed) = registry::stun_allowed_attrs(message_type) {
        rtc_cov::probe!("compliance.stun.allowed-attr-set");
        for a in parsed.attributes().flatten() {
            if !allowed.contains(&a.typ) {
                return (
                    key,
                    Some(Violation::new(
                        Criterion::SyntaxSemanticIntegrity,
                        format!("attribute {:#06x} is not permitted in message type {message_type:#06x}", a.typ),
                    )),
                );
            }
        }
    }
    // 5c. Required attributes.
    for req in registry::stun_required_attrs(message_type) {
        if parsed.attribute(*req).is_none() {
            return (
                key,
                Some(Violation::new(
                    Criterion::SyntaxSemanticIntegrity,
                    format!("required attribute {req:#06x} missing from message type {message_type:#06x}"),
                )),
            );
        }
    }
    // 5d. Behavioral context: over-retransmission and Allocate ping-pong.
    if ctx.over_retransmitted.contains(&(dgram.stream, txid)) {
        return (
            key,
            Some(Violation::new(
                Criterion::SyntaxSemanticIntegrity,
                "request retransmitted beyond the RFC 8489 budget with no response",
            )),
        );
    }
    if ctx.pingpong_allocates.contains(&(dgram.stream, txid)) {
        return (
            key,
            Some(Violation::new(
                Criterion::SyntaxSemanticIntegrity,
                "Allocate Requests repurposed as periodic connectivity checks",
            )),
        );
    }

    (key, None)
}

/// Judge one TURN ChannelData frame.
pub fn check_channeldata(dgram: &DatagramDissection, msg: &DpiMessage) -> (TypeKey, Option<Violation>) {
    let key = TypeKey::ChannelData;
    let parsed = match ChannelData::new_checked(&msg.data) {
        Ok(c) => c,
        Err(e) => return (key, Some(Violation::from_wire(Criterion::HeaderFieldsValid, e))),
    };
    // Criterion 2: the channel number must fall in RFC 8656's range.
    if !ChannelData::CHANNEL_RANGE.contains(&parsed.channel_number()) {
        return (
            key,
            Some(Violation::new(
                Criterion::HeaderFieldsValid,
                format!(
                    "channel number {:#06x} outside RFC 8656's 0x4000-0x4FFF allocation range",
                    parsed.channel_number()
                ),
            )),
        );
    }
    // Criterion 2: over UDP the frame must cover the datagram exactly —
    // ChannelData has no padding outside stream transports (RFC 8656 §12.5).
    if !dgram.trailing.is_empty() {
        return (
            key,
            Some(Violation::new(
                Criterion::HeaderFieldsValid,
                format!("length field leaves {} unexplained byte(s) after the frame", dgram.trailing.len()),
            )),
        );
    }
    (key, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rtc_dpi::{CandidateKind, Protocol};
    use rtc_pcap::Timestamp;
    use rtc_wire::ip::FiveTuple;
    use rtc_wire::stun::{attr, msg_type, MessageBuilder};

    fn wrap(data: Vec<u8>) -> (DatagramDissection, DpiMessage) {
        let msg = DpiMessage {
            protocol: Protocol::StunTurn,
            kind: CandidateKind::Stun { message_type: 0, modern: true },
            offset: 0,
            data: Bytes::from(data),
            nested: false,
        };
        let dgram = DatagramDissection {
            ts: Timestamp::ZERO,
            stream: FiveTuple::udp("10.0.0.1:1".parse().unwrap(), "1.2.3.4:2".parse().unwrap()),
            payload_len: msg.data.len(),
            messages: vec![],
            prefix: Bytes::new(),
            trailing: Bytes::new(),
            class: rtc_dpi::DatagramClass::Standard,
            prop_header_len: 0,
        };
        (dgram, msg)
    }

    #[test]
    fn facetime_data_indication_fails_at_channel_number_value() {
        // CHANNEL-NUMBER with value 0x00000000 inside a Data Indication:
        // criterion 4 fires before the criterion-5 placement rule (§5.2.1).
        let txid = [1u8; 12];
        let bytes = MessageBuilder::new(msg_type::DATA_INDICATION, txid)
            .attribute(attr::XOR_PEER_ADDRESS, vec![0, 1, 0, 80, 1, 2, 3, 4])
            .attribute(attr::DATA, vec![9; 16])
            .attribute(attr::CHANNEL_NUMBER, vec![0, 0, 0, 0])
            .build();
        let (dgram, msg) = wrap(bytes);
        let (key, v) = check_stun(&dgram, &msg, &CallContext::default());
        assert_eq!(key, TypeKey::Stun(msg_type::DATA_INDICATION));
        assert_eq!(v.unwrap().criterion, Criterion::AttributeValuesValid);
    }

    #[test]
    fn in_range_channel_number_in_data_indication_fails_placement() {
        let txid = [1u8; 12];
        let bytes = MessageBuilder::new(msg_type::DATA_INDICATION, txid)
            .attribute(attr::XOR_PEER_ADDRESS, vec![0, 1, 0, 80, 1, 2, 3, 4])
            .attribute(attr::DATA, vec![9; 16])
            .attribute(attr::CHANNEL_NUMBER, vec![0x40, 0x00, 0, 0])
            .build();
        let (dgram, msg) = wrap(bytes);
        let (_, v) = check_stun(&dgram, &msg, &CallContext::default());
        assert_eq!(v.unwrap().criterion, Criterion::SyntaxSemanticIntegrity);
    }

    #[test]
    fn missing_required_attribute() {
        // Allocate Request without REQUESTED-TRANSPORT.
        let bytes = MessageBuilder::new(msg_type::ALLOCATE_REQUEST, [2; 12])
            .attribute(attr::USERNAME, b"user".to_vec())
            .build();
        let (dgram, msg) = wrap(bytes);
        let (_, v) = check_stun(&dgram, &msg, &CallContext::default());
        let v = v.unwrap();
        assert_eq!(v.criterion, Criterion::SyntaxSemanticIntegrity);
        assert!(v.detail.contains("0x0019"), "{}", v.detail);
    }

    #[test]
    fn alternate_server_family_zero_fails_criterion_four() {
        let bytes = MessageBuilder::new(msg_type::BINDING_SUCCESS, [3; 12])
            .attribute(attr::XOR_MAPPED_ADDRESS, vec![0, 1, 0, 80, 1, 2, 3, 4])
            .attribute(attr::ALTERNATE_SERVER, vec![0, 0x00, 0x0D, 0x96, 1, 2, 3, 4])
            .build();
        let (dgram, msg) = wrap(bytes);
        let (_, v) = check_stun(&dgram, &msg, &CallContext::default());
        let v = v.unwrap();
        assert_eq!(v.criterion, Criterion::AttributeValuesValid);
        assert!(v.detail.contains("family"), "{}", v.detail);
    }

    #[test]
    fn channeldata_in_range_ok_out_of_range_flagged() {
        let (dgram, _) = wrap(vec![]);
        let ok = DpiMessage {
            protocol: Protocol::StunTurn,
            kind: CandidateKind::ChannelData { channel: 0x4001 },
            offset: 0,
            data: Bytes::from(ChannelData::build(0x4001, b"abcd")),
            nested: false,
        };
        assert!(check_channeldata(&dgram, &ok).1.is_none());
        let bad = DpiMessage {
            protocol: Protocol::StunTurn,
            kind: CandidateKind::ChannelData { channel: 0x6000 },
            offset: 0,
            data: Bytes::from(ChannelData::build(0x6000, b"abcd")),
            nested: false,
        };
        let v = check_channeldata(&dgram, &bad).1.unwrap();
        assert_eq!(v.criterion, Criterion::HeaderFieldsValid);
    }

    #[test]
    fn bad_fingerprint_crc_fails_criterion_four() {
        let mut bytes = MessageBuilder::new(msg_type::BINDING_REQUEST, [5; 12])
            .attribute(attr::PRIORITY, vec![0, 0, 1, 0])
            .build_with_fingerprint();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // corrupt the CRC
        let (dgram, msg) = wrap(bytes);
        let (_, v) = check_stun(&dgram, &msg, &CallContext::default());
        let v = v.unwrap();
        assert_eq!(v.criterion, Criterion::AttributeValuesValid);
        assert!(v.detail.contains("FINGERPRINT"), "{}", v.detail);
    }

    #[test]
    fn good_fingerprint_passes() {
        let bytes = MessageBuilder::new(msg_type::BINDING_REQUEST, [5; 12])
            .attribute(attr::PRIORITY, vec![0, 0, 1, 0])
            .build_with_fingerprint();
        let (dgram, msg) = wrap(bytes);
        assert!(check_stun(&dgram, &msg, &CallContext::default()).1.is_none());
    }

    #[test]
    fn fingerprint_not_last_fails_criterion_five() {
        // Build manually: FINGERPRINT followed by SOFTWARE. Compute the CRC
        // as if FINGERPRINT were the end of a shorter message, then append
        // more — both the placement and the stale CRC violate the spec; the
        // placement check needs a *correct* CRC to be reached, so craft one
        // over the final length.
        let body = MessageBuilder::new(msg_type::BINDING_REQUEST, [6; 12])
            .attribute(attr::PRIORITY, vec![0, 0, 1, 0])
            .attribute(attr::FINGERPRINT, vec![0, 0, 0, 0])
            .attribute(attr::SOFTWARE, b"late".to_vec())
            .build();
        // Fix the CRC so criterion 4 passes and the ordering check fires.
        // Layout: header (20) + PRIORITY (8) = 28; FINGERPRINT TLV at 28,
        // its value at 32..36.
        let crc = (rtc_wire::stun::crc32(&body[..28]) ^ rtc_wire::stun::FINGERPRINT_XOR).to_be_bytes();
        let mut bytes = body;
        bytes[32..36].copy_from_slice(&crc);
        let (dgram, msg) = wrap(bytes);
        let (_, v) = check_stun(&dgram, &msg, &CallContext::default());
        let v = v.unwrap();
        assert_eq!(v.criterion, Criterion::SyntaxSemanticIntegrity, "{}", v.detail);
        assert!(v.detail.contains("final attribute"), "{}", v.detail);
    }

    #[test]
    fn goog_ping_is_compliant() {
        let bytes = MessageBuilder::new(msg_type::GOOG_PING_REQUEST, [4; 12]).build();
        let (dgram, msg) = wrap(bytes);
        let (key, v) = check_stun(&dgram, &msg, &CallContext::default());
        assert_eq!(key, TypeKey::Stun(0x0200));
        assert!(v.is_none());
    }
}
