//! Detectors for the paper's application-specific behavioral findings
//! (§5.3) — phenomena that are *not* compliance violations but that the
//! study reports: Zoom's filler bursts and double-RTP datagrams, Discord's
//! zero sender SSRC and direction trailer, FaceTime's fixed-rate fully
//! proprietary keepalives, and deterministic SSRC reuse across calls.

use rtc_dpi::{CallDissection, CandidateKind, DatagramClass, Protocol};
use std::collections::{HashMap, HashSet};

/// One detected behavioral finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which phenomenon was detected.
    pub kind: FindingKind,
    /// How many datagrams/messages exhibit it.
    pub count: usize,
    /// Human-readable summary.
    pub detail: String,
}

/// The finding taxonomy (paper §5.3). `Ord` follows declaration order and
/// fixes the rendering order of per-application findings, keeping reports
/// identical however calls were scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FindingKind {
    /// Constant-byte filler datagrams (Zoom's bandwidth probes).
    FillerDatagrams,
    /// Datagrams carrying two RTP messages (Zoom).
    DoubleRtpDatagrams,
    /// RTCP feedback with sender SSRC zero (Discord).
    ZeroSenderSsrc,
    /// A trailing direction byte on RTCP messages (Discord).
    DirectionTrailer,
    /// Fixed-size fully proprietary keepalives at a steady rate (FaceTime
    /// cellular).
    ProprietaryKeepalives,
    /// Identical SSRC sets across distinct calls (Zoom).
    SsrcReuseAcrossCalls,
}

/// Run the single-call detectors.
pub fn detect_call(dissection: &CallDissection) -> Vec<Finding> {
    let mut out = Vec::new();

    // --- Filler datagrams: fully proprietary, ≥ 500 bytes, constant value.
    let filler = dissection
        .datagrams
        .iter()
        .filter(|d| d.class == DatagramClass::FullyProprietary && d.payload_len >= 500)
        .count();
    // The classifier has no payload bytes here, so size alone approximates;
    // precise constant-byte detection happens where payloads are available.
    if filler > 20 {
        out.push(Finding {
            kind: FindingKind::FillerDatagrams,
            count: filler,
            detail: format!("{filler} large fully proprietary datagrams (bandwidth-probe pattern)"),
        });
    }

    // --- Double-RTP datagrams.
    let doubles = dissection
        .datagrams
        .iter()
        .filter(|d| d.messages.iter().filter(|m| m.protocol == Protocol::Rtp).count() >= 2)
        .count();
    if doubles > 0 {
        out.push(Finding {
            kind: FindingKind::DoubleRtpDatagrams,
            count: doubles,
            detail: format!("{doubles} datagrams carry two RTP messages (runt + full)"),
        });
    }

    // --- Zero sender SSRC in feedback.
    let mut fb_total = 0usize;
    let mut fb_zero = 0usize;
    for (_, m) in dissection.messages() {
        if let CandidateKind::Rtcp { packet_type: 205, .. } = m.kind {
            fb_total += 1;
            if m.data.len() >= 8 && m.data[4..8] == [0, 0, 0, 0] {
                fb_zero += 1;
            }
        }
    }
    if fb_zero > 0 {
        out.push(Finding {
            kind: FindingKind::ZeroSenderSsrc,
            count: fb_zero,
            detail: format!("{fb_zero}/{fb_total} transport-feedback messages use sender SSRC 0"),
        });
    }

    // --- Direction trailer: 3 trailing bytes whose last byte is constant
    // per direction across the call.
    let mut per_direction: HashMap<bool, HashSet<u8>> = HashMap::new();
    let mut trailered = 0usize;
    for d in &dissection.datagrams {
        if d.trailing.len() == 3 && d.messages.iter().any(|m| m.protocol == Protocol::Rtcp) {
            trailered += 1;
            per_direction.entry(d.stream.src < d.stream.dst).or_default().insert(d.trailing[2]);
        }
    }
    if trailered > 10 && per_direction.values().all(|set| set.len() == 1) && !per_direction.is_empty() {
        out.push(Finding {
            kind: FindingKind::DirectionTrailer,
            count: trailered,
            detail: format!("{trailered} RTCP messages end with a per-direction constant trailer byte"),
        });
    }

    // --- Fixed-size proprietary keepalives at a steady rate.
    let mut by_size: HashMap<usize, Vec<rtc_pcap::Timestamp>> = HashMap::new();
    for d in &dissection.datagrams {
        if d.class == DatagramClass::FullyProprietary && d.payload_len < 100 {
            by_size.entry(d.payload_len).or_default().push(d.ts);
        }
    }
    for (size, ts) in by_size {
        if ts.len() < 20 {
            continue;
        }
        let deltas: Vec<u64> = ts.windows(2).map(|w| w[1].micros_since(w[0])).collect();
        let mean = deltas.iter().sum::<u64>() as f64 / deltas.len() as f64;
        let steady = deltas.iter().filter(|&&d| (d as f64 - mean).abs() < mean * 0.25).count();
        if steady * 3 >= deltas.len() * 2 {
            out.push(Finding {
                kind: FindingKind::ProprietaryKeepalives,
                count: ts.len(),
                detail: format!(
                    "{} fixed-size ({size} B) fully proprietary datagrams at a steady ~{:.0} ms interval",
                    ts.len(),
                    mean / 1000.0
                ),
            });
        }
    }

    out
}

/// A call's SSRC inventory, as consumed by [`detect_ssrc_reuse_sets`].
pub fn ssrc_set(dissection: &CallDissection) -> std::collections::BTreeSet<u32> {
    dissection.rtp_ssrcs.values().flat_map(|s| s.iter().copied()).collect()
}

/// Cross-call detector: identical SSRC inventories across distinct calls
/// (Zoom's deterministic SSRC assignment, §5.2.2).
pub fn detect_ssrc_reuse(calls: &[&CallDissection]) -> Option<Finding> {
    let sets: Vec<std::collections::BTreeSet<u32>> = calls.iter().map(|c| ssrc_set(c)).collect();
    detect_ssrc_reuse_sets(&sets)
}

/// Set-based form of [`detect_ssrc_reuse`]: the streaming aggregator keeps
/// only each call's SSRC inventory (via [`ssrc_set`]) instead of retaining
/// whole dissections across calls.
pub fn detect_ssrc_reuse_sets(sets: &[std::collections::BTreeSet<u32>]) -> Option<Finding> {
    if sets.len() < 2 {
        return None;
    }
    let first = &sets[0];
    if first.is_empty() {
        return None;
    }
    if sets.iter().all(|s| s == first) {
        Some(Finding {
            kind: FindingKind::SsrcReuseAcrossCalls,
            count: sets.len(),
            detail: format!(
                "all {} calls use the identical SSRC set {:?} — SSRCs are not randomized per call",
                sets.len(),
                first
            ),
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rtc_dpi::{dissect_call, DpiConfig};
    use rtc_pcap::trace::Datagram;
    use rtc_pcap::Timestamp;
    use rtc_wire::ip::FiveTuple;
    use rtc_wire::rtp::PacketBuilder;

    fn dgram(ts_ms: u64, payload: Vec<u8>) -> Datagram {
        Datagram {
            ts: Timestamp::from_millis(ts_ms),
            five_tuple: FiveTuple::udp("10.0.0.1:1000".parse().unwrap(), "1.2.3.4:2000".parse().unwrap()),
            payload: Bytes::from(payload),
        }
    }

    #[test]
    fn keepalive_cadence_detected() {
        let d: Vec<Datagram> = (0..40).map(|i| dgram(i * 50, vec![0xDE; 36])).collect();
        let dis = dissect_call(&d, &DpiConfig::default());
        let findings = detect_call(&dis);
        assert!(findings.iter().any(|f| f.kind == FindingKind::ProprietaryKeepalives), "{findings:?}");
    }

    #[test]
    fn irregular_noise_not_reported_as_keepalive() {
        let ts = [
            0u64, 3, 400, 405, 2000, 2004, 9000, 9500, 9501, 12_000, 15_000, 15_001, 18_000, 18_500, 21_000, 21_001,
            24_000, 27_000, 27_100, 30_000, 33_000, 36_000,
        ];
        let d: Vec<Datagram> = ts.iter().map(|&t| dgram(t, vec![0xDE; 36])).collect();
        let dis = dissect_call(&d, &DpiConfig::default());
        let findings = detect_call(&dis);
        assert!(!findings.iter().any(|f| f.kind == FindingKind::ProprietaryKeepalives), "{findings:?}");
    }

    #[test]
    fn ssrc_reuse_across_calls() {
        let make_call = |ssrc: u32| {
            let d: Vec<Datagram> = (0..5)
                .map(|i| dgram(i * 20, PacketBuilder::new(96, i as u16, 0, ssrc).payload(vec![0; 30]).build()))
                .collect();
            dissect_call(&d, &DpiConfig::default())
        };
        let a = make_call(0x0100_0401);
        let b = make_call(0x0100_0401);
        let c = make_call(0x0999_0000);
        assert!(detect_ssrc_reuse(&[&a, &b]).is_some());
        assert!(detect_ssrc_reuse(&[&a, &c]).is_none());
        assert!(detect_ssrc_reuse(&[&a]).is_none());
    }

    #[test]
    fn double_rtp_detected() {
        let ssrc = 0x42;
        let mut d: Vec<Datagram> = (0..5)
            .map(|i| dgram(i * 20, PacketBuilder::new(110, 100 + i as u16, 0, ssrc).payload(vec![0; 50]).build()))
            .collect();
        let runt = PacketBuilder::new(110, 40_000, 5, ssrc).payload(vec![0x11; 7]).build();
        let full = PacketBuilder::new(110, 105, 5, ssrc).payload(vec![9; 100]).build();
        let mut both = runt;
        both.extend_from_slice(&full);
        d.push(dgram(200, both));
        let dis = dissect_call(&d, &DpiConfig::default());
        let findings = detect_call(&dis);
        assert!(findings.iter().any(|f| f.kind == FindingKind::DoubleRtpDatagrams));
    }
}
