//! # rtc-compliance
//!
//! The paper's compliance-assessment methodology (§4.2): every message the
//! DPI extracted is judged against its protocol specification through five
//! criteria, evaluated **strictly in order** — the first failure classifies
//! the message as non-compliant and later criteria are not evaluated
//! ("this ensures reliability by avoiding cascading evaluation errors"):
//!
//! 1. [`Criterion::MessageTypeDefined`] — the message type exists in the
//!    protocol's specifications (any published RFC version counts, plus
//!    publicly documented WebRTC extensions such as GOOG-PING),
//! 2. [`Criterion::HeaderFieldsValid`] — header fields carry representable,
//!    self-consistent values (including contextual transaction-ID
//!    randomness: sequential IDs violate RFC 8489 §6),
//! 3. [`Criterion::AttributeTypesDefined`] — every TLV attribute /
//!    extension-profile identifier is defined,
//! 4. [`Criterion::AttributeValuesValid`] — attribute values obey their
//!    prescribed length, range and shape,
//! 5. [`Criterion::SyntaxSemanticIntegrity`] — message-level and
//!    stream-level semantics: allowed/required attribute sets, response
//!    pairing, retransmission behavior, Allocate ping-pong misuse, SRTCP
//!    trailer requirements.
//!
//! The checker consumes a [`rtc_dpi::CallDissection`] and produces one
//! [`CheckedMessage`] per extracted message; aggregation into the paper's
//! two metrics (volume-based and message-type-based) lives in `rtc-report`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod context;
pub mod findings;
pub mod quic;
pub mod registry;
pub mod rtcp;
pub mod rtp;
pub mod stun;

use rtc_dpi::{CallDissection, CandidateKind, Protocol};
use rtc_pcap::Timestamp;
use rtc_wire::ip::FiveTuple;
use rtc_wire::WireError;

/// The five criteria, in evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Criterion {
    /// 1 — the message type is defined in the specifications.
    MessageTypeDefined,
    /// 2 — header fields are valid.
    HeaderFieldsValid,
    /// 3 — all attribute types are defined.
    AttributeTypesDefined,
    /// 4 — attribute values are valid.
    AttributeValuesValid,
    /// 5 — syntax and semantic integrity.
    SyntaxSemanticIntegrity,
}

impl Criterion {
    /// 1-based index as used in the paper.
    pub fn index(self) -> u8 {
        match self {
            Criterion::MessageTypeDefined => 1,
            Criterion::HeaderFieldsValid => 2,
            Criterion::AttributeTypesDefined => 3,
            Criterion::AttributeValuesValid => 4,
            Criterion::SyntaxSemanticIntegrity => 5,
        }
    }
}

/// A compliance violation: the failing criterion and a human-readable
/// explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The first criterion the message failed.
    pub criterion: Criterion,
    /// What exactly was violated.
    pub detail: String,
    /// When the violation was a wire-grammar failure (the candidate no
    /// longer parsed at judgment time), the underlying parse error —
    /// carries protocol, offset, and reason for the report's taxonomy.
    pub wire: Option<WireError>,
}

/// Coverage probe on violation construction: one rtc-cov slot per failing
/// criterion, so the fuzzer distinguishes *which* of the five criteria an
/// input trips. Compiled out without the `cov-probes` feature.
#[inline]
fn cov_violation(criterion: Criterion) {
    #[cfg(feature = "cov-probes")]
    {
        match criterion {
            Criterion::MessageTypeDefined => rtc_cov::probe!("compliance.violation.c1"),
            Criterion::HeaderFieldsValid => rtc_cov::probe!("compliance.violation.c2"),
            Criterion::AttributeTypesDefined => rtc_cov::probe!("compliance.violation.c3"),
            Criterion::AttributeValuesValid => rtc_cov::probe!("compliance.violation.c4"),
            Criterion::SyntaxSemanticIntegrity => rtc_cov::probe!("compliance.violation.c5"),
        }
    }
    #[cfg(not(feature = "cov-probes"))]
    {
        let _ = criterion;
    }
}

impl Violation {
    /// Construct a violation.
    pub fn new(criterion: Criterion, detail: impl Into<String>) -> Violation {
        cov_violation(criterion);
        Violation { criterion, detail: detail.into(), wire: None }
    }

    /// Construct a violation from a wire-level parse error.
    pub fn from_wire(criterion: Criterion, error: WireError) -> Violation {
        cov_violation(criterion);
        Violation { criterion, detail: error.to_string(), wire: Some(error) }
    }
}

/// The unit of the message-type-based metric: one row of Tables 4/5/6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TypeKey {
    /// A STUN/TURN message type (raw 16-bit value).
    Stun(u16),
    /// A TURN ChannelData frame (the tables list it as one type).
    ChannelData,
    /// An RTP payload type.
    Rtp(u8),
    /// An RTCP packet type.
    Rtcp(u8),
    /// A QUIC long-header packet type (0–3).
    QuicLong(u8),
    /// A QUIC short-header packet.
    QuicShort,
}

impl core::fmt::Display for TypeKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TypeKey::Stun(t) => write!(f, "{t:#06x}"),
            TypeKey::ChannelData => write!(f, "ChannelData"),
            TypeKey::Rtp(pt) => write!(f, "{pt}"),
            TypeKey::Rtcp(pt) => write!(f, "{pt}"),
            TypeKey::QuicLong(t) => write!(f, "long-{t}"),
            TypeKey::QuicShort => write!(f, "short"),
        }
    }
}

/// One judged message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckedMessage {
    /// Protocol family.
    pub protocol: Protocol,
    /// Type key for the message-type metric.
    pub type_key: TypeKey,
    /// Capture time of the carrying datagram.
    pub ts: Timestamp,
    /// The carrying stream.
    pub stream: FiveTuple,
    /// `None` = compliant; otherwise the first violated criterion.
    pub violation: Option<Violation>,
}

impl CheckedMessage {
    /// Whether the message satisfied all five criteria.
    pub fn is_compliant(&self) -> bool {
        self.violation.is_none()
    }
}

/// All judged messages of one call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckedCall {
    /// One entry per DPI-extracted message, in capture order.
    pub messages: Vec<CheckedMessage>,
    /// Fully proprietary datagrams seen alongside (carried through for the
    /// distribution tables).
    pub fully_proprietary_datagrams: usize,
}

impl CheckedCall {
    /// Volume-based compliance ratio over these messages.
    pub fn volume_compliance(&self) -> f64 {
        if self.messages.is_empty() {
            return 1.0;
        }
        self.messages.iter().filter(|m| m.is_compliant()).count() as f64 / self.messages.len() as f64
    }
}

/// Judge one DPI-extracted message against the five criteria.
///
/// The per-message unit shared by the batch [`check_call`] path and the
/// streaming pipeline, which judges each dissected datagram's messages as
/// they arrive once the whole-call [`context::CallContext`] is sealed.
pub fn check_message(
    dgram: &rtc_dpi::DatagramDissection,
    msg: &rtc_dpi::DpiMessage,
    ctx: &context::CallContext,
) -> CheckedMessage {
    let (type_key, violation) = match &msg.kind {
        CandidateKind::Stun { .. } => stun::check_stun(dgram, msg, ctx),
        CandidateKind::ChannelData { .. } => stun::check_channeldata(dgram, msg),
        CandidateKind::Rtp { .. } => rtp::check_rtp(dgram, msg),
        CandidateKind::Rtcp { .. } => rtcp::check_rtcp(dgram, msg),
        CandidateKind::QuicLong { .. } | CandidateKind::QuicShortProbe => quic::check_quic(dgram, msg),
    };
    #[cfg(feature = "cov-probes")]
    {
        if violation.is_none() {
            match msg.protocol {
                Protocol::StunTurn => rtc_cov::probe!("compliance.ok.stun-turn"),
                Protocol::Rtp => rtc_cov::probe!("compliance.ok.rtp"),
                Protocol::Rtcp => rtc_cov::probe!("compliance.ok.rtcp"),
                Protocol::Quic => rtc_cov::probe!("compliance.ok.quic"),
            }
        }
    }
    CheckedMessage { protocol: msg.protocol, type_key, ts: dgram.ts, stream: dgram.stream, violation }
}

/// Judge every message of a dissected call.
pub fn check_call(dissection: &CallDissection) -> CheckedCall {
    let ctx = context::CallContext::build(dissection);
    let mut out = CheckedCall::default();
    for (dgram, msg) in dissection.messages() {
        out.messages.push(check_message(dgram, msg, &ctx));
    }
    out.fully_proprietary_datagrams =
        dissection.datagrams.iter().filter(|d| d.class == rtc_dpi::DatagramClass::FullyProprietary).count();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rtc_dpi::{dissect_call, DpiConfig};
    use rtc_pcap::trace::Datagram;
    use rtc_wire::rtp::PacketBuilder;
    use rtc_wire::stun::{attr, msg_type, MessageBuilder};

    fn dgram(ts_ms: u64, payload: Vec<u8>) -> Datagram {
        Datagram {
            ts: Timestamp::from_millis(ts_ms),
            five_tuple: FiveTuple::udp("10.0.0.1:1000".parse().unwrap(), "1.2.3.4:2000".parse().unwrap()),
            payload: Bytes::from(payload),
        }
    }

    fn check(datagrams: Vec<Datagram>) -> CheckedCall {
        check_call(&dissect_call(&datagrams, &DpiConfig::default()))
    }

    #[test]
    fn compliant_binding_request_passes_all_criteria() {
        let txid: [u8; 12] = [3, 141, 59, 26, 214, 99, 7, 81, 180, 44, 12, 200];
        let msg = MessageBuilder::new(msg_type::BINDING_REQUEST, txid)
            .attribute(attr::PRIORITY, vec![0x6E, 0x00, 0x01, 0xFF])
            .build_with_fingerprint();
        let out = check(vec![dgram(0, msg)]);
        assert_eq!(out.messages.len(), 1);
        assert!(out.messages[0].is_compliant(), "{:?}", out.messages[0].violation);
        assert_eq!(out.messages[0].type_key, TypeKey::Stun(0x0001));
    }

    #[test]
    fn undefined_type_fails_criterion_one() {
        let msg = MessageBuilder::new(0x0800, [9; 12]).attribute(attr::PRIORITY, vec![0, 0, 0, 1]).build();
        let out = check(vec![dgram(0, msg)]);
        let v = out.messages[0].violation.as_ref().unwrap();
        assert_eq!(v.criterion, Criterion::MessageTypeDefined);
    }

    #[test]
    fn undefined_attribute_fails_criterion_three() {
        let msg = MessageBuilder::new(msg_type::BINDING_REQUEST, [9; 12]).attribute(0x4007, vec![1, 2]).build();
        let out = check(vec![dgram(0, msg)]);
        let v = out.messages[0].violation.as_ref().unwrap();
        assert_eq!(v.criterion, Criterion::AttributeTypesDefined);
        assert!(v.detail.contains("0x4007"), "{}", v.detail);
    }

    #[test]
    fn bad_attribute_value_fails_criterion_four() {
        // RESERVATION-TOKEN must be exactly 8 bytes (the paper's example).
        let msg = MessageBuilder::new(msg_type::ALLOCATE_REQUEST, [9; 12])
            .attribute(attr::REQUESTED_TRANSPORT, vec![17, 0, 0, 0])
            .attribute(attr::RESERVATION_TOKEN, vec![1, 2, 3])
            .build();
        let out = check(vec![dgram(0, msg)]);
        let v = out.messages[0].violation.as_ref().unwrap();
        assert_eq!(v.criterion, Criterion::AttributeValuesValid);
    }

    #[test]
    fn evaluation_is_strictly_sequential() {
        // Undefined type AND undefined attribute: only criterion 1 reported.
        let msg = MessageBuilder::new(0x0805, [9; 12]).attribute(0x4007, vec![1]).build();
        let out = check(vec![dgram(0, msg)]);
        assert_eq!(out.messages[0].violation.as_ref().unwrap().criterion, Criterion::MessageTypeDefined);
    }

    #[test]
    fn compliant_rtp_stream() {
        let d: Vec<Datagram> = (0..6)
            .map(|i| dgram(i * 20, PacketBuilder::new(111, 100 + i as u16, 0, 0xAA).payload(vec![0; 60]).build()))
            .collect();
        let out = check(d);
        assert_eq!(out.messages.len(), 6);
        assert!(out.messages.iter().all(|m| m.is_compliant()));
        assert!(out.messages.iter().all(|m| m.type_key == TypeKey::Rtp(111)));
        assert!((out.volume_compliance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn undefined_extension_profile_fails_criterion_three() {
        let d: Vec<Datagram> = (0..6)
            .map(|i| {
                dgram(
                    i * 20,
                    PacketBuilder::new(100, 100 + i as u16, 0, 0xAB)
                        .extension(0x8500, vec![1, 2, 3, 4])
                        .payload(vec![0; 60])
                        .build(),
                )
            })
            .collect();
        let out = check(d);
        for m in &out.messages {
            assert_eq!(m.violation.as_ref().unwrap().criterion, Criterion::AttributeTypesDefined);
        }
    }

    #[test]
    fn reserved_id_zero_extension_fails_criterion_four() {
        let d: Vec<Datagram> = (0..6)
            .map(|i| {
                let mut ext = vec![0x02u8]; // id 0, len 2 → 3 data bytes
                ext.extend_from_slice(&[7, 8, 9]);
                dgram(
                    i * 20,
                    PacketBuilder::new(120, 100 + i as u16, 0, 0xAC)
                        .extension(rtc_wire::rtp::ONE_BYTE_PROFILE, ext)
                        .payload(vec![0; 60])
                        .build(),
                )
            })
            .collect();
        let out = check(d);
        for m in &out.messages {
            assert_eq!(m.violation.as_ref().unwrap().criterion, Criterion::AttributeValuesValid);
        }
    }

    #[test]
    fn volume_compliance_counts() {
        let mut d: Vec<Datagram> = (0..6)
            .map(|i| dgram(i * 20, PacketBuilder::new(111, 100 + i as u16, 0, 0xAA).payload(vec![0; 60]).build()))
            .collect();
        d.push(dgram(200, MessageBuilder::new(0x0800, [9; 12]).build()));
        let out = check(d);
        assert_eq!(out.messages.len(), 7);
        assert!((out.volume_compliance() - 6.0 / 7.0).abs() < 1e-9);
    }
}
