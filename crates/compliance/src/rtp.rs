//! RTP compliance checks.
//!
//! The paper's Table 5 treats the *payload type* as the RTP message type.
//! Every 7-bit payload type is representable and the paper counts even
//! exotic static types (Zoom's PT 0/3/4/…) as compliant, so criterion 1
//! never fires for RTP; the violations it reports come from header
//! extensions — undefined profile identifiers (criterion 3, FaceTime and
//! Discord) and reserved-ID misuse (criterion 4, Discord).

use crate::registry;
use crate::{Criterion, TypeKey, Violation};
use rtc_dpi::{DatagramDissection, DpiMessage};
use rtc_wire::rtp::Packet;

/// Judge one RTP message.
pub fn check_rtp(_dgram: &DatagramDissection, msg: &DpiMessage) -> (TypeKey, Option<Violation>) {
    let parsed = match Packet::new_checked(&msg.data) {
        Ok(p) => p,
        Err(e) => return (TypeKey::Rtp(0), Some(Violation::from_wire(Criterion::HeaderFieldsValid, e))),
    };
    let key = TypeKey::Rtp(parsed.payload_type());

    // Criterion 1: all 7-bit payload types are representable; types 72–79
    // would collide with RTCP, but the DPI demux already excludes them.
    // Criterion 2: version/padding/CSRC consistency is guaranteed by the
    // checked parse above.

    if let Some(ext) = parsed.extension() {
        #[cfg(feature = "cov-probes")]
        {
            if ext.is_one_byte_form() {
                rtc_cov::probe!("compliance.rtp.ext-one-byte");
            } else {
                rtc_cov::probe!("compliance.rtp.ext-two-byte");
            }
        }
        // Criterion 3: the extension mechanism must be a defined one.
        if !registry::rtp_ext_profile_defined(ext.profile) {
            return (
                key,
                Some(Violation::new(
                    Criterion::AttributeTypesDefined,
                    format!("header-extension profile {:#06x} is not defined (RFC 8285)", ext.profile),
                )),
            );
        }
        // Criterion 4: element-level rules.
        if ext.is_one_byte_form() {
            for el in ext.one_byte_elements() {
                if el.id == 0 && (el.wire_len > 0 || !el.data.is_empty()) {
                    return (
                        key,
                        Some(Violation::new(
                            Criterion::AttributeValuesValid,
                            "extension element with reserved ID 0 carries a non-zero length (RFC 8285 §4.2)",
                        )),
                    );
                }
                if el.data.len() != el.wire_len as usize + 1 {
                    return (
                        key,
                        Some(Violation::new(
                            Criterion::AttributeValuesValid,
                            "extension element truncated by the extension boundary",
                        )),
                    );
                }
            }
        } else {
            for el in ext.two_byte_elements() {
                if el.data.len() != el.wire_len as usize {
                    return (
                        key,
                        Some(Violation::new(
                            Criterion::AttributeValuesValid,
                            "two-byte-form element truncated by the extension boundary",
                        )),
                    );
                }
            }
        }
    }

    (key, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rtc_dpi::{CandidateKind, DatagramClass, Protocol};
    use rtc_pcap::Timestamp;
    use rtc_wire::ip::FiveTuple;
    use rtc_wire::rtp::{PacketBuilder, ONE_BYTE_PROFILE};

    fn wrap(data: Vec<u8>) -> (DatagramDissection, DpiMessage) {
        let msg = DpiMessage {
            protocol: Protocol::Rtp,
            kind: CandidateKind::Rtp { ssrc: 1, payload_type: 96, seq: 0 },
            offset: 0,
            data: Bytes::from(data),
            nested: false,
        };
        let dgram = DatagramDissection {
            ts: Timestamp::ZERO,
            stream: FiveTuple::udp("10.0.0.1:1".parse().unwrap(), "1.2.3.4:2".parse().unwrap()),
            payload_len: msg.data.len(),
            messages: vec![],
            prefix: Bytes::new(),
            trailing: Bytes::new(),
            class: DatagramClass::Standard,
            prop_header_len: 0,
        };
        (dgram, msg)
    }

    #[test]
    fn plain_rtp_is_compliant() {
        let (d, m) = wrap(PacketBuilder::new(111, 1, 2, 3).payload(vec![0; 40]).build());
        let (key, v) = check_rtp(&d, &m);
        assert_eq!(key, TypeKey::Rtp(111));
        assert!(v.is_none());
    }

    #[test]
    fn compliant_one_byte_extension() {
        let (d, m) = wrap(
            PacketBuilder::new(111, 1, 2, 3)
                .one_byte_extension(&[(1, &[0x30]), (3, &[1, 2])])
                .payload(vec![0; 40])
                .build(),
        );
        assert!(check_rtp(&d, &m).1.is_none());
    }

    #[test]
    fn undefined_profile_fails() {
        let (d, m) =
            wrap(PacketBuilder::new(104, 1, 2, 3).extension(0x8D00, vec![1, 2, 3, 4]).payload(vec![0; 40]).build());
        let v = check_rtp(&d, &m).1.unwrap();
        assert_eq!(v.criterion, Criterion::AttributeTypesDefined);
        assert!(v.detail.contains("0x8d00"), "{}", v.detail);
    }

    #[test]
    fn reserved_id_zero_fails() {
        let mut data = vec![0x02u8];
        data.extend_from_slice(&[7, 8, 9]);
        let (d, m) =
            wrap(PacketBuilder::new(120, 1, 2, 3).extension(ONE_BYTE_PROFILE, data).payload(vec![0; 4]).build());
        let v = check_rtp(&d, &m).1.unwrap();
        assert_eq!(v.criterion, Criterion::AttributeValuesValid);
    }

    #[test]
    fn zoom_static_payload_types_are_compliant() {
        for pt in [0u8, 3, 13, 33, 95, 110, 127] {
            let (d, m) = wrap(PacketBuilder::new(pt, 1, 2, 3).payload(vec![0; 20]).build());
            let (key, v) = check_rtp(&d, &m);
            assert_eq!(key, TypeKey::Rtp(pt));
            assert!(v.is_none(), "pt {pt}");
        }
    }
}
