//! RTCP / SRTCP compliance checks.
//!
//! Two regimes per carrying datagram, decided by its trailing bytes:
//!
//! * **Plaintext RTCP** (no trailing bytes): the packet bodies are visible,
//!   so structure (count vs. length, SDES item walking, feedback formats)
//!   is fully verified.
//! * **SRTCP** (trailing bytes parse as an RFC 3711 trailer): the body
//!   beyond the first 8 bytes is ciphertext, so only the plaintext header
//!   and the trailer are judged. RFC 3711 §3.4 makes the authentication
//!   tag mandatory — Google Meet's relayed-Wi-Fi messages omit it (a
//!   criterion-4 violation, §5.2.3).
//!
//! Trailing bytes that are *not* a plausible SRTCP trailer (e.g. Discord's
//! 3-byte counter + direction flag, §5.2.3/§5.3) are undefined syntax — a
//! criterion-5 violation.

use crate::registry;
use crate::{Criterion, TypeKey, Violation};
use rtc_dpi::{DatagramDissection, DpiMessage};
use rtc_wire::rtcp::{self, Packet};

/// How the carrying datagram's trailing bytes classify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrailerKind {
    /// No trailing bytes: plaintext RTCP.
    None,
    /// An SRTCP trailer with the given auth-tag length.
    Srtcp {
        /// Bytes of authentication tag following the 4-byte index word.
        auth_tag_len: usize,
    },
    /// Trailing bytes that match no defined trailer syntax.
    Undefined {
        /// How many trailing bytes were left unexplained.
        len: usize,
    },
}

/// Classify a datagram's trailing bytes.
pub fn classify_trailer(trailing: &[u8]) -> TrailerKind {
    #[cfg(feature = "cov-probes")]
    {
        match trailing.len() {
            0 => rtc_cov::probe!("compliance.trailer.none"),
            4 | 8 | 14 | 20 => rtc_cov::probe!("compliance.trailer.srtcp"),
            _ => rtc_cov::probe!("compliance.trailer.undefined"),
        }
    }
    match trailing.len() {
        0 => TrailerKind::None,
        // An SRTCP trailer is the 4-byte E||index word plus an
        // authentication tag. Plausible tags are 0 (the violation the paper
        // observed), 4 (HMAC-SHA1-32), 10 (HMAC-SHA1-80, default) or 16
        // (GCM); anything else is not SRTCP.
        4 => TrailerKind::Srtcp { auth_tag_len: 0 },
        8 => TrailerKind::Srtcp { auth_tag_len: 4 },
        14 => TrailerKind::Srtcp { auth_tag_len: 10 },
        20 => TrailerKind::Srtcp { auth_tag_len: 16 },
        n => TrailerKind::Undefined { len: n },
    }
}

/// Judge one RTCP packet.
pub fn check_rtcp(dgram: &DatagramDissection, msg: &DpiMessage) -> (TypeKey, Option<Violation>) {
    let parsed = match Packet::new_checked(&msg.data) {
        Ok(p) => p,
        Err(e) => return (TypeKey::Rtcp(0), Some(Violation::from_wire(Criterion::HeaderFieldsValid, e))),
    };
    let pt = parsed.packet_type();
    let key = TypeKey::Rtcp(pt);

    // Criterion 1: packet type defined.
    if !registry::rtcp_type_defined(pt) {
        return (
            key,
            Some(Violation::new(Criterion::MessageTypeDefined, format!("RTCP packet type {pt} is not defined"))),
        );
    }

    // Criterion 2: header consistency — the count field must fit the
    // declared length (these header fields stay in the clear even under
    // SRTCP).
    let body_len = parsed.body().len();
    let count = parsed.count() as usize;
    let min_body = match pt {
        200 => 24 + 24 * count,
        201 => 4 + 24 * count,
        202 => 4 * count, // at least an SSRC per chunk
        203 => 4 * count,
        204 => 8,
        205 | 206 => 8,
        _ => 4,
    };
    if body_len < min_body {
        return (
            key,
            Some(Violation::new(
                Criterion::HeaderFieldsValid,
                format!("count field {count} inconsistent with packet length ({body_len} body bytes)"),
            )),
        );
    }

    let trailer = classify_trailer(&dgram.trailing);
    let encrypted = matches!(trailer, TrailerKind::Srtcp { .. });
    #[cfg(feature = "cov-probes")]
    {
        if encrypted {
            rtc_cov::probe!("compliance.rtcp.srtcp-regime");
        }
    }

    // Criteria 3/4 on packet internals — only meaningful in plaintext.
    if !encrypted {
        match pt {
            202 => match rtcp::Sdes::parse(&parsed) {
                Ok(sdes) => {
                    for chunk in &sdes.chunks {
                        for (item, _) in &chunk.items {
                            if !registry::sdes_item_defined(*item) {
                                return (
                                    key,
                                    Some(Violation::new(
                                        Criterion::AttributeTypesDefined,
                                        format!("SDES item type {item} is not defined"),
                                    )),
                                );
                            }
                        }
                    }
                }
                Err(_) => {
                    return (
                        key,
                        Some(Violation::new(
                            Criterion::AttributeValuesValid,
                            "SDES chunks do not walk to the declared length",
                        )),
                    )
                }
            },
            204 => {
                let body = parsed.body();
                if body.len() >= 8 && !body[4..8].iter().all(|b| b.is_ascii_graphic() || *b == b' ') {
                    return (
                        key,
                        Some(Violation::new(
                            Criterion::AttributeValuesValid,
                            "APP name field is not four ASCII characters",
                        )),
                    );
                }
            }
            205 if !registry::rtpfb_fmt_defined(parsed.count()) => {
                return (
                    key,
                    Some(Violation::new(
                        Criterion::AttributeTypesDefined,
                        format!("RTPFB feedback message type {} is not defined", parsed.count()),
                    )),
                );
            }
            206 if !registry::psfb_fmt_defined(parsed.count()) => {
                return (
                    key,
                    Some(Violation::new(
                        Criterion::AttributeTypesDefined,
                        format!("PSFB feedback message type {} is not defined", parsed.count()),
                    )),
                );
            }
            207 => {
                // Walk XR blocks: type(1) reserved(1) length(2 words).
                let body = parsed.body();
                let mut o = 4;
                while o + 4 <= body.len() {
                    let block = body[o];
                    if !registry::xr_block_defined(block) {
                        return (
                            key,
                            Some(Violation::new(
                                Criterion::AttributeTypesDefined,
                                format!("XR block type {block} is not defined"),
                            )),
                        );
                    }
                    let words = u16::from_be_bytes([body[o + 2], body[o + 3]]) as usize;
                    o += 4 + 4 * words;
                }
            }
            _ => {}
        }
    }

    // Criterion 4 (SRTCP): the authentication tag is mandatory (RFC 3711).
    if let TrailerKind::Srtcp { auth_tag_len } = trailer {
        if auth_tag_len == 0 {
            return (
                key,
                Some(Violation::new(
                    Criterion::AttributeValuesValid,
                    "SRTCP trailer carries no authentication tag (RFC 3711 §3.4 requires one)",
                )),
            );
        }
    }

    // Criterion 5: unexplained trailing bytes after the compound.
    if let TrailerKind::Undefined { len } = trailer {
        return (
            key,
            Some(Violation::new(
                Criterion::SyntaxSemanticIntegrity,
                format!("{len} trailing byte(s) after the RTCP compound match no defined trailer"),
            )),
        );
    }

    (key, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rtc_dpi::{CandidateKind, DatagramClass, Protocol};
    use rtc_pcap::Timestamp;
    use rtc_wire::ip::FiveTuple;

    fn wrap(data: Vec<u8>, trailing: Vec<u8>) -> (DatagramDissection, DpiMessage) {
        let msg = DpiMessage {
            protocol: Protocol::Rtcp,
            kind: CandidateKind::Rtcp { packet_type: data[1], count: data[0] & 0x1F },
            offset: 0,
            data: Bytes::from(data),
            nested: false,
        };
        let dgram = DatagramDissection {
            ts: Timestamp::ZERO,
            stream: FiveTuple::udp("10.0.0.1:1".parse().unwrap(), "1.2.3.4:2".parse().unwrap()),
            payload_len: 0,
            messages: vec![],
            prefix: Bytes::new(),
            trailing: Bytes::from(trailing),
            class: DatagramClass::Standard,
            prop_header_len: 0,
        };
        (dgram, msg)
    }

    fn sample_sr() -> Vec<u8> {
        rtcp::SenderReport {
            ssrc: 7,
            ntp_timestamp: 1,
            rtp_timestamp: 2,
            packet_count: 3,
            octet_count: 4,
            reports: vec![],
        }
        .build()
    }

    #[test]
    fn plaintext_sr_is_compliant() {
        let (d, m) = wrap(sample_sr(), vec![]);
        let (key, v) = check_rtcp(&d, &m);
        assert_eq!(key, TypeKey::Rtcp(200));
        assert!(v.is_none());
    }

    #[test]
    fn srtcp_with_tag_is_compliant() {
        let trailer = rtcp::SrtcpTrailer { encrypted: true, index: 9, auth_tag_len: 10 }.build(1);
        let (d, m) = wrap(sample_sr(), trailer);
        assert!(check_rtcp(&d, &m).1.is_none());
    }

    #[test]
    fn srtcp_missing_tag_fails_criterion_four() {
        let trailer = rtcp::SrtcpTrailer { encrypted: true, index: 9, auth_tag_len: 0 }.build(1);
        let (d, m) = wrap(sample_sr(), trailer);
        let v = check_rtcp(&d, &m).1.unwrap();
        assert_eq!(v.criterion, Criterion::AttributeValuesValid);
        assert!(v.detail.contains("authentication tag"));
    }

    #[test]
    fn discord_three_byte_trailer_fails_criterion_five() {
        let (d, m) = wrap(sample_sr(), vec![0x00, 0x2A, 0x80]);
        let v = check_rtcp(&d, &m).1.unwrap();
        assert_eq!(v.criterion, Criterion::SyntaxSemanticIntegrity);
    }

    #[test]
    fn count_length_mismatch_fails_criterion_two() {
        // SR claiming 2 report blocks but carrying none.
        let mut sr = sample_sr();
        sr[0] = (sr[0] & 0xE0) | 2;
        let (d, m) = wrap(sr, vec![]);
        let v = check_rtcp(&d, &m).1.unwrap();
        assert_eq!(v.criterion, Criterion::HeaderFieldsValid);
    }

    #[test]
    fn undefined_fb_fmt_fails_criterion_three() {
        let fb = rtcp::Feedback {
            packet_type: rtcp::packet_type::RTPFB,
            fmt: 12, // unassigned
            sender_ssrc: 1,
            media_ssrc: 2,
            fci: vec![0; 4],
        }
        .build();
        let (d, m) = wrap(fb, vec![]);
        let v = check_rtcp(&d, &m).1.unwrap();
        assert_eq!(v.criterion, Criterion::AttributeTypesDefined);
    }

    #[test]
    fn scrambled_sdes_under_srtcp_is_not_penalized() {
        // A type-202 packet with ciphertext body but a full SRTCP trailer.
        let mut body = 7u32.to_be_bytes().to_vec();
        body.extend_from_slice(&[0xA7; 12]); // ciphertext
        let pkt = rtcp::build_raw(1, 202, &body);
        let trailer = rtcp::SrtcpTrailer { encrypted: true, index: 3, auth_tag_len: 10 }.build(2);
        let (d, m) = wrap(pkt, trailer);
        assert!(check_rtcp(&d, &m).1.is_none());
    }

    #[test]
    fn scrambled_sdes_in_plaintext_fails() {
        let mut body = 7u32.to_be_bytes().to_vec();
        body.extend_from_slice(&[0xA7; 12]);
        let pkt = rtcp::build_raw(1, 202, &body);
        let (d, m) = wrap(pkt, vec![]);
        assert!(check_rtcp(&d, &m).1.is_some());
    }
}
