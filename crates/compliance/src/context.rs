//! Stream-context analysis feeding the contextual criteria.
//!
//! Three of the paper's checks cannot be decided from a single message:
//!
//! * *sequential transaction IDs* (criterion 2's example): Messenger's
//!   Binding Requests count up instead of being random,
//! * *over-retransmission* (criterion 5): FaceTime re-sends the same
//!   Binding Request — identical transaction ID — once per second for a
//!   minute with no response; RFC 8489 §6.2.1 allows at most 7
//!   transmissions of a request,
//! * *Allocate ping-pong* (criterion 5's example): Google Meet repurposes
//!   Allocate Requests as a periodic connectivity check.

use rtc_dpi::{CallDissection, CandidateKind, DatagramDissection, DpiMessage};
use rtc_wire::ip::FiveTuple;
use rtc_wire::stun::{msg_type, Message, MessageClass};
use std::collections::{HashMap, HashSet};

/// Key identifying a STUN message occurrence for context flags.
pub type StunKey = (FiveTuple, [u8; 12]);

/// Context facts consulted by the STUN checker.
#[derive(Debug, Default)]
pub struct CallContext {
    /// Requests whose transaction IDs form a sequential run.
    pub sequential_txids: HashSet<StunKey>,
    /// Requests retransmitted with one transaction ID more than the RFC's
    /// 7-transmission budget, without any response.
    pub over_retransmitted: HashSet<StunKey>,
    /// Allocate Requests that are part of a ping-pong pattern (repeated
    /// Allocates after the stream already completed an allocation).
    pub pingpong_allocates: HashSet<StunKey>,
}

impl CallContext {
    /// Analyze all STUN messages of a dissected call.
    ///
    /// Thin wrapper over the incremental [`CallContextBuilder`].
    pub fn build(dissection: &CallDissection) -> CallContext {
        let mut builder = CallContextBuilder::default();
        for (dgram, msg) in dissection.messages() {
            builder.observe(dgram, msg);
        }
        builder.finish()
    }
}

/// One STUN request observation, in capture order.
struct Obs {
    txid: [u8; 12],
    message_type: u16,
}

/// Incrementally gathers the per-stream request/response observations the
/// [`CallContext`] analyses need: call [`observe`] per extracted message as
/// dissections stream by, then [`finish`] once the call is complete.
///
/// The three contextual checks (sequential transaction IDs,
/// over-retransmission, Allocate ping-pong) are whole-call properties —
/// the builder carries compact observations instead of re-walking a
/// materialized dissection list.
///
/// [`observe`]: CallContextBuilder::observe
/// [`finish`]: CallContextBuilder::finish
#[derive(Default)]
pub struct CallContextBuilder {
    requests: HashMap<FiveTuple, Vec<Obs>>,
    responded: HashSet<StunKey>,
    allocate_successes: HashMap<FiveTuple, usize>,
}

impl CallContextBuilder {
    /// Record one extracted message, in capture order. Non-STUN messages
    /// are ignored.
    pub fn observe(&mut self, dgram: &DatagramDissection, msg: &DpiMessage) {
        let CandidateKind::Stun { message_type, .. } = msg.kind else {
            return;
        };
        let Ok(parsed) = Message::new_checked(&msg.data) else {
            return;
        };
        let mut txid = [0u8; 12];
        txid.copy_from_slice(parsed.transaction_id());
        match parsed.class() {
            MessageClass::Request => {
                self.requests.entry(dgram.stream).or_default().push(Obs { txid, message_type });
            }
            MessageClass::SuccessResponse | MessageClass::ErrorResponse => {
                // A response pairs with the request on the reverse tuple.
                self.responded.insert((dgram.stream.reversed(), txid));
                if message_type == msg_type::ALLOCATE_SUCCESS {
                    *self.allocate_successes.entry(dgram.stream.reversed()).or_default() += 1;
                }
            }
            MessageClass::Indication => {}
        }
    }

    /// Run the whole-call analyses over the gathered observations.
    pub fn finish(self) -> CallContext {
        let CallContextBuilder { requests, responded, allocate_successes } = self;
        let mut ctx = CallContext::default();
        for (stream, obs) in &requests {
            // --- Over-retransmission: one txid used more than 7 times, never
            // answered.
            let mut by_txid: HashMap<[u8; 12], usize> = HashMap::new();
            for o in obs {
                *by_txid.entry(o.txid).or_default() += 1;
            }
            for (txid, n) in by_txid {
                if n > 7 && !responded.contains(&(*stream, txid)) {
                    ctx.over_retransmitted.insert((*stream, txid));
                }
            }

            // --- Sequential transaction IDs: interpret the trailing 8 bytes
            // as a counter; a run of ≥ 3 unit increments flags the whole run.
            let mut run: Vec<[u8; 12]> = Vec::new();
            let mut prev: Option<u64> = None;
            let flush = |run: &mut Vec<[u8; 12]>, ctx: &mut CallContext| {
                if run.len() >= 4 {
                    for t in run.iter() {
                        ctx.sequential_txids.insert((*stream, *t));
                    }
                }
                run.clear();
            };
            for o in obs {
                let v = u64::from_be_bytes(o.txid[4..12].try_into().expect("8 bytes"));
                match prev {
                    Some(p) if v == p.wrapping_add(1) => run.push(o.txid),
                    _ => {
                        flush(&mut run, &mut ctx);
                        run.push(o.txid);
                    }
                }
                prev = Some(v);
            }
            flush(&mut run, &mut ctx);

            // --- Allocate ping-pong: Allocate Requests sent after the stream
            // already completed a successful allocation are connectivity
            // checks in disguise. The setup handshake may legitimately retry
            // (e.g. a 401 credentials round), so only post-success Allocates
            // are flagged, and only when they recur.
            let successes = allocate_successes.get(stream).copied().unwrap_or(0);
            if successes >= 2 {
                let allocs: Vec<&Obs> = obs.iter().filter(|o| o.message_type == msg_type::ALLOCATE_REQUEST).collect();
                if allocs.len() >= 3 {
                    for o in allocs.iter().skip(1) {
                        ctx.pingpong_allocates.insert((*stream, o.txid));
                    }
                }
            }
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rtc_dpi::{dissect_call, DpiConfig};
    use rtc_pcap::trace::Datagram;
    use rtc_pcap::Timestamp;
    use rtc_wire::stun::MessageBuilder;

    fn stream() -> FiveTuple {
        FiveTuple::udp("10.0.0.1:1000".parse().unwrap(), "1.2.3.4:3478".parse().unwrap())
    }

    fn dgram(ts_ms: u64, tuple: FiveTuple, payload: Vec<u8>) -> Datagram {
        Datagram { ts: Timestamp::from_millis(ts_ms), five_tuple: tuple, payload: Bytes::from(payload) }
    }

    fn ctx_of(datagrams: Vec<Datagram>) -> CallContext {
        CallContext::build(&dissect_call(&datagrams, &DpiConfig::default()))
    }

    #[test]
    fn sequential_txids_flagged() {
        let mut d = Vec::new();
        for i in 0..6u64 {
            let mut txid = [0u8; 12];
            txid[4..].copy_from_slice(&(1000 + i).to_be_bytes());
            d.push(dgram(i * 100, stream(), MessageBuilder::new(0x0001, txid).build()));
        }
        let ctx = ctx_of(d);
        assert_eq!(ctx.sequential_txids.len(), 6);
    }

    #[test]
    fn random_txids_not_flagged() {
        let mut d = Vec::new();
        for i in 0..6u64 {
            let mut txid = [0u8; 12];
            txid[4..].copy_from_slice(&(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).to_be_bytes());
            d.push(dgram(i * 100, stream(), MessageBuilder::new(0x0001, txid).build()));
        }
        let ctx = ctx_of(d);
        assert!(ctx.sequential_txids.is_empty());
    }

    #[test]
    fn over_retransmission_without_response() {
        let txid = [7u8; 12];
        let d: Vec<Datagram> =
            (0..10).map(|i| dgram(i * 1000, stream(), MessageBuilder::new(0x0001, txid).build())).collect();
        let ctx = ctx_of(d);
        assert!(ctx.over_retransmitted.contains(&(stream(), txid)));
    }

    #[test]
    fn answered_retransmissions_are_legal() {
        let txid = [7u8; 12];
        let mut d: Vec<Datagram> =
            (0..10).map(|i| dgram(i * 1000, stream(), MessageBuilder::new(0x0001, txid).build())).collect();
        let resp = MessageBuilder::new(0x0101, txid)
            .attribute(rtc_wire::stun::attr::XOR_MAPPED_ADDRESS, vec![0, 1, 0, 80, 1, 2, 3, 4])
            .build();
        d.push(dgram(20_000, stream().reversed(), resp));
        let ctx = ctx_of(d);
        assert!(ctx.over_retransmitted.is_empty());
    }

    #[test]
    fn allocate_pingpong_detection() {
        let mut d = Vec::new();
        let mk_alloc = |txid: [u8; 12]| {
            MessageBuilder::new(0x0003, txid)
                .attribute(rtc_wire::stun::attr::REQUESTED_TRANSPORT, vec![17, 0, 0, 0])
                .build()
        };
        let mk_success = |txid: [u8; 12]| {
            MessageBuilder::new(0x0103, txid)
                .attribute(rtc_wire::stun::attr::XOR_RELAYED_ADDRESS, vec![0, 1, 0, 80, 9, 9, 9, 9])
                .attribute(rtc_wire::stun::attr::XOR_MAPPED_ADDRESS, vec![0, 1, 0, 81, 9, 9, 9, 8])
                .attribute(rtc_wire::stun::attr::LIFETIME, vec![0, 0, 2, 88])
                .build()
        };
        for i in 0..5u8 {
            let txid = [i + 1; 12];
            d.push(dgram(i as u64 * 5000, stream(), mk_alloc(txid)));
            d.push(dgram(i as u64 * 5000 + 50, stream().reversed(), mk_success(txid)));
        }
        let ctx = ctx_of(d);
        assert_eq!(ctx.pingpong_allocates.len(), 4, "all but the first allocate flagged");
        assert!(!ctx.pingpong_allocates.contains(&(stream(), [1; 12])));
    }

    #[test]
    fn single_allocation_not_flagged() {
        let txid = [1u8; 12];
        let d = vec![
            dgram(
                0,
                stream(),
                MessageBuilder::new(0x0003, txid)
                    .attribute(rtc_wire::stun::attr::REQUESTED_TRANSPORT, vec![17, 0, 0, 0])
                    .build(),
            ),
            dgram(
                50,
                stream().reversed(),
                MessageBuilder::new(0x0103, txid)
                    .attribute(rtc_wire::stun::attr::XOR_RELAYED_ADDRESS, vec![0, 1, 0, 80, 9, 9, 9, 9])
                    .build(),
            ),
        ];
        let ctx = ctx_of(d);
        assert!(ctx.pingpong_allocates.is_empty());
    }
}
