//! RFC registries: the "defined in the specifications" ground truth the
//! criteria consult.
//!
//! The paper counts an element as defined if *any* officially published RFC
//! defines it (STUN has three generations: RFC 3489, 5389, 8489; TURN two:
//! RFC 5766, 8656) or if it comes from publicly documented WebRTC
//! extensions (§4.2 "public WebRTC documentations and RFCs"); the
//! GOOG-PING method and GOOG-NETWORK-INFO attribute fall in the latter
//! bucket, which is how Google Meet's 0x0200/0x0300 exchanges count as
//! compliant in Table 4.

use rtc_wire::stun::{attr, family, msg_type};

/// Whether a STUN/TURN 16-bit message type is defined.
pub fn stun_type_defined(message_type: u16) -> bool {
    use msg_type::*;
    matches!(
        message_type,
        // STUN binding (RFC 3489 / 5389 / 8489).
        BINDING_REQUEST | BINDING_INDICATION | BINDING_SUCCESS | BINDING_ERROR
        // RFC 3489 shared-secret family (deprecated but published).
        | SHARED_SECRET_REQUEST | SHARED_SECRET_SUCCESS | SHARED_SECRET_ERROR
        // TURN (RFC 5766 / 8656).
        | ALLOCATE_REQUEST | ALLOCATE_SUCCESS | ALLOCATE_ERROR
        | REFRESH_REQUEST | REFRESH_SUCCESS | REFRESH_ERROR
        | SEND_INDICATION | DATA_INDICATION
        | CREATE_PERMISSION_REQUEST | CREATE_PERMISSION_SUCCESS | CREATE_PERMISSION_ERROR
        | CHANNEL_BIND_REQUEST | CHANNEL_BIND_SUCCESS | CHANNEL_BIND_ERROR
        // TURN-TCP (RFC 6062): Connect / ConnectionBind / ConnectionAttempt.
        | 0x000A | 0x010A | 0x011A | 0x000B | 0x010B | 0x011B | 0x001C
        // GOOG-PING (libwebrtc, publicly documented).
        | GOOG_PING_REQUEST | GOOG_PING_SUCCESS
    )
}

/// Whether a STUN/TURN attribute type is defined.
pub fn stun_attr_defined(attr_type: u16) -> bool {
    use attr::*;
    matches!(
        attr_type,
        MAPPED_ADDRESS | RESPONSE_ADDRESS | CHANGE_REQUEST | SOURCE_ADDRESS | CHANGED_ADDRESS
            | USERNAME | PASSWORD | MESSAGE_INTEGRITY | ERROR_CODE | UNKNOWN_ATTRIBUTES
            | REFLECTED_FROM | CHANNEL_NUMBER | LIFETIME | XOR_PEER_ADDRESS | DATA | REALM
            | NONCE | XOR_RELAYED_ADDRESS | REQUESTED_ADDRESS_FAMILY | EVEN_PORT
            | REQUESTED_TRANSPORT | DONT_FRAGMENT | MESSAGE_INTEGRITY_SHA256 | PASSWORD_ALGORITHM
            | USERHASH | XOR_MAPPED_ADDRESS | RESERVATION_TOKEN | PRIORITY | USE_CANDIDATE
            | PADDING | RESPONSE_PORT | CONNECTION_ID | ADDITIONAL_ADDRESS_FAMILY
            | ADDRESS_ERROR_CODE | PASSWORD_ALGORITHMS | ALTERNATE_DOMAIN | ICMP | SOFTWARE
            | ALTERNATE_SERVER | FINGERPRINT | ICE_CONTROLLED | ICE_CONTROLLING | RESPONSE_ORIGIN
            | OTHER_ADDRESS | GOOG_NETWORK_INFO
            // RFC 5780 NAT-behavior discovery: CACHE-TIMEOUT.
            | 0x8027
            // draft-thatcher-ice-renomination (public WebRTC usage): NOMINATION.
            | 0x0030
    )
}

/// Validate a defined attribute's value shape (criterion 4). Returns a
/// description of the problem, or `None` if valid.
pub fn stun_attr_value_problem(attr_type: u16, value: &[u8]) -> Option<String> {
    use attr::*;
    let fixed = |n: usize| -> Option<String> {
        (value.len() != n).then(|| format!("expected {n} bytes, got {}", value.len()))
    };
    match attr_type {
        MAPPED_ADDRESS | RESPONSE_ADDRESS | SOURCE_ADDRESS | CHANGED_ADDRESS | REFLECTED_FROM | ALTERNATE_SERVER
        | XOR_MAPPED_ADDRESS | XOR_PEER_ADDRESS | XOR_RELAYED_ADDRESS | RESPONSE_ORIGIN | OTHER_ADDRESS => {
            address_value_problem(value)
        }
        CHANNEL_NUMBER => {
            if value.len() != 4 {
                return Some(format!("CHANNEL-NUMBER must be 4 bytes, got {}", value.len()));
            }
            let channel = u16::from_be_bytes([value[0], value[1]]);
            if !(0x4000..=0x4FFF).contains(&channel) {
                return Some(format!("channel number {channel:#06x} outside 0x4000-0x4FFF"));
            }
            None
        }
        LIFETIME | PRIORITY | FINGERPRINT | RESPONSE_PORT => fixed(4),
        REQUESTED_TRANSPORT => {
            fixed(4).or_else(|| (value[0] != 17).then(|| format!("transport protocol {} is not UDP", value[0])))
        }
        REQUESTED_ADDRESS_FAMILY => fixed(4).or_else(|| {
            (value[0] != family::IPV4 && value[0] != family::IPV6)
                .then(|| format!("address family {:#04x}", value[0]))
        }),
        ERROR_CODE => {
            if value.len() < 4 {
                return Some("ERROR-CODE shorter than 4 bytes".into());
            }
            let class = value[2] & 0x07;
            let number = value[3];
            if !(3..=6).contains(&class) || number > 99 {
                return Some(format!("error code {}{:02}", class, number));
            }
            None
        }
        MESSAGE_INTEGRITY => fixed(20),
        MESSAGE_INTEGRITY_SHA256 => (value.len() < 16 || value.len() > 32 || !value.len().is_multiple_of(4))
            .then(|| format!("SHA256 integrity length {}", value.len())),
        RESERVATION_TOKEN => fixed(8),
        EVEN_PORT => fixed(1),
        USE_CANDIDATE | DONT_FRAGMENT => fixed(0),
        ICE_CONTROLLED | ICE_CONTROLLING => fixed(8),
        CONNECTION_ID => fixed(4),
        USERNAME => (value.len() > 513).then(|| "USERNAME longer than 513 bytes".into()),
        REALM | NONCE | SOFTWARE | ALTERNATE_DOMAIN => {
            (value.len() > 763).then(|| "value longer than 763 bytes".into())
        }
        _ => None,
    }
}

fn address_value_problem(value: &[u8]) -> Option<String> {
    if value.len() < 4 {
        return Some("address attribute shorter than 4 bytes".into());
    }
    match value[1] {
        family::IPV4 if value.len() == 8 => None,
        family::IPV6 if value.len() == 20 => None,
        family::IPV4 | family::IPV6 => {
            Some(format!("address length {} does not match family {:#04x}", value.len(), value[1]))
        }
        other => Some(format!("address family {other:#04x} (must be 0x01 or 0x02)")),
    }
}

/// The attribute set a message type permits, or `None` when unrestricted.
///
/// RFC 8656 is strict for indications: a Data Indication carries exactly
/// XOR-PEER-ADDRESS and DATA (plus ICMP per RFC 8656 §11.5), a Send
/// Indication XOR-PEER-ADDRESS, DATA and DONT-FRAGMENT. Other types accept
/// the general STUN attribute vocabulary, so they are unrestricted here.
pub fn stun_allowed_attrs(message_type: u16) -> Option<&'static [u16]> {
    match message_type {
        msg_type::DATA_INDICATION => Some(&[attr::XOR_PEER_ADDRESS, attr::DATA, attr::ICMP]),
        msg_type::SEND_INDICATION => Some(&[attr::XOR_PEER_ADDRESS, attr::DATA, attr::DONT_FRAGMENT]),
        _ => None,
    }
}

/// Attributes a message type requires.
pub fn stun_required_attrs(message_type: u16) -> &'static [u16] {
    match message_type {
        msg_type::BINDING_SUCCESS => &[attr::XOR_MAPPED_ADDRESS],
        msg_type::ALLOCATE_REQUEST => &[attr::REQUESTED_TRANSPORT],
        msg_type::ALLOCATE_SUCCESS => &[attr::XOR_RELAYED_ADDRESS, attr::LIFETIME, attr::XOR_MAPPED_ADDRESS],
        msg_type::REFRESH_SUCCESS => &[attr::LIFETIME],
        msg_type::CHANNEL_BIND_REQUEST => &[attr::CHANNEL_NUMBER, attr::XOR_PEER_ADDRESS],
        msg_type::CREATE_PERMISSION_REQUEST => &[attr::XOR_PEER_ADDRESS],
        msg_type::SEND_INDICATION | msg_type::DATA_INDICATION => &[attr::XOR_PEER_ADDRESS, attr::DATA],
        msg_type::BINDING_ERROR
        | msg_type::ALLOCATE_ERROR
        | msg_type::REFRESH_ERROR
        | msg_type::CREATE_PERMISSION_ERROR
        | msg_type::CHANNEL_BIND_ERROR => &[attr::ERROR_CODE],
        _ => &[],
    }
}

/// Whether an RTCP packet type is defined (RFC 3550 / 4585 / 3611, plus the
/// pre-AVPF FIR/NACK codepoints of RFC 2032).
pub fn rtcp_type_defined(packet_type: u8) -> bool {
    matches!(packet_type, 192 | 193 | 200..=207)
}

/// Whether an SDES item type is defined (RFC 3550 §6.5).
pub fn sdes_item_defined(item: u8) -> bool {
    (1..=8).contains(&item)
}

/// Whether an RTPFB feedback message type is defined (RFC 4585 / 5104 /
/// 6051 / 6285 / 6642 / 8888 + the widely documented transport-cc FMT 15).
pub fn rtpfb_fmt_defined(fmt: u8) -> bool {
    matches!(fmt, 1 | 3 | 4 | 5 | 6 | 7 | 8 | 9 | 10 | 11 | 15)
}

/// Whether a PSFB feedback message type is defined (RFC 4585 / 5104 + AFB).
pub fn psfb_fmt_defined(fmt: u8) -> bool {
    matches!(fmt, 1..=9 | 15)
}

/// Whether an XR block type is defined (RFC 3611 and extensions).
pub fn xr_block_defined(block: u8) -> bool {
    (1..=14).contains(&block)
}

/// Whether an RTP extension profile identifier selects a defined mechanism
/// (RFC 8285 one-byte 0xBEDE or two-byte 0x100x forms).
pub fn rtp_ext_profile_defined(profile: u16) -> bool {
    profile == rtc_wire::rtp::ONE_BYTE_PROFILE || rtc_wire::rtp::TWO_BYTE_PROFILE_RANGE.contains(&profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_type_vocabulary() {
        // Defined types from Table 4's compliant columns.
        for t in [
            0x0001u16, 0x0003, 0x0004, 0x0008, 0x0009, 0x0016, 0x0017, 0x0101, 0x0103, 0x0104, 0x0108, 0x0109,
            0x0113, 0x0118, 0x0200, 0x0300, 0x0002,
        ] {
            assert!(stun_type_defined(t), "{t:#06x} should be defined");
        }
        // Undefined types from the non-compliant columns.
        for t in [0x0800u16, 0x0801, 0x0802, 0x0803, 0x0804, 0x0805] {
            assert!(!stun_type_defined(t), "{t:#06x} should be undefined");
        }
    }

    #[test]
    fn paper_attribute_vocabulary() {
        for a in [0x4000u16, 0x4003, 0x4004, 0x4007, 0x8007, 0x8008, 0x0101, 0x0103] {
            assert!(!stun_attr_defined(a), "{a:#06x} should be undefined");
        }
        for a in [0x0001u16, 0x0020, 0x8023, 0x8028, 0xC057] {
            assert!(stun_attr_defined(a), "{a:#06x} should be defined");
        }
    }

    #[test]
    fn address_family_rules() {
        assert!(address_value_problem(&[0, 1, 0, 80, 1, 2, 3, 4]).is_none());
        assert!(address_value_problem(&[0, 0, 0, 80, 1, 2, 3, 4]).is_some()); // family 0x00
        assert!(address_value_problem(&[0, 1, 0, 80, 1, 2, 3]).is_some()); // short v4
        assert!(address_value_problem(&[0, 2, 0, 80]).is_some()); // short v6
    }

    #[test]
    fn channel_number_rules() {
        assert!(stun_attr_value_problem(attr::CHANNEL_NUMBER, &[0x40, 0x00, 0, 0]).is_none());
        assert!(stun_attr_value_problem(attr::CHANNEL_NUMBER, &[0x00, 0x00, 0, 0]).is_some());
        assert!(stun_attr_value_problem(attr::CHANNEL_NUMBER, &[0x50, 0x00, 0, 0]).is_some());
        assert!(stun_attr_value_problem(attr::CHANNEL_NUMBER, &[0x40]).is_some());
    }

    #[test]
    fn reservation_token_length() {
        assert!(stun_attr_value_problem(attr::RESERVATION_TOKEN, &[0; 8]).is_none());
        assert!(stun_attr_value_problem(attr::RESERVATION_TOKEN, &[0; 7]).is_some());
    }

    #[test]
    fn error_code_rules() {
        assert!(stun_attr_value_problem(attr::ERROR_CODE, &[0, 0, 4, 38]).is_none());
        assert!(stun_attr_value_problem(attr::ERROR_CODE, &[0, 0, 7, 0]).is_some());
        assert!(stun_attr_value_problem(attr::ERROR_CODE, &[0, 0]).is_some());
    }

    #[test]
    fn indication_attribute_sets() {
        let data_allowed = stun_allowed_attrs(msg_type::DATA_INDICATION).unwrap();
        assert!(data_allowed.contains(&attr::DATA));
        assert!(!data_allowed.contains(&attr::CHANNEL_NUMBER));
        assert!(stun_allowed_attrs(msg_type::BINDING_REQUEST).is_none());
    }

    #[test]
    fn rtcp_registries() {
        assert!(rtcp_type_defined(200));
        assert!(rtcp_type_defined(207));
        assert!(!rtcp_type_defined(199));
        assert!(!rtcp_type_defined(210));
        assert!(rtpfb_fmt_defined(15));
        assert!(!rtpfb_fmt_defined(12));
        assert!(psfb_fmt_defined(1));
        assert!(!psfb_fmt_defined(10));
        assert!(sdes_item_defined(1));
        assert!(!sdes_item_defined(9));
    }

    #[test]
    fn ext_profile_registry() {
        assert!(rtp_ext_profile_defined(0xBEDE));
        assert!(rtp_ext_profile_defined(0x1000));
        assert!(rtp_ext_profile_defined(0x100F));
        assert!(!rtp_ext_profile_defined(0x8001));
        assert!(!rtp_ext_profile_defined(0x0084));
    }
}
