//! # rtc-cov
//!
//! The in-tree coverage-probe substrate behind the coverage-guided fuzzer
//! (`rtc-fuzz`). The vendored offline toolchain has no sanitizer-coverage
//! or libFuzzer support, so feedback comes from explicit probes instead:
//! instrumented crates place [`probe!`] markers at parser decision points,
//! each of which bumps one slot of a fixed-size process-global hit-counter
//! map ([`MAP_SIZE`] slots, saturating `u8` counters — the same shape as
//! AFL's edge map).
//!
//! ## Zero cost when disabled
//!
//! [`probe!`] expands behind `#[cfg(feature = "cov-probes")]` — and because
//! `macro_rules!` output is configured in the *expanding* crate, that is
//! the **instrumented crate's own** `cov-probes` feature, not a feature of
//! this crate. A crate built without its `cov-probes` feature compiles
//! every marker to nothing: no map access, no branch, no code. The release
//! bench builds assert this (the map must stay all-zero after driving the
//! instrumented paths), so the fuzzer's probes can never tax the gated hot
//! paths.
//!
//! Instrumented crates therefore:
//!
//! 1. depend on `rtc-cov` unconditionally (this crate is dependency-free
//!    and a few hundred lines),
//! 2. declare a `cov-probes = []` feature,
//! 3. mark decision points with `rtc_cov::probe!("crate.site-name")`.
//!
//! Probe identifiers are stable strings hashed to map slots at compile
//! time ([`site_id`]), so the map layout — and every corpus signature
//! derived from it — survives code motion; renaming a probe is the only
//! way to move its slot.
//!
//! ## Reading the map
//!
//! The fuzz loop is single-threaded: it calls [`reset`], executes one
//! input, then reads the map through [`classified`] (AFL-style log2
//! bucketing via [`bucket`]) to derive a coverage signature. Counters are
//! relaxed saturating stores, so concurrent instrumented code elsewhere in
//! the process cannot corrupt anything — but runs that need byte-exact
//! determinism must hold the map exclusively (see `rtc-fuzz`'s run lock).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Number of hit-counter slots. A power of two (ids wrap by masking).
/// The tree currently carries a few hundred probe sites, so 8192 slots
/// keep collisions rare while [`reset`] stays cheap enough to run before
/// every fuzz execution.
pub const MAP_SIZE: usize = 1 << 13;

static MAP: [AtomicU8; MAP_SIZE] = [const { AtomicU8::new(0) }; MAP_SIZE];

/// Record one hit of probe `id` (saturating at 255, like AFL).
#[inline]
pub fn hit(id: u32) {
    let slot = &MAP[(id as usize) & (MAP_SIZE - 1)];
    let v = slot.load(Ordering::Relaxed);
    if v < 255 {
        slot.store(v + 1, Ordering::Relaxed);
    }
}

/// Zero every counter. The fuzz loop calls this before each execution.
pub fn reset() {
    for slot in &MAP {
        slot.store(0, Ordering::Relaxed);
    }
}

/// Whether every counter is zero — true in builds where no instrumented
/// crate enabled its `cov-probes` feature (the bench builds assert this
/// after driving parser paths).
pub fn is_silent() -> bool {
    MAP.iter().all(|slot| slot.load(Ordering::Relaxed) == 0)
}

/// Number of distinct slots with a nonzero counter.
pub fn slots_hit() -> usize {
    MAP.iter().filter(|slot| slot.load(Ordering::Relaxed) != 0).count()
}

/// AFL-style log2 bucketing: collapse a raw hit count into one of eight
/// coarse classes so loop-count jitter does not explode the signature
/// space. Returns a single-bit class value (0 for "not hit").
pub const fn bucket(count: u8) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 4,
        4..=7 => 8,
        8..=15 => 16,
        16..=31 => 32,
        32..=127 => 64,
        _ => 128,
    }
}

/// Write the bucketed ([`bucket`]) counter map into `out`.
pub fn classified(out: &mut [u8; MAP_SIZE]) {
    for (slot, o) in MAP.iter().zip(out.iter_mut()) {
        *o = bucket(slot.load(Ordering::Relaxed));
    }
}

/// Compile-time FNV-1a of a probe name — the stable map id of a
/// [`probe!`] site.
pub const fn site_id(name: &str) -> u32 {
    let bytes = name.as_bytes();
    let mut hash: u32 = 0x811C_9DC5;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u32;
        hash = hash.wrapping_mul(0x0100_0193);
        i += 1;
    }
    hash
}

/// Runtime FNV-1a over several name parts — for probes whose identity is
/// data-dependent (e.g. one probe per `WireError` taxonomy key). Parts are
/// separated by a `0x1F` byte so `["ab","c"]` and `["a","bc"]` differ.
pub fn dynamic_id(parts: &[&str]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for (i, part) in parts.iter().enumerate() {
        if i != 0 {
            hash ^= 0x1F;
            hash = hash.wrapping_mul(0x0100_0193);
        }
        for b in part.bytes() {
            hash ^= b as u32;
            hash = hash.wrapping_mul(0x0100_0193);
        }
    }
    hash
}

/// Mark a coverage decision point.
///
/// Expands to a map hit when the **expanding** crate's `cov-probes`
/// feature is enabled, and to nothing at all otherwise. The argument must
/// be a string literal; it is hashed at compile time.
///
/// ```
/// rtc_cov::probe!("doc.example-site");
/// ```
#[macro_export]
macro_rules! probe {
    ($name:literal) => {{
        #[cfg(feature = "cov-probes")]
        {
            const __RTC_COV_SITE: u32 = $crate::site_id($name);
            $crate::hit(__RTC_COV_SITE);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // The map is process-global; tests in this crate touch disjoint slots
    // chosen from distinct probe names so they can run concurrently.

    #[test]
    fn hits_accumulate_and_saturate() {
        let id = site_id("cov.test.saturate");
        let slot = (id as usize) & (MAP_SIZE - 1);
        for _ in 0..300 {
            hit(id);
        }
        let mut out = [0u8; MAP_SIZE];
        classified(&mut out);
        assert_eq!(out[slot], 128, "300 hits land in the top bucket");
        assert!(!is_silent());
        assert!(slots_hit() >= 1);
    }

    #[test]
    fn bucketing_is_monotone_log2() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 4);
        assert_eq!(bucket(4), 8);
        assert_eq!(bucket(7), 8);
        assert_eq!(bucket(8), 16);
        assert_eq!(bucket(15), 16);
        assert_eq!(bucket(16), 32);
        assert_eq!(bucket(31), 32);
        assert_eq!(bucket(32), 64);
        assert_eq!(bucket(127), 64);
        assert_eq!(bucket(128), 128);
        assert_eq!(bucket(255), 128);
    }

    #[test]
    fn site_ids_are_stable_and_distinct() {
        // Pinned: a changed hash function would silently remap the whole
        // corpus, so the constant is locked by value.
        assert_eq!(site_id(""), 0x811C_9DC5);
        assert_ne!(site_id("stun.accept"), site_id("rtp.accept"));
        assert_eq!(site_id("stun.accept"), site_id("stun.accept"));
    }

    #[test]
    fn dynamic_ids_separate_parts() {
        assert_ne!(dynamic_id(&["ab", "c"]), dynamic_id(&["a", "bc"]));
        assert_eq!(dynamic_id(&["only"]), site_id("only"), "single-part dynamic ids match the const hash");
    }

    #[test]
    #[cfg(not(feature = "cov-probes"))]
    fn probe_macro_compiles_out_without_the_feature() {
        // This crate does not declare `cov-probes`, so the expansion here
        // must be empty: the named slot stays untouched.
        let id = site_id("cov.test.compiled-out");
        let slot = (id as usize) & (MAP_SIZE - 1);
        let mut before = [0u8; MAP_SIZE];
        classified(&mut before);
        probe!("cov.test.compiled-out");
        let mut after = [0u8; MAP_SIZE];
        classified(&mut after);
        assert_eq!(before[slot], after[slot]);
    }
}
