//! Wall-clock measurement helpers shared by the perf binaries and the
//! bench regression gate (moved here from `rtc_bench::perf` so benches and
//! production share one measurement path).

use std::time::Instant;

/// Best-of-`reps` wall time of `f` in milliseconds, after one warm-up call
/// (the usual minimum-latency estimator: robust to scheduler noise, biased
/// only toward the machine's true speed).
pub fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Round to two decimals so committed JSON diffs stay readable.
pub fn round2(ms: f64) -> f64 {
    (ms * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round2_keeps_two_decimals() {
        assert_eq!(round2(1.2345), 1.23);
        assert_eq!(round2(27.444), 27.44);
        assert_eq!(round2(27.446), 27.45);
        assert_eq!(round2(0.0), 0.0);
    }

    #[test]
    fn time_ms_returns_a_finite_positive_duration() {
        let ms = time_ms(3, || std::hint::black_box((0..1000u64).sum::<u64>()));
        assert!(ms.is_finite() && ms >= 0.0);
    }
}
