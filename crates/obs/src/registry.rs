//! The metrics registry: named counters, gauges and log2-bucket histograms
//! with a lock-free record path.
//!
//! Callers register a metric once (taking a short write lock), keep the
//! returned handle, and record through it with relaxed atomics. Metric
//! identity is `(name, sorted label pairs)`; re-registering the same
//! identity returns a handle to the same underlying cell, so concurrent
//! workers sharing a registry aggregate into one series.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::export::{HistogramSnapshot, MetricSample, MetricValue, Snapshot};

/// Number of finite histogram buckets; bucket `k` has upper bound `2^k`.
pub const FINITE_BUCKETS: usize = 64;
/// Total bucket count: the finite buckets plus one overflow (`+Inf`) bucket.
pub const BUCKETS: usize = FINITE_BUCKETS + 1;

/// Bucket index for a recorded value.
///
/// Bucket 0 holds `v ≤ 1`; bucket `k` (1 ≤ k < 64) holds
/// `2^(k-1) < v ≤ 2^k`; values above `2^63` land in the overflow bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else if v > (1u64 << 63) {
        FINITE_BUCKETS
    } else {
        (64 - (v - 1).leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a finite bucket, `None` for the overflow bucket.
#[inline]
pub fn bucket_upper_bound(index: usize) -> Option<u64> {
    (index < FINITE_BUCKETS).then(|| 1u64 << index)
}

/// Metric identity: sanitized name plus label pairs sorted by label name.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

/// The shared storage behind one registered metric.
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// Atomic bucket array plus running sum for one histogram series.
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot { buckets, sum: self.sum.load(Ordering::Relaxed), count }
    }
}

/// A monotonically increasing counter handle.
///
/// Cloning is cheap; all clones update the same series. On a handle from a
/// [`MetricsRegistry::disabled`] registry every record call is a no-op.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: bool,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: last-written value, with a high-water-mark helper.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    enabled: bool,
}

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if self.enabled {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A histogram handle over the fixed log2 bucket layout.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
    enabled: bool,
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled {
            self.core.record(v);
        }
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merge a pre-aggregated batch of observations: per-bucket counts in
    /// this crate's fixed log2 layout (index by [`bucket_index`]; at most
    /// [`BUCKETS`] entries) plus their value sum. Hot loops accumulate in
    /// plain local arrays and flush once, paying zero atomics per event.
    ///
    /// # Panics
    /// If `buckets` has more than [`BUCKETS`] entries.
    pub fn merge_buckets(&self, buckets: &[u64], sum: u64) {
        assert!(buckets.len() <= BUCKETS, "bucket slice exceeds the fixed layout");
        if !self.enabled {
            return;
        }
        for (i, &c) in buckets.iter().enumerate() {
            if c > 0 {
                self.core.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.core.sum.fetch_add(sum, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.core.snapshot().count
    }
}

struct Inner {
    enabled: bool,
    metrics: RwLock<BTreeMap<MetricId, Slot>>,
    help: RwLock<BTreeMap<String, String>>,
}

/// A cheaply-clonable, thread-safe handle to a set of metrics.
///
/// Clones share storage: the study drivers clone one registry into every
/// worker thread and all of them aggregate into the same series. A
/// [`disabled`](MetricsRegistry::disabled) registry hands out inert handles
/// (and records no spans), which keeps uninstrumented runs at zero atomic
/// traffic.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.inner.enabled)
            .field("metrics", &self.inner.metrics.read().map(|m| m.len()).unwrap_or(0))
            .finish()
    }
}

impl MetricsRegistry {
    /// A fresh, enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(Inner {
                enabled: true,
                metrics: RwLock::new(BTreeMap::new()),
                help: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// A registry whose handles ignore every record call.
    pub fn disabled() -> Self {
        MetricsRegistry {
            inner: Arc::new(Inner {
                enabled: false,
                metrics: RwLock::new(BTreeMap::new()),
                help: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// Whether record calls on this registry's handles have any effect.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Register (or look up) a counter series.
    ///
    /// # Panics
    /// If the same `(name, labels)` identity was registered as a different
    /// metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        let slot = self.slot(name, labels, help, || Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(cell) => Counter { cell, enabled: self.inner.enabled },
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Register (or look up) a gauge series.
    ///
    /// # Panics
    /// If the same `(name, labels)` identity was registered as a different
    /// metric kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        let slot = self.slot(name, labels, help, || Slot::Gauge(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Gauge(cell) => Gauge { cell, enabled: self.inner.enabled },
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Register (or look up) a histogram series.
    ///
    /// # Panics
    /// If the same `(name, labels)` identity was registered as a different
    /// metric kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        let slot = self.slot(name, labels, help, || Slot::Histogram(Arc::new(HistogramCore::new())));
        match slot {
            Slot::Histogram(core) => Histogram { core, enabled: self.inner.enabled },
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    fn slot(&self, name: &str, labels: &[(&str, &str)], help: &str, make: impl FnOnce() -> Slot) -> Slot {
        let id = MetricId {
            name: sanitize_name(name),
            labels: {
                let mut ls: Vec<(String, String)> =
                    labels.iter().map(|(k, v)| (sanitize_name(k), v.to_string())).collect();
                ls.sort();
                ls
            },
        };
        if !help.is_empty() {
            let mut helps = self.inner.help.write().expect("help lock");
            helps.entry(id.name.clone()).or_insert_with(|| help.to_string());
        }
        // Fast path: already registered.
        {
            let metrics = self.inner.metrics.read().expect("metrics lock");
            if let Some(slot) = metrics.get(&id) {
                return clone_slot(slot);
            }
        }
        let mut metrics = self.inner.metrics.write().expect("metrics lock");
        clone_slot(metrics.entry(id).or_insert_with(make))
    }

    /// A point-in-time copy of every registered series.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.inner.metrics.read().expect("metrics lock");
        let helps = self.inner.help.read().expect("help lock");
        let samples = metrics
            .iter()
            .map(|(id, slot)| MetricSample {
                name: id.name.clone(),
                labels: id.labels.clone(),
                help: helps.get(&id.name).cloned(),
                value: match slot {
                    Slot::Counter(cell) => MetricValue::Counter(cell.load(Ordering::Relaxed)),
                    Slot::Gauge(cell) => MetricValue::Gauge(cell.load(Ordering::Relaxed)),
                    Slot::Histogram(core) => MetricValue::Histogram(core.snapshot()),
                },
            })
            .collect();
        Snapshot { metrics: samples }
    }
}

fn clone_slot(slot: &Slot) -> Slot {
    match slot {
        Slot::Counter(c) => Slot::Counter(Arc::clone(c)),
        Slot::Gauge(g) => Slot::Gauge(Arc::clone(g)),
        Slot::Histogram(h) => Slot::Histogram(Arc::clone(h)),
    }
}

/// Coerce a metric or label name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`); invalid characters become `_`.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edge_cases() {
        // Zero and one share the first bucket (upper bound 1).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        // Exact powers of two sit at the top of their own bucket; one past
        // the power spills into the next.
        for k in 1..=63usize {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k, "2^{k} belongs to bucket {k}");
            if k < 63 {
                assert_eq!(bucket_index(p + 1), k + 1, "2^{k}+1 spills into bucket {}", k + 1);
            }
            // 2^k - 1 stays in bucket k for k ≥ 2 (it is above 2^(k-1));
            // 2^1 - 1 = 1 belongs to bucket 0.
            assert_eq!(bucket_index(p - 1), if k >= 2 { k } else { 0 }, "2^{k}-1");
        }
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        // The largest finite bucket and the overflow bucket.
        assert_eq!(bucket_index(1u64 << 63), 63);
        assert_eq!(bucket_index((1u64 << 63) + 1), FINITE_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn bucket_bounds_cover_the_index_function() {
        // Every value must land in the first bucket whose upper bound
        // admits it — the definition the exporter relies on.
        let probes = [0u64, 1, 2, 3, 4, 7, 8, 9, 1023, 1024, 1025, u64::MAX / 2, (1 << 63), (1 << 63) + 1, u64::MAX];
        for v in probes {
            let idx = bucket_index(v);
            if let Some(ub) = bucket_upper_bound(idx) {
                assert!(v <= ub, "{v} exceeds its bucket bound {ub}");
                if idx > 0 {
                    let lower = bucket_upper_bound(idx - 1).unwrap();
                    assert!(v > lower, "{v} should be above the previous bound {lower}");
                }
            } else {
                assert!(v > (1u64 << 63), "{v} must only overflow past 2^63");
            }
        }
        assert_eq!(bucket_upper_bound(0), Some(1));
        assert_eq!(bucket_upper_bound(63), Some(1u64 << 63));
        assert_eq!(bucket_upper_bound(FINITE_BUCKETS), None);
    }

    #[test]
    fn histogram_records_extremes_without_loss() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", &[], "");
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        h.record(1u64 << 63);
        let snap = reg.snapshot();
        let MetricValue::Histogram(hs) = &snap.metrics[0].value else { panic!("not a histogram") };
        assert_eq!(hs.count, 4);
        assert_eq!(hs.buckets[0], 2);
        assert_eq!(hs.buckets[63], 1);
        assert_eq!(hs.buckets[FINITE_BUCKETS], 1);
        // Sum wraps modulo 2^64 by design (relaxed fetch_add semantics).
        assert_eq!(hs.sum, 1u64.wrapping_add(u64::MAX).wrapping_add(1 << 63));
    }

    #[test]
    fn merge_buckets_matches_individual_records() {
        let reg = MetricsRegistry::new();
        let direct = reg.histogram("direct", &[], "");
        let merged = reg.histogram("merged", &[], "");
        let values = [0u64, 1, 2, 3, 100, 5000, u64::MAX];
        let mut local = [0u64; BUCKETS];
        let mut sum = 0u64;
        for &v in &values {
            direct.record(v);
            local[bucket_index(v)] += 1;
            sum = sum.wrapping_add(v);
        }
        merged.merge_buckets(&local, sum);
        let snap = reg.snapshot();
        assert_eq!(snap.get("direct", &[]), snap.get("merged", &[]));
    }

    #[test]
    fn counters_and_gauges_share_series_across_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("rtc_events_total", &[("stage", "dpi")], "events");
        let b = reg.counter("rtc_events_total", &[("stage", "dpi")], "events");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);

        let g = reg.gauge("rtc_peak", &[], "peak");
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("m", &[("a", "1"), ("b", "2")], "");
        let b = reg.counter("m", &[("b", "2"), ("a", "1")], "");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(reg.snapshot().metrics.len(), 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::disabled();
        let c = reg.counter("c", &[], "");
        let g = reg.gauge("g", &[], "");
        let h = reg.histogram("h", &[], "");
        c.add(5);
        g.set(5);
        g.set_max(9);
        h.record(5);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        assert!(!reg.is_enabled());
    }

    #[test]
    fn names_are_sanitized_to_the_prometheus_charset() {
        let reg = MetricsRegistry::new();
        reg.counter("9bad name-with.dots", &[("bad key", "kept value!")], "").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.metrics[0].name, "_bad_name_with_dots");
        assert_eq!(snap.metrics[0].labels[0].0, "bad_key");
        // Label *values* are arbitrary UTF-8, escaped only at export time.
        assert_eq!(snap.metrics[0].labels[0].1, "kept value!");
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[], "");
        reg.gauge("m", &[], "");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = MetricsRegistry::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter("rtc_total", &[], "");
                    let h = reg.histogram("rtc_lat", &[], "");
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("rtc_total", &[], "").get(), 40_000);
        assert_eq!(reg.histogram("rtc_lat", &[], "").count(), 40_000);
    }
}
