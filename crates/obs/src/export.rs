//! Point-in-time metric snapshots and the two export formats.
//!
//! [`Snapshot`] is a plain data copy of every registered series, ordered by
//! `(name, labels)` so exports are deterministic. Two renderers are
//! provided: Prometheus text exposition format (for scraping a dumped file
//! via node-exporter's textfile collector, or eyeballing) and structured
//! JSON (for the bench schema and programmatic diffing).

use crate::registry::{bucket_upper_bound, FINITE_BUCKETS};

/// A copy of one histogram series: per-bucket (non-cumulative) counts in
/// log2 bucket order, plus the running sum and total count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, `registry::BUCKETS` entries; the last entry is
    /// the overflow (`+Inf`) bucket.
    pub buckets: Vec<u64>,
    /// Sum of all recorded values (wrapping modulo 2^64).
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

/// The value of one exported series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-value gauge.
    Gauge(u64),
    /// Log2-bucket histogram.
    Histogram(HistogramSnapshot),
}

/// One series: name, sorted label pairs, optional help text, value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSample {
    /// Sanitized metric name.
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
    /// Help text registered with the first series of this family.
    pub help: Option<String>,
    /// The sampled value.
    pub value: MetricValue,
}

/// A point-in-time copy of a whole registry, ordered by `(name, labels)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Every registered series.
    pub metrics: Vec<MetricSample>,
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

impl Snapshot {
    /// Whether the snapshot holds no series at all.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Look up one series by name and label pairs (order-insensitive).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let mut want: Vec<(String, String)> = labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        want.sort();
        self.metrics.iter().find(|m| m.name == name && m.labels == want).map(|m| &m.value)
    }

    /// Sum a counter family across all label combinations.
    pub fn counter_family_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .filter_map(|m| match &m.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Render as Prometheus text exposition format (version 0.0.4).
    ///
    /// Families get one `# HELP`/`# TYPE` header; histograms expand into
    /// cumulative `_bucket{le="…"}` series (finite bounds are the exact
    /// powers of two, trimmed after the last non-empty bucket) plus `_sum`
    /// and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for m in &self.metrics {
            if last_family != Some(m.name.as_str()) {
                last_family = Some(m.name.as_str());
                if let Some(help) = &m.help {
                    out.push_str("# HELP ");
                    out.push_str(&m.name);
                    out.push(' ');
                    out.push_str(&escape_help(help));
                    out.push('\n');
                }
                out.push_str("# TYPE ");
                out.push_str(&m.name);
                out.push(' ');
                out.push_str(m.value.type_name());
                out.push('\n');
            }
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&series(&m.name, &m.labels, &[]));
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                MetricValue::Histogram(h) => {
                    let last_used = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0).min(FINITE_BUCKETS - 1);
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate().take(last_used + 1) {
                        cumulative += c;
                        let le = bucket_upper_bound(i).expect("finite bucket").to_string();
                        out.push_str(&series(&format!("{}_bucket", m.name), &m.labels, &[("le", &le)]));
                        out.push(' ');
                        out.push_str(&cumulative.to_string());
                        out.push('\n');
                    }
                    out.push_str(&series(&format!("{}_bucket", m.name), &m.labels, &[("le", "+Inf")]));
                    out.push(' ');
                    out.push_str(&h.count.to_string());
                    out.push('\n');
                    out.push_str(&series(&format!("{}_sum", m.name), &m.labels, &[]));
                    out.push(' ');
                    out.push_str(&h.sum.to_string());
                    out.push('\n');
                    out.push_str(&series(&format!("{}_count", m.name), &m.labels, &[]));
                    out.push(' ');
                    out.push_str(&h.count.to_string());
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Render as structured JSON: an array of series objects under
    /// `"metrics"`, histograms with per-bucket upper bounds and counts.
    pub fn to_json(&self) -> serde_json::Value {
        let metrics: Vec<serde_json::Value> = self
            .metrics
            .iter()
            .map(|m| {
                let labels: serde_json::Map<String, serde_json::Value> =
                    m.labels.iter().map(|(k, v)| (k.clone(), serde_json::Value::from(v.clone()))).collect();
                let mut obj = serde_json::Map::new();
                obj.insert("name".into(), m.name.clone().into());
                obj.insert("type".into(), m.value.type_name().into());
                if !labels.is_empty() {
                    obj.insert("labels".into(), serde_json::Value::Object(labels));
                }
                match &m.value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                        obj.insert("value".into(), (*v).into());
                    }
                    MetricValue::Histogram(h) => {
                        obj.insert("count".into(), h.count.into());
                        obj.insert("sum".into(), h.sum.into());
                        let buckets: Vec<serde_json::Value> = h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|&(_, &c)| c > 0)
                            .map(|(i, &c)| {
                                serde_json::json!({
                                    "le": bucket_upper_bound(i).map(|b| b.to_string()).unwrap_or_else(|| "+Inf".into()),
                                    "count": c,
                                })
                            })
                            .collect();
                        obj.insert("buckets".into(), buckets.into());
                    }
                }
                serde_json::Value::Object(obj)
            })
            .collect();
        serde_json::json!({ "metrics": metrics })
    }
}

/// Render `name{label="value",…}` with label values escaped.
fn series(name: &str, labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied()) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("rtc_events_total", &[("stage", "dpi")], "Events per stage.").add(7);
        reg.counter("rtc_events_total", &[("stage", "filter")], "Events per stage.").add(3);
        reg.gauge("rtc_peak_bytes", &[], "Peak residency.").set(4096);
        let h = reg.histogram("rtc_latency_nanoseconds", &[("stage", "dpi")], "Stage latency.");
        h.record(1);
        h.record(5);
        h.record(5);
        reg
    }

    #[test]
    fn prometheus_output_is_well_formed() {
        let text = sample_registry().snapshot().to_prometheus();
        // One TYPE header per family, in sorted family order.
        assert_eq!(text.matches("# TYPE rtc_events_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE rtc_latency_nanoseconds histogram").count(), 1);
        assert_eq!(text.matches("# TYPE rtc_peak_bytes gauge").count(), 1);
        assert!(text.contains("rtc_events_total{stage=\"dpi\"} 7"));
        assert!(text.contains("rtc_events_total{stage=\"filter\"} 3"));
        assert!(text.contains("rtc_peak_bytes 4096"));
        // Histogram: cumulative buckets, +Inf equals _count, sum recorded.
        assert!(text.contains("rtc_latency_nanoseconds_bucket{stage=\"dpi\",le=\"1\"} 1"));
        assert!(text.contains("rtc_latency_nanoseconds_bucket{stage=\"dpi\",le=\"8\"} 3"));
        assert!(text.contains("rtc_latency_nanoseconds_bucket{stage=\"dpi\",le=\"+Inf\"} 3"));
        assert!(text.contains("rtc_latency_nanoseconds_sum{stage=\"dpi\"} 11"));
        assert!(text.contains("rtc_latency_nanoseconds_count{stage=\"dpi\"} 3"));
        // Every line is a comment or `name{...} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed exposition line: {line:?}"
            );
        }
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_monotone() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", &[], "");
        for v in [0u64, 2, 2, 9, 100, 100_000] {
            h.record(v);
        }
        let text = reg.snapshot().to_prometheus();
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("h_bucket")) {
            let v: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
        assert_eq!(last, 6, "+Inf bucket must equal total count");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[("reason", "quote\" slash\\ nl\n")], "help with \\ and\nnewline").inc();
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains(r#"reason="quote\" slash\\ nl\n""#), "{text}");
        assert!(text.contains("# HELP m help with \\\\ and\\nnewline"));
    }

    #[test]
    fn json_round_trips_values() {
        let json = sample_registry().snapshot().to_json();
        let metrics = json["metrics"].as_array().unwrap();
        assert_eq!(metrics.len(), 4);
        let counter = metrics.iter().find(|m| m["labels"]["stage"] == "dpi" && m["type"] == "counter").unwrap();
        assert_eq!(counter["value"], 7);
        let hist = metrics.iter().find(|m| m["type"] == "histogram").unwrap();
        assert_eq!(hist["count"], 3);
        assert_eq!(hist["sum"], 11);
        // Non-cumulative JSON buckets: 1 value ≤1, 2 values in le=8.
        let buckets = hist["buckets"].as_array().unwrap();
        assert_eq!(buckets[0]["le"], "1");
        assert_eq!(buckets[0]["count"], 1);
        assert_eq!(buckets[1]["le"], "8");
        assert_eq!(buckets[1]["count"], 2);
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let snap = sample_registry().snapshot();
        assert_eq!(snap.get("rtc_events_total", &[("stage", "dpi")]), Some(&MetricValue::Counter(7)));
        assert_eq!(snap.get("rtc_events_total", &[("stage", "nope")]), None);
        assert_eq!(snap.counter_family_total("rtc_events_total"), 10);
        assert!(!snap.is_empty());
        assert!(Snapshot::default().is_empty());
    }
}
