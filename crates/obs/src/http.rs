//! A minimal HTTP/1.1 server for live scrape and ingest surfaces.
//!
//! The study's toolchain is fully vendored and offline; rather than gate
//! the live service on an async runtime we don't ship, this module serves
//! the existing exporters over a deliberately small subset of HTTP/1.1 on
//! `std::net`: one request per connection (`Connection: close`),
//! `Content-Length` bodies only (no chunked transfer), thread per
//! connection. That subset is exactly what `curl`, Prometheus scrapers,
//! and the in-process fleet driver need, and a blocking body stream is
//! load-bearing: a slow consumer propagates backpressure to the sender
//! through TCP flow control instead of buffering unboundedly.
//!
//! [`Handler`] implementations see the parsed request line and headers
//! plus the body as an incremental [`Read`] already limited to the
//! declared `Content-Length` — large ingest bodies are never materialized
//! by the server itself.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Longest accepted request head (request line + headers), a defense
/// against malformed or hostile peers.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// One parsed request, body unread. The body reader is limited to the
/// declared `Content-Length`; handlers may stream it incrementally or
/// ignore it (the server drains any unread remainder).
pub struct Request<'a> {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request path including any query string, as sent.
    pub path: String,
    headers: Vec<(String, String)>,
    /// The request body, limited to `Content-Length` bytes.
    pub body: &'a mut dyn Read,
}

impl Request<'_> {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// One response; the server adds `Content-Length` and `Connection: close`.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a plain-text body.
    pub fn text(body: impl Into<String>) -> Response {
        Response { status: 200, content_type: "text/plain; charset=utf-8".into(), body: body.into().into_bytes() }
    }

    /// 200 with a JSON body.
    pub fn json(body: impl Into<String>) -> Response {
        Response { status: 200, content_type: "application/json".into(), body: body.into().into_bytes() }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response { status, content_type: "text/plain; charset=utf-8".into(), body: message.into().into_bytes() }
    }

    /// 404 for an unknown route.
    pub fn not_found() -> Response {
        Response::error(404, "not found\n")
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A request handler. Implementations must be `Send + Sync`: connections
/// are served concurrently, one thread each.
pub trait Handler: Send + Sync {
    /// Produce the response for one request. Reading `req.body` is
    /// optional; unread bytes are drained by the server.
    fn handle(&self, req: &mut Request<'_>) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&mut Request<'_>) -> Response + Send + Sync,
{
    fn handle(&self, req: &mut Request<'_>) -> Response {
        self(req)
    }
}

/// A running HTTP server. Dropping without [`Server::shutdown`] leaves the
/// accept thread running until process exit; call `shutdown` for a clean
/// stop that waits out in-flight connections.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `handler`.
    pub fn bind(addr: &str, handler: Arc<dyn Handler>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_active = Arc::clone(&active);
        let accept_thread = std::thread::Builder::new().name("rtc-http-accept".into()).spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let handler = Arc::clone(&handler);
                let active = Arc::clone(&accept_active);
                active.fetch_add(1, Ordering::AcqRel);
                let spawned = std::thread::Builder::new().name("rtc-http-conn".into()).spawn(move || {
                    let _ = serve_connection(stream, &*handler);
                    // Release the handler clone BEFORE signalling done:
                    // `shutdown()` returning promises callers that no
                    // handler Arc survives (the CLI unwraps an Arc the
                    // handler captured), so the decrement must be the
                    // last thing that happens.
                    drop(handler);
                    active.fetch_sub(1, Ordering::AcqRel);
                });
                if let Err(e) = spawned {
                    accept_active.fetch_sub(1, Ordering::AcqRel);
                    crate::diag::warn_once(
                        "http-spawn-failed",
                        &format!("http: failed to spawn connection thread: {e}"),
                    );
                }
            }
        })?;
        Ok(Server { addr: local, stop, active, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wait for in-flight connections to finish, and join
    /// the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `incoming()`; a throwaway connection
        // wakes it so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        while self.active.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn serve_connection(mut stream: TcpStream, handler: &dyn Handler) -> io::Result<()> {
    // A read deadline bounds how long a stalled or hostile peer can pin a
    // connection thread; body streaming resets it per read.
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let (method, path, headers) = match read_head(&mut reader) {
        Ok(head) => head,
        Err(e) => {
            let resp = Response::error(400, format!("bad request: {e}\n"));
            let _ = resp.write_to(&mut stream);
            return Ok(());
        }
    };
    let content_length = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    let mut body = reader.take(content_length);
    let mut req = Request { method, path, headers, body: &mut body };
    let resp = handler.handle(&mut req);
    // Drain whatever the handler left unread so the peer's writes don't
    // error before it reads our response.
    let _ = io::copy(&mut body, &mut io::sink());
    resp.write_to(&mut stream)
}

/// Parsed request head: method, path, and header `(name, value)` pairs.
type RequestHead = (String, String, Vec<(String, String)>);

fn read_head(reader: &mut impl BufRead) -> io::Result<RequestHead> {
    let mut read_line = |budget: &mut usize| -> io::Result<String> {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-head"));
        }
        *budget = budget.checked_sub(n).ok_or_else(|| io::Error::other("request head too large"))?;
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    };
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(&mut budget)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(io::Error::new(io::ErrorKind::InvalidData, format!("malformed request line {request_line:?}")));
    };
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(io::Error::new(io::ErrorKind::InvalidData, format!("malformed header line {line:?}")));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

/// Route the registry scrape endpoints: `/metrics` (Prometheus text
/// exposition) and `/metrics.json` (structured JSON). Returns `None` for
/// any other path so callers can layer their own routes.
pub fn route_metrics(registry: &crate::MetricsRegistry, path: &str) -> Option<Response> {
    match path {
        "/metrics" => Some(Response::text(registry.snapshot().to_prometheus())),
        "/metrics.json" => Some(Response::json(registry.snapshot().to_json().to_string())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let status = out.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = out.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_routes_and_metrics() {
        let registry = crate::MetricsRegistry::new();
        registry.counter("rtc_http_test_total", &[], "test counter").add(7);
        let reg = registry.clone();
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::new(move |req: &mut Request<'_>| {
                if let Some(resp) = route_metrics(&reg, &req.path) {
                    return resp;
                }
                match req.path.as_str() {
                    "/healthz" => Response::text("ok\n"),
                    _ => Response::not_found(),
                }
            }),
        )
        .unwrap();
        let addr = server.local_addr();
        assert_eq!(get(addr, "/healthz"), (200, "ok\n".to_string()));
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(metrics.contains("rtc_http_test_total 7"), "{metrics}");
        let (status, json) = get(addr, "/metrics.json");
        assert_eq!(status, 200);
        assert!(json.contains("rtc_http_test_total"), "{json}");
        assert_eq!(get(addr, "/nope").0, 404);
        server.shutdown();
    }

    #[test]
    fn streams_post_bodies_by_content_length() {
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::new(|req: &mut Request<'_>| {
                let mut body = Vec::new();
                req.body.read_to_end(&mut body).unwrap();
                let tag = req.header("x-rtc-manifest").unwrap_or("-").to_string();
                Response::text(format!("{} {} {tag}", req.method, body.len()))
            }),
        )
        .unwrap();
        let addr = server.local_addr();
        let payload = "z".repeat(10_000);
        let raw = format!(
            "POST /ingest/t0/call-1 HTTP/1.1\r\nHost: x\r\nX-RTC-Manifest: {{\"app\":\"zoom\"}}\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        );
        let (status, body) = request(addr, &raw);
        assert_eq!(status, 200);
        assert_eq!(body, "POST 10000 {\"app\":\"zoom\"}");
        server.shutdown();
    }

    // `shutdown()` must not return while any connection thread still
    // holds its handler clone: the CLI `Arc::try_unwrap`s state the
    // handler captured. Hammer the server and check unique ownership
    // after every shutdown; repetitions make the drop/decrement race
    // actually fire if the ordering regresses.
    #[test]
    fn shutdown_releases_every_handler_clone() {
        for _ in 0..20 {
            let state = Arc::new(AtomicUsize::new(0));
            let captured = Arc::clone(&state);
            let server = Server::bind(
                "127.0.0.1:0",
                Arc::new(move |_req: &mut Request<'_>| {
                    captured.fetch_add(1, Ordering::AcqRel);
                    Response::text("ok")
                }),
            )
            .unwrap();
            let addr = server.local_addr();
            let clients: Vec<_> = (0..4).map(|_| std::thread::spawn(move || get(addr, "/x"))).collect();
            for c in clients {
                c.join().unwrap();
            }
            server.shutdown();
            assert_eq!(Arc::strong_count(&state), 1, "handler clone outlived shutdown()");
        }
    }

    #[test]
    fn malformed_head_is_rejected_not_fatal() {
        let server = Server::bind("127.0.0.1:0", Arc::new(|_req: &mut Request<'_>| Response::text("ok"))).unwrap();
        let addr = server.local_addr();
        let (status, _) = request(addr, "not-http\r\n\r\n");
        assert_eq!(status, 400);
        // The server is still alive.
        let (status, _) = request(addr, "GET / HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn unread_body_is_drained() {
        let server =
            Server::bind("127.0.0.1:0", Arc::new(|_req: &mut Request<'_>| Response::text("ignored body"))).unwrap();
        let addr = server.local_addr();
        let payload = "y".repeat(200_000);
        let raw = format!("POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{payload}", payload.len());
        let (status, body) = request(addr, &raw);
        assert_eq!(status, 200);
        assert_eq!(body, "ignored body");
        server.shutdown();
    }
}
