//! # rtc-obs
//!
//! Observability layer for the RTC protocol-compliance study pipeline.
//!
//! The crate provides one shared measurement path for production analysis
//! runs and the benchmark suite:
//!
//! * [`MetricsRegistry`] — a cheaply-clonable handle to a set of named
//!   metrics: monotonic [`Counter`]s, last-value/high-water [`Gauge`]s and
//!   fixed log2-bucket [`Histogram`]s. Registration (name → slot lookup)
//!   takes a short-lived lock; the **record path is lock-free** — handles
//!   cache an `Arc<AtomicU64>` (or bucket array) and update it with relaxed
//!   atomics, so instrumented hot loops pay one `fetch_add` per event and
//!   nothing more. A [`MetricsRegistry::disabled`] registry hands out inert
//!   handles whose record calls compile down to a branch on a cached bool,
//!   which is how the differential tests prove observability cannot change
//!   results.
//! * [`span`](mod@span) — hierarchical scoped timers. `registry.span("call")`
//!   pushes onto a thread-local path stack; nested spans concatenate into
//!   dotted paths (`study.call.dpi`) and each records its elapsed
//!   nanoseconds into the `rtc_span_nanoseconds{span="…"}` histogram family
//!   on drop.
//! * [`Snapshot`] — a point-in-time copy of every metric, exportable as
//!   Prometheus text exposition ([`Snapshot::to_prometheus`]) or structured
//!   JSON ([`Snapshot::to_json`]).
//! * [`alloc`] — the counting global allocator (live/peak byte high-water
//!   marks) previously private to the `pipeline_perf` bench.
//! * [`timing`] — best-of-N wall-clock helpers (`time_ms`, `round2`) shared
//!   by the perf binaries and the bench regression gate.
//!
//! Histogram buckets are powers of two: bucket *k* counts values `v` with
//! `2^(k-1) < v ≤ 2^k` (bucket 0 holds `v ≤ 1`), 64 finite buckets up to
//! `2^63` plus one overflow bucket. That fixed layout needs no
//! configuration, covers nanosecond latencies through multi-gigabyte sizes,
//! and makes the record path a `leading_zeros` plus two relaxed adds.

#![warn(missing_docs)]
#![deny(unsafe_code)]

// The counting allocator must implement `GlobalAlloc`, which is inherently
// unsafe; it is the single carve-out from the crate-wide deny.
#[allow(unsafe_code)]
pub mod alloc;
pub mod diag;
pub mod export;
pub mod http;
pub mod registry;
pub mod span;
pub mod timing;

pub use export::{HistogramSnapshot, MetricSample, MetricValue, Snapshot};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use span::Span;
pub use timing::{round2, time_ms};
