//! One-shot diagnostic warnings.
//!
//! Configuration problems discovered deep inside hot paths (an unparsable
//! environment override, a malformed cgroup file) must not spam stderr on
//! every call, but silently ignoring them is how the `RTC_DPI_THREADS`
//! typo class of bug ships. [`warn_once`] deduplicates by key: the first
//! caller prints to stderr and records the message, every later caller
//! with the same key is a no-op. [`warnings`] exposes the recorded list so
//! tests (and the CLI) can assert a warning actually fired.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

struct DiagState {
    seen: HashSet<&'static str>,
    messages: Vec<String>,
}

fn state() -> &'static Mutex<DiagState> {
    static STATE: OnceLock<Mutex<DiagState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(DiagState { seen: HashSet::new(), messages: Vec::new() }))
}

/// Emit `message` to stderr the first time `key` is seen in this process;
/// later calls with the same key are silent. Returns whether the message
/// was emitted. Keys are static so call sites self-document the warning
/// class they deduplicate on.
pub fn warn_once(key: &'static str, message: &str) -> bool {
    let mut st = state().lock().expect("diag state poisoned");
    if !st.seen.insert(key) {
        return false;
    }
    eprintln!("[rtc-obs] warning: {message}");
    st.messages.push(message.to_string());
    true
}

/// Every message emitted through [`warn_once`] so far, in emission order.
pub fn warnings() -> Vec<String> {
    state().lock().expect("diag state poisoned").messages.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_warning_with_same_key_is_suppressed() {
        assert!(warn_once("diag-test-key", "first message"));
        assert!(!warn_once("diag-test-key", "second message"));
        let recorded = warnings();
        assert!(recorded.iter().any(|m| m == "first message"));
        assert!(!recorded.iter().any(|m| m == "second message"));
    }
}
