//! A counting global allocator: the system allocator wrapped with live/peak
//! byte counters, used by the perf binaries as a portable peak-RSS proxy
//! (moved here from the `pipeline_perf` bench so measurement logic lives in
//! one place).
//!
//! Install it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rtc_obs::alloc::CountingAlloc = rtc_obs::alloc::CountingAlloc;
//! ```
//!
//! then bracket measured regions with [`reset_peak`] / [`peak_since`]. The
//! counters are process-global statics: only meaningful when the allocator
//! is actually installed, and a single measurement region should be active
//! at a time.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapped with live/peak byte counters.
pub struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Bytes currently allocated and not yet freed.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Start a fresh high-water measurement from the current live footprint;
/// returns that baseline for a later [`peak_since`] call.
pub fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

/// Peak bytes allocated above `baseline` since the matching [`reset_peak`].
pub fn peak_since(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

/// Process peak resident set size in bytes, from `/proc/self/status`'s
/// `VmHWM` line (the kernel's high-water mark — covers every allocation
/// source, not just the Rust global allocator). Returns `None` on
/// platforms without procfs; callers fall back to the counting-allocator
/// peak there.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_reads_vmhwm() {
        let rss = super::peak_rss_bytes().expect("procfs VmHWM available on linux");
        assert!(rss > 0);
    }
}
