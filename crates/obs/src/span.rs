//! Hierarchical scoped timers.
//!
//! A span is a guard: creating it pushes a segment onto a thread-local path
//! stack, dropping it pops the segment and records the elapsed wall time
//! into the `rtc_span_nanoseconds{span="…"}` histogram family of the
//! registry it was opened on. Nested spans concatenate with dots, so the
//! study drivers produce paths like `study.call.dpi` without any explicit
//! plumbing of parent names:
//!
//! ```
//! use rtc_obs::MetricsRegistry;
//! let registry = MetricsRegistry::new();
//! {
//!     let _study = registry.span("study");
//!     let _call = registry.span("call"); // records as "study.call"
//! }
//! let snap = registry.snapshot();
//! assert!(snap.get("rtc_span_nanoseconds", &[("span", "study.call")]).is_some());
//! ```
//!
//! Guards are intentionally `!Send` (the path stack is thread-local);
//! worker threads each build their own hierarchy. Spans opened on a
//! [`MetricsRegistry::disabled`] registry skip the stack entirely and
//! record nothing.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::time::Instant;

use crate::registry::MetricsRegistry;

/// Histogram family every span records into.
pub const SPAN_METRIC: &str = "rtc_span_nanoseconds";
const SPAN_HELP: &str = "Elapsed wall time of hierarchical spans (dotted path), in nanoseconds.";

thread_local! {
    /// Stack of full dotted paths of the spans currently open on this thread.
    static SPAN_PATHS: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A scoped timer; see the [module docs](self).
#[must_use = "a span records on drop — bind it to a named guard"]
pub struct Span {
    /// `None` for spans on a disabled registry (fully inert).
    active: Option<(MetricsRegistry, String, Instant)>,
    /// Keeps the guard `!Send`: the path stack is thread-local.
    _not_send: PhantomData<*const ()>,
}

impl MetricsRegistry {
    /// Open a span named `name`, nested under any span already open on this
    /// thread. The elapsed time is recorded when the returned guard drops.
    pub fn span(&self, name: &str) -> Span {
        if !self.is_enabled() {
            return Span { active: None, _not_send: PhantomData };
        }
        let path = SPAN_PATHS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}.{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        Span { active: Some((self.clone(), path, Instant::now())), _not_send: PhantomData }
    }
}

impl Span {
    /// Full dotted path of this span, if it is recording.
    pub fn path(&self) -> Option<&str> {
        self.active.as_ref().map(|(_, path, _)| path.as_str())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((registry, path, start)) = self.active.take() else { return };
        let elapsed = start.elapsed();
        SPAN_PATHS.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Defensive: drop order should be LIFO, but a leaked/reordered
            // guard must not corrupt other spans' paths.
            if let Some(pos) = stack.iter().rposition(|p| *p == path) {
                stack.remove(pos);
            }
        });
        registry.histogram(SPAN_METRIC, &[("span", &path)], SPAN_HELP).record_duration(elapsed);
    }
}

/// Open a span on a registry: `span!(registry, "dpi.extract")`.
///
/// Sugar for [`MetricsRegistry::span`]; the result must be bound
/// (`let _guard = span!(…)`) so it lives to the end of the scope.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $registry.span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::MetricValue;

    #[test]
    fn nested_spans_build_dotted_paths() {
        let reg = MetricsRegistry::new();
        {
            let study = reg.span("study");
            assert_eq!(study.path(), Some("study"));
            {
                let call = span!(reg, "call");
                assert_eq!(call.path(), Some("study.call"));
                let dpi = reg.span("dpi");
                assert_eq!(dpi.path(), Some("study.call.dpi"));
            }
            // Siblings after a closed subtree nest under the same parent.
            let agg = reg.span("aggregate");
            assert_eq!(agg.path(), Some("study.aggregate"));
        }
        let snap = reg.snapshot();
        for path in ["study", "study.call", "study.call.dpi", "study.aggregate"] {
            match snap.get(SPAN_METRIC, &[("span", path)]) {
                Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 1, "{path}"),
                other => panic!("missing span series {path}: {other:?}"),
            }
        }
    }

    #[test]
    fn sibling_threads_do_not_share_paths() {
        let reg = MetricsRegistry::new();
        let outer = reg.span("outer");
        let inner_path = std::thread::scope(|s| {
            let reg = reg.clone();
            s.spawn(move || {
                let span = reg.span("worker");
                span.path().map(String::from)
            })
            .join()
            .unwrap()
        });
        // The worker thread has its own empty stack: no "outer." prefix.
        assert_eq!(inner_path.as_deref(), Some("worker"));
        drop(outer);
    }

    #[test]
    fn disabled_registry_spans_are_inert() {
        let reg = MetricsRegistry::disabled();
        {
            let span = reg.span("study");
            assert_eq!(span.path(), None);
        }
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn out_of_order_drop_does_not_corrupt_the_stack() {
        let reg = MetricsRegistry::new();
        let a = reg.span("a");
        let b = reg.span("b");
        drop(a); // drop the parent first, on purpose
        let c = reg.span("c");
        // b is still the innermost live span on the stack.
        assert_eq!(c.path(), Some("a.b.c"));
        drop(c);
        drop(b);
        SPAN_PATHS.with(|stack| assert!(stack.borrow().is_empty()));
    }
}
