//! Deterministic pseudo-randomness for the emulator.
//!
//! Every trace byte must be reproducible from the experiment seed, so the
//! emulator carries its own tiny SplitMix64-based generator instead of
//! depending on `rand`'s version-dependent stream definitions. SplitMix64 is
//! statistically strong enough for workload synthesis, trivially seedable,
//! and cheap to fork into independent labeled streams.

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> DetRng {
        DetRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // the workload-synthesis bounds used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// A roughly normal sample (Irwin–Hall of 4) with the given mean and
    /// standard deviation — good enough for latency jitter.
    pub fn gaussish(&mut self, mean: f64, std_dev: f64) -> f64 {
        let s: f64 = (0..4).map(|_| self.unit()).sum::<f64>() - 2.0;
        mean + s * std_dev / (4.0f64 / 12.0).sqrt()
    }

    /// Fill `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A vector of `n` random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill(&mut v);
        v
    }

    /// A vector of random bytes whose length is uniform in `[lo, hi)`.
    pub fn bytes_range(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        let n = self.range(lo as u64, hi as u64) as usize;
        self.bytes(n)
    }

    /// A 12-byte STUN transaction ID.
    pub fn txid(&mut self) -> [u8; 12] {
        let mut t = [0u8; 12];
        self.fill(&mut t);
        t
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Derive an independent generator for the given label. Forks with
    /// different labels (or from generators in different states) produce
    /// unrelated streams.
    pub fn fork(&mut self, label: &str) -> DetRng {
        let mut h = self.next_u64();
        for b in label.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        DetRng::new(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DetRng::new(9);
        for _ in 0..500 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn unit_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..500 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = DetRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gaussish_centers_on_mean() {
        let mut r = DetRng::new(13);
        let mean: f64 = (0..10_000).map(|_| r.gaussish(50.0, 10.0)).sum::<f64>() / 10_000.0;
        assert!((48.0..52.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn fill_covers_all_lengths() {
        let mut r = DetRng::new(17);
        for n in 0..40 {
            let v = r.bytes(n);
            assert_eq!(v.len(), n);
        }
        // Not all zero for a nontrivial length.
        assert!(r.bytes(16).iter().any(|&b| b != 0));
    }

    #[test]
    fn forks_are_independent_by_label() {
        let mut base1 = DetRng::new(21);
        let mut base2 = DetRng::new(21);
        let mut f1 = base1.fork("alpha");
        let mut f2 = base2.fork("beta");
        assert_ne!(
            (0..8).map(|_| f1.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| f2.next_u64()).collect::<Vec<_>>()
        );
        // Same label from the same state reproduces.
        let mut base3 = DetRng::new(21);
        let mut f3 = base3.fork("alpha");
        let mut base4 = DetRng::new(21);
        let mut f4 = base4.fork("alpha");
        assert_eq!(f3.next_u64(), f4.next_u64());
    }

    #[test]
    fn pick_is_in_slice() {
        let mut r = DetRng::new(23);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
