//! Network configurations and path models (paper §3.1.1).
//!
//! The experiments span three configurations: Wi-Fi with UDP hole punching
//! allowed (P2P feasible), Wi-Fi with hole punching blocked at the router
//! (relay forced), and 4G cellular where the transmission mode is decided by
//! each application's logic. Path profiles model the timing texture each
//! configuration stamps onto the traffic.

use crate::rng::DetRng;

/// The three experiment network configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NetworkConfig {
    /// Wi-Fi behind the lab router, UDP hole punching permitted.
    WifiP2p,
    /// Wi-Fi behind the lab router, UDP hole punching blocked.
    WifiRelay,
    /// 4G cellular; mode is application-determined.
    Cellular,
}

impl NetworkConfig {
    /// All three configurations, in the paper's order.
    pub const ALL: [NetworkConfig; 3] = [NetworkConfig::WifiP2p, NetworkConfig::WifiRelay, NetworkConfig::Cellular];

    /// Whether the router permits direct UDP flows between the peers.
    ///
    /// On cellular this returns `true` in the sense that the *network* does
    /// not forbid P2P; whether a call actually uses P2P is up to the
    /// application (see the per-app mode matrix in `rtc-apps`).
    pub fn hole_punching_possible(self) -> bool {
        !matches!(self, NetworkConfig::WifiRelay)
    }

    /// Short label used in report output.
    pub fn label(self) -> &'static str {
        match self {
            NetworkConfig::WifiP2p => "wifi-p2p",
            NetworkConfig::WifiRelay => "wifi-relay",
            NetworkConfig::Cellular => "cellular",
        }
    }

    /// Parse a label produced by [`NetworkConfig::label`].
    pub fn from_label(label: &str) -> Option<NetworkConfig> {
        NetworkConfig::ALL.into_iter().find(|c| c.label() == label)
    }

    /// The path profile of this configuration.
    pub fn path_profile(self) -> PathProfile {
        match self {
            // 400/100 Mbps home Wi-Fi: low latency, low jitter.
            NetworkConfig::WifiP2p => PathProfile { base_latency_us: 12_000, jitter_us: 2_000, loss: 0.001 },
            // Same LAN, but hairpinning through a relay adds latency.
            NetworkConfig::WifiRelay => PathProfile { base_latency_us: 28_000, jitter_us: 4_000, loss: 0.002 },
            // 4G: higher latency and jitter, more loss.
            NetworkConfig::Cellular => PathProfile { base_latency_us: 55_000, jitter_us: 12_000, loss: 0.008 },
        }
    }
}

impl core::fmt::Display for NetworkConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// How media actually flows between the two peers (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransmissionMode {
    /// Direct device-to-device path.
    P2p,
    /// Media hairpins through the application's relay / SFU infrastructure.
    Relay,
}

impl TransmissionMode {
    /// Short label used in report output.
    pub fn label(self) -> &'static str {
        match self {
            TransmissionMode::P2p => "p2p",
            TransmissionMode::Relay => "relay",
        }
    }
}

/// One-way path timing/loss characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathProfile {
    /// Median one-way latency, microseconds.
    pub base_latency_us: u64,
    /// Jitter standard deviation, microseconds.
    pub jitter_us: u64,
    /// Independent per-packet loss probability.
    pub loss: f64,
}

impl PathProfile {
    /// Sample a one-way delay for one packet.
    pub fn sample_delay_us(&self, rng: &mut DetRng) -> u64 {
        let d = rng.gaussish(self.base_latency_us as f64, self.jitter_us as f64);
        d.max(200.0) as u64
    }

    /// Decide whether one packet is lost in transit.
    pub fn sample_loss(&self, rng: &mut DetRng) -> bool {
        rng.chance(self.loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hole_punching_matrix() {
        assert!(NetworkConfig::WifiP2p.hole_punching_possible());
        assert!(!NetworkConfig::WifiRelay.hole_punching_possible());
        assert!(NetworkConfig::Cellular.hole_punching_possible());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = NetworkConfig::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn cellular_is_slowest() {
        let w = NetworkConfig::WifiP2p.path_profile();
        let c = NetworkConfig::Cellular.path_profile();
        assert!(c.base_latency_us > w.base_latency_us);
        assert!(c.loss > w.loss);
    }

    #[test]
    fn delay_samples_are_positive_and_centered() {
        let mut rng = DetRng::new(1);
        let p = NetworkConfig::WifiP2p.path_profile();
        let n = 5_000;
        let mean: f64 = (0..n).map(|_| p.sample_delay_us(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - p.base_latency_us as f64).abs() < 1_000.0, "mean = {mean}");
    }

    #[test]
    fn loss_rate_is_calibrated() {
        let mut rng = DetRng::new(2);
        let p = NetworkConfig::Cellular.path_profile();
        let lost = (0..100_000).filter(|_| p.sample_loss(&mut rng)).count();
        let rate = lost as f64 / 100_000.0;
        assert!((rate - p.loss).abs() < 0.002, "rate = {rate}");
    }
}
