//! # rtc-netemu
//!
//! The deterministic network-emulation substrate under the call experiments.
//!
//! The paper runs real 1-on-1 calls between two iPhones over Wi-Fi (an
//! OpenWRT router with controllable UDP hole punching) and Verizon 4G, and
//! captures the packets with Wireshark. This crate replaces the physical
//! setup with a reproducible model:
//!
//! * [`rng::DetRng`] — a seeded SplitMix64 generator; every byte of every
//!   synthesized trace derives from the experiment seed, so experiments are
//!   exactly reproducible,
//! * [`net`] — the three network configurations of §3.1.1 (Wi-Fi with P2P
//!   enabled, Wi-Fi with P2P blocked, cellular) with per-path latency,
//!   jitter and loss,
//! * [`addr`] — device and infrastructure address allocation (private LAN
//!   ranges, carrier-grade NAT, public server pools per application),
//! * [`sink::TrafficSink`] — the capture vantage point: collects emulated
//!   packets from both devices, applies path effects, and renders a
//!   time-ordered pcap [`rtc_pcap::Trace`] exactly like the merged
//!   two-device Wireshark capture the paper works from.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod fleet;
pub mod net;
pub mod rng;
pub mod sink;

pub use addr::AddressAllocator;
pub use fleet::{FleetPlan, FleetSpec, ScheduledCall};
pub use net::{NetworkConfig, PathProfile, TransmissionMode};
pub use rng::DetRng;
pub use sink::TrafficSink;
