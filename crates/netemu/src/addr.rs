//! Address allocation for devices, application infrastructure and
//! background services.
//!
//! The layout mirrors the paper's setup (§3.1.1): two phones behind a lab
//! Wi-Fi router (private 192.168.1.0/24 LAN, one WAN address) or on Verizon
//! 4G (publicly routed carrier addresses). Application server pools live in
//! deterministic, app-specific public prefixes so that traces are
//! reproducible and streams are attributable during debugging.

use crate::rng::DetRng;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

/// The lab router's WAN (public) address.
pub const ROUTER_WAN_IP: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

/// Allocates device, server and ephemeral-port addresses.
#[derive(Debug, Clone)]
pub struct AddressAllocator {
    rng: DetRng,
    next_ephemeral: u16,
}

impl AddressAllocator {
    /// Create an allocator from a forked RNG.
    pub fn new(rng: DetRng) -> AddressAllocator {
        AddressAllocator::with_port_base(rng, 49_160)
    }

    /// Create an allocator whose ephemeral ports start at `base` — distinct
    /// subsystems (media, STUN, signaling, background noise) draw from
    /// disjoint port blocks so their streams can never alias in the
    /// filtering pipeline's 3-tuple analysis, just as distinct sockets on a
    /// real device hold distinct ports.
    pub fn with_port_base(rng: DetRng, base: u16) -> AddressAllocator {
        AddressAllocator { rng, next_ephemeral: base.max(49_160) }
    }

    /// LAN address of device `idx` (0 = caller, 1 = callee) on the lab Wi-Fi.
    pub fn lan_device(&self, idx: usize) -> IpAddr {
        Ipv4Addr::new(192, 168, 1, 101 + idx as u8).into()
    }

    /// Carrier address of device `idx` on cellular (publicly routed, as with
    /// the paper's Verizon setup).
    pub fn cellular_device(&self, idx: usize) -> IpAddr {
        Ipv4Addr::new(174, 192, 14, 21 + idx as u8).into()
    }

    /// The public address the router maps LAN flows to.
    pub fn router_wan(&self) -> IpAddr {
        ROUTER_WAN_IP.into()
    }

    /// An IPv6 link-local address for LAN management noise.
    pub fn link_local_v6(&mut self, idx: usize) -> IpAddr {
        Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 0x100 + idx as u16).into()
    }

    /// A fresh ephemeral source port (49152–65535, monotonic with a small
    /// random stride, wrapping safely).
    pub fn ephemeral_port(&mut self) -> u16 {
        let port = self.next_ephemeral;
        let stride = 1 + self.rng.below(7) as u16;
        self.next_ephemeral = if port > 65_500 { 49_160 } else { port + stride };
        port
    }

    /// A sub-allocator drawing from port block `block` (each block spans
    /// 1500 ports above the 49160 floor).
    pub fn port_block(&self, block: u8) -> AddressAllocator {
        AddressAllocator::with_port_base(self.rng.clone(), 49_160 + block as u16 * 1_500)
    }

    /// A deterministic public server address for `app`'s `service` pool.
    ///
    /// The same `(app, service, index)` triple always yields the same
    /// address; distinct triples map into distinct /24-sized pools carved
    /// from documentation/test prefixes so they can never collide with
    /// device or LAN addresses.
    pub fn app_server(&self, app: &str, service: &str, index: usize) -> SocketAddr {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in app.bytes().chain(service.bytes()) {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        // Spread across several public-looking /16s.
        let blocks: [(u8, u8); 4] = [(203, 0), (198, 51), (20, 120), (52, 30)];
        let (a, b) = blocks[(h % 4) as usize];
        let c = ((h >> 8) % 200) as u8 + 8;
        let d = 10 + (index as u8 % 200);
        let port = match service {
            "stun" => 3478,
            "turn" | "relay" => 3478 + (index as u16 % 4) * 1000,
            "sfu" => 8801,
            "quic" => 443,
            "signaling" => 443,
            _ => 4000 + (h % 2000) as u16,
        };
        SocketAddr::new(Ipv4Addr::new(a, b, c, d).into(), port)
    }

    /// A deterministic background-service address (push, trackers, OS
    /// updates…), distinct from app pools.
    pub fn background_server(&self, service: &str, index: usize) -> SocketAddr {
        let mut h: u64 = 0x8422_2325_cbf2_9ce4;
        for b in service.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        let c = (h % 250) as u8;
        let d = 1 + (index as u8 % 250);
        let port = match service {
            "dns" => 53,
            "ntp" => 123,
            _ => 443,
        };
        SocketAddr::new(Ipv4Addr::new(17, 57, c, d).into(), port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtc_wire::ip::is_local_scope;

    fn alloc() -> AddressAllocator {
        AddressAllocator::new(DetRng::new(99))
    }

    #[test]
    fn lan_devices_are_private_and_distinct() {
        let a = alloc();
        assert!(is_local_scope(a.lan_device(0)));
        assert!(is_local_scope(a.lan_device(1)));
        assert_ne!(a.lan_device(0), a.lan_device(1));
    }

    #[test]
    fn cellular_devices_are_public() {
        let a = alloc();
        assert!(!is_local_scope(a.cellular_device(0)));
        assert_ne!(a.cellular_device(0), a.cellular_device(1));
    }

    #[test]
    fn ephemeral_ports_are_high_and_mostly_unique() {
        let mut a = alloc();
        let ports: Vec<u16> = (0..1000).map(|_| a.ephemeral_port()).collect();
        assert!(ports.iter().all(|&p| p >= 49_152));
        let unique: std::collections::HashSet<_> = ports.iter().collect();
        assert!(unique.len() > 900);
    }

    #[test]
    fn app_servers_are_deterministic_and_public() {
        let a = alloc();
        let s1 = a.app_server("zoom", "sfu", 0);
        let s2 = a.app_server("zoom", "sfu", 0);
        assert_eq!(s1, s2);
        assert!(!is_local_scope(s1.ip()));
        assert_ne!(a.app_server("zoom", "sfu", 0), a.app_server("discord", "sfu", 0));
        assert_ne!(a.app_server("zoom", "sfu", 0), a.app_server("zoom", "stun", 0));
    }

    #[test]
    fn stun_servers_use_the_stun_port() {
        let a = alloc();
        assert_eq!(a.app_server("whatsapp", "stun", 2).port(), 3478);
    }

    #[test]
    fn background_servers_distinct_from_app_pools() {
        let a = alloc();
        let bg = a.background_server("apns", 0);
        assert!(!is_local_scope(bg.ip()));
        assert_eq!(a.background_server("dns", 0).port(), 53);
    }

    #[test]
    fn link_local_is_local_scope() {
        let mut a = alloc();
        assert!(is_local_scope(a.link_local_v6(0)));
    }
}
