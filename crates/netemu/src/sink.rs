//! The capture vantage point.
//!
//! Application models emit `(timestamp, five-tuple, payload)` events; the
//! sink applies path effects (loss for lossy media pushes, sampled delays
//! for request/response scheduling) and renders everything into a
//! time-ordered Ethernet [`Trace`], exactly what the paper's merged
//! two-device Wireshark capture provides to the analysis pipeline.
//!
//! Modeling note: each packet is captured **once** (at its sending hop).
//! The paper captures at both devices, so a P2P packet can be seen twice
//! there; that uniform factor scales absolute counts, never the compliance
//! *ratios* the study reports.

use crate::net::PathProfile;
use crate::rng::DetRng;
use rtc_pcap::{LinkType, Record, Timestamp, Trace};
use rtc_wire::ip::{build_ethernet_packet, FiveTuple};
use std::collections::HashMap;

/// Collects emulated packets and renders a pcap trace.
#[derive(Debug)]
pub struct TrafficSink {
    profile: PathProfile,
    rng: DetRng,
    events: Vec<(Timestamp, FiveTuple, Vec<u8>)>,
    tcp_seq: HashMap<FiveTuple, u32>,
    dropped: u64,
}

impl TrafficSink {
    /// Create a sink for one call experiment.
    pub fn new(profile: PathProfile, rng: DetRng) -> TrafficSink {
        TrafficSink { profile, rng, events: Vec::new(), tcp_seq: HashMap::new(), dropped: 0 }
    }

    /// Capture a packet unconditionally (control traffic, keepalives —
    /// anything whose count the emulation must preserve exactly).
    pub fn push(&mut self, ts: Timestamp, tuple: FiveTuple, payload: Vec<u8>) {
        self.events.push((ts, tuple, payload));
    }

    /// Capture a packet subject to the path's loss process (bulk media).
    /// Returns `false` if the packet was dropped.
    pub fn push_lossy(&mut self, ts: Timestamp, tuple: FiveTuple, payload: Vec<u8>) -> bool {
        if self.profile.sample_loss(&mut self.rng) {
            self.dropped += 1;
            false
        } else {
            self.push(ts, tuple, payload);
            true
        }
    }

    /// Sample a one-way path delay, for scheduling responses.
    pub fn one_way_us(&mut self) -> u64 {
        self.profile.sample_delay_us(&mut self.rng)
    }

    /// Sample a round-trip delay.
    pub fn rtt_us(&mut self) -> u64 {
        self.one_way_us() + self.one_way_us()
    }

    /// Packets dropped by the loss process so far.
    pub fn dropped(&mut self) -> u64 {
        self.dropped
    }

    /// Number of captured events so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the capture: sort by time and frame every event.
    pub fn finish(mut self) -> Trace {
        self.events.sort_by_key(|(ts, tuple, _)| (*ts, *tuple));
        let mut trace = Trace { link_type: LinkType::Ethernet, records: Vec::with_capacity(self.events.len()) };
        for (ts, tuple, payload) in self.events {
            let seq = self.tcp_seq.entry(tuple).or_insert(1);
            let frame = build_ethernet_packet(&tuple, &payload, *seq);
            *seq = seq.wrapping_add(payload.len().max(1) as u32);
            trace.records.push(Record { ts, data: frame.into() });
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkConfig;

    fn sink() -> TrafficSink {
        TrafficSink::new(NetworkConfig::WifiP2p.path_profile(), DetRng::new(4))
    }

    fn tuple(port: u16) -> FiveTuple {
        FiveTuple::udp(format!("192.168.1.101:{port}").parse().unwrap(), "203.0.113.50:3478".parse().unwrap())
    }

    #[test]
    fn finish_orders_by_time() {
        let mut s = sink();
        s.push(Timestamp::from_millis(30), tuple(1000), vec![3]);
        s.push(Timestamp::from_millis(10), tuple(1001), vec![1]);
        s.push(Timestamp::from_millis(20), tuple(1002), vec![2]);
        let trace = s.finish();
        let ts: Vec<u64> = trace.records.iter().map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn datagrams_survive_roundtrip() {
        let mut s = sink();
        s.push(Timestamp::from_millis(1), tuple(2000), b"abc".to_vec());
        let trace = s.finish();
        let d = trace.datagrams();
        assert_eq!(d.len(), 1);
        assert_eq!(&d[0].payload[..], b"abc");
        assert_eq!(d[0].five_tuple, tuple(2000));
    }

    #[test]
    fn lossy_pushes_drop_some_packets() {
        let mut s = TrafficSink::new(PathProfile { base_latency_us: 1000, jitter_us: 10, loss: 0.2 }, DetRng::new(8));
        let mut kept = 0;
        for i in 0..2000 {
            if s.push_lossy(Timestamp::from_millis(i), tuple(3000), vec![0]) {
                kept += 1;
            }
        }
        assert!(kept < 2000);
        assert!(s.dropped() > 200);
        assert_eq!(s.len(), kept);
    }

    #[test]
    fn unconditional_push_never_drops() {
        let mut s = TrafficSink::new(PathProfile { base_latency_us: 1000, jitter_us: 10, loss: 1.0 }, DetRng::new(8));
        for i in 0..100 {
            s.push(Timestamp::from_millis(i), tuple(4000), vec![0]);
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn rtt_exceeds_one_way() {
        let mut s = sink();
        let ow = s.one_way_us();
        assert!(ow > 0);
        assert!(s.rtt_us() > 0);
    }

    #[test]
    fn tcp_segments_roundtrip() {
        let mut s = sink();
        let t = FiveTuple::tcp("192.168.1.101:52000".parse().unwrap(), "17.57.8.1:443".parse().unwrap());
        s.push(Timestamp::from_millis(1), t, b"tls-bytes".to_vec());
        let trace = s.finish();
        let d = trace.datagrams();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].five_tuple, t);
        assert_eq!(&d[0].payload[..], b"tls-bytes");
    }
}
