//! Synthetic fleet planning: hundreds–thousands of emulated calls with
//! staggered starts, spread across tenants, for driving the live-analysis
//! service.
//!
//! This module is pure scheduling — *which* call starts *when*, owned by
//! *which* tenant — and deliberately knows nothing about trace synthesis
//! or ingestion. The service layer materializes each [`ScheduledCall`]
//! into traffic (via `rtc-capture`) only while the call is live, which is
//! what keeps fleet-driver residency bounded by concurrency rather than
//! fleet size.
//!
//! Plans are fully deterministic from [`FleetSpec`]: the same spec always
//! yields the same calls with the same seeds and the same start offsets,
//! so a live fleet run can be replayed offline call by call.

use crate::rng::DetRng;
use crate::NetworkConfig;

/// Parameters of a synthetic call fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Total calls in the fleet.
    pub calls: usize,
    /// Number of tenants the calls are spread over (round-robin).
    pub tenants: usize,
    /// Application slugs to cycle through (e.g. `rtc_apps` slugs). Must be
    /// non-empty; the planner validates nothing app-specific.
    pub apps: Vec<String>,
    /// Network labels to cycle through; defaults to all of
    /// [`NetworkConfig::ALL`] when empty.
    pub networks: Vec<String>,
    /// Schedule seed. Also the root of every per-call trace seed.
    pub seed: u64,
    /// Mean inter-arrival gap between call starts, microseconds.
    pub mean_gap_us: u64,
    /// Nominal call duration used for overlap accounting, microseconds.
    pub call_duration_us: u64,
    /// Cap on concurrently-live calls; starts are pushed back to respect
    /// it. `0` means unlimited.
    pub max_concurrent: usize,
}

impl FleetSpec {
    /// A small-but-representative default: `calls` calls over `tenants`
    /// tenants, ~50 ms apart, 2 s nominal duration, at most 32 live.
    pub fn new(calls: usize, tenants: usize, apps: Vec<String>, seed: u64) -> FleetSpec {
        FleetSpec {
            calls,
            tenants,
            apps,
            networks: Vec::new(),
            seed,
            mean_gap_us: 50_000,
            call_duration_us: 2_000_000,
            max_concurrent: 32,
        }
    }
}

/// One planned call: identity, workload parameters, and schedule slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCall {
    /// Owning tenant (`"tenant-3"`).
    pub tenant: String,
    /// Fleet-unique call id (`"tenant-3/call-00017"`), usable as a session key.
    pub call_id: String,
    /// Application slug for trace synthesis.
    pub app_slug: String,
    /// Network configuration label.
    pub network_label: String,
    /// Repeat index; unique per `(tenant, app, network)` so per-tenant
    /// reports have distinct call identities.
    pub repeat: usize,
    /// Per-call trace seed, derived from the fleet seed.
    pub seed: u64,
    /// Scheduled start, microseconds from fleet start.
    pub start_offset_us: u64,
}

/// A materialized, time-sorted fleet schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// The spec this plan was derived from.
    pub spec: FleetSpec,
    /// Calls in start order (ties broken by call id).
    pub calls: Vec<ScheduledCall>,
}

impl FleetPlan {
    /// Plan a fleet from its spec. Deterministic: equal specs yield equal
    /// plans.
    ///
    /// # Panics
    /// If `spec.apps` is empty or `spec.tenants == 0` with calls planned.
    pub fn build(spec: FleetSpec) -> FleetPlan {
        assert!(spec.calls == 0 || !spec.apps.is_empty(), "fleet needs app slugs");
        assert!(spec.calls == 0 || spec.tenants > 0, "fleet needs at least one tenant");
        let networks: Vec<String> = if spec.networks.is_empty() {
            NetworkConfig::ALL.iter().map(|n| n.label().to_string()).collect()
        } else {
            spec.networks.clone()
        };
        let mut rng = DetRng::new(spec.seed).fork("fleet-schedule");
        // Per-tenant (app, network) cycle position → repeat counters, so
        // every (tenant, app, network, repeat) identity is unique.
        let cells = spec.apps.len() * networks.len();
        let mut next_cell = vec![0usize; spec.tenants.max(1)];
        let mut clock_us = 0u64;
        // Min-heap of scheduled end times enforcing max_concurrent.
        let mut live_ends = std::collections::BinaryHeap::new();
        let mut calls = Vec::with_capacity(spec.calls);
        for index in 0..spec.calls {
            let tenant_idx = index % spec.tenants;
            let cell = next_cell[tenant_idx];
            next_cell[tenant_idx] += 1;
            let app_slug = spec.apps[(cell % cells) % spec.apps.len()].clone();
            let network_label = networks[(cell % cells) / spec.apps.len()].clone();
            let repeat = cell / cells;
            // Uniform gap in [0, 2·mean] keeps the schedule staggered but
            // bounded; mean 0 degenerates to simultaneous starts.
            if spec.mean_gap_us > 0 {
                clock_us += rng.below(2 * spec.mean_gap_us + 1);
            }
            if spec.max_concurrent > 0 {
                while live_ends.len() >= spec.max_concurrent {
                    let std::cmp::Reverse(earliest_end) = live_ends.pop().expect("non-empty heap");
                    clock_us = clock_us.max(earliest_end);
                }
                live_ends.push(std::cmp::Reverse(clock_us + spec.call_duration_us));
            }
            calls.push(ScheduledCall {
                tenant: format!("tenant-{tenant_idx}"),
                call_id: format!("tenant-{tenant_idx}/call-{index:05}"),
                app_slug,
                network_label,
                repeat,
                seed: DetRng::new(spec.seed).fork(&format!("call-{index}")).next_u64(),
                start_offset_us: clock_us,
            });
        }
        calls.sort_by(|a, b| (a.start_offset_us, &a.call_id).cmp(&(b.start_offset_us, &b.call_id)));
        FleetPlan { spec, calls }
    }

    /// Tenant names present in the plan, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut t: Vec<String> = self.calls.iter().map(|c| c.tenant.clone()).collect();
        t.sort();
        t.dedup();
        t
    }

    /// The highest number of calls live at once under the plan's nominal
    /// call duration (starts inclusive, ends exclusive).
    pub fn peak_concurrency(&self) -> usize {
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(self.calls.len() * 2);
        for c in &self.calls {
            events.push((c.start_offset_us, 1));
            events.push((c.start_offset_us + self.spec.call_duration_us, -1));
        }
        events.sort();
        let mut live = 0i64;
        let mut peak = 0i64;
        for (_, delta) in events {
            live += delta;
            peak = peak.max(live);
        }
        peak as usize
    }
}

/// Round-robin shard membership: of `total` planned items, the indices
/// owned by `shard` out of `shards` (item `i` belongs to shard
/// `i % shards`).
///
/// Interleaved assignment — rather than contiguous ranges — keeps every
/// shard's workload a representative cross-section of the experiment
/// matrix (the matrix enumerates repeats innermost, so contiguous ranges
/// would give one shard all of one application's calls). Both the fleet
/// driver's tenant spread above and the corpus planner's shard partition
/// use this scheme, so "which worker owns call N" has one answer
/// everywhere.
///
/// # Panics
/// If `shards == 0` or `shard >= shards`.
pub fn shard_members(total: usize, shards: usize, shard: usize) -> impl Iterator<Item = usize> {
    assert!(shards > 0, "at least one shard");
    assert!(shard < shards, "shard index {shard} out of range 0..{shards}");
    (shard..total).step_by(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(calls: usize, tenants: usize, max_concurrent: usize) -> FleetSpec {
        let mut s = FleetSpec::new(calls, tenants, vec!["zoom".into(), "facetime".into(), "discord".into()], 99);
        s.max_concurrent = max_concurrent;
        s
    }

    #[test]
    fn plan_is_deterministic() {
        let a = FleetPlan::build(spec(250, 4, 16));
        let b = FleetPlan::build(spec(250, 4, 16));
        assert_eq!(a, b);
    }

    #[test]
    fn identities_are_unique_per_tenant() {
        let plan = FleetPlan::build(spec(300, 5, 0));
        let mut seen = std::collections::HashSet::new();
        for c in &plan.calls {
            assert!(
                seen.insert((c.tenant.clone(), c.app_slug.clone(), c.network_label.clone(), c.repeat)),
                "duplicate identity for {}",
                c.call_id
            );
            assert!(NetworkConfig::from_label(&c.network_label).is_some());
        }
        assert_eq!(plan.tenants().len(), 5);
    }

    #[test]
    fn max_concurrent_is_respected() {
        let plan = FleetPlan::build(spec(400, 3, 8));
        assert!(plan.peak_concurrency() <= 8, "peak {}", plan.peak_concurrency());
        // And the cap actually binds for a dense schedule.
        let unbounded = FleetPlan::build(spec(400, 3, 0));
        assert!(unbounded.peak_concurrency() > 8);
    }

    #[test]
    fn starts_are_sorted_and_staggered() {
        let plan = FleetPlan::build(spec(100, 2, 16));
        let offsets: Vec<u64> = plan.calls.iter().map(|c| c.start_offset_us).collect();
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        // Staggering: not all simultaneous.
        assert!(offsets.last().unwrap() > &0);
    }

    #[test]
    fn seeds_differ_between_calls() {
        let plan = FleetPlan::build(spec(50, 1, 0));
        let mut seeds: Vec<u64> = plan.calls.iter().map(|c| c.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), plan.calls.len());
    }

    #[test]
    fn shard_members_partition_exactly() {
        for (total, shards) in [(0, 1), (1, 1), (7, 3), (90, 4), (90, 90), (5, 8)] {
            let mut seen = vec![0usize; total];
            for shard in 0..shards {
                for i in shard_members(total, shards, shard) {
                    assert_eq!(i % shards, shard);
                    seen[i] += 1;
                }
            }
            assert!(seen.iter().all(|n| *n == 1), "every index owned exactly once ({total}/{shards})");
        }
    }

    #[test]
    fn empty_fleet_is_empty() {
        let plan = FleetPlan::build(FleetSpec::new(0, 0, Vec::new(), 1));
        assert!(plan.calls.is_empty());
        assert_eq!(plan.peak_concurrency(), 0);
    }
}
