//! # rtc-capture
//!
//! Experiment orchestration (paper §3.1): runs the call matrix — six
//! applications × three network configurations × N repeats of 5-minute
//! calls with 60-second pre/post capture phases — through the emulated
//! substrate, and produces annotated captures.
//!
//! Each call yields a [`CallCapture`]: the pcap [`Trace`] a Wireshark
//! session would have recorded, plus a [`CallManifest`] standing in for the
//! paper's manually logged metadata (call-initiation timestamps, device
//! addresses) that downstream filtering keys on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rtc_apps::{generate_call_trace, Application, CallScenario};
use rtc_netemu::NetworkConfig;
use rtc_pcap::{Timestamp, Trace};
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Parameters of a full experiment campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Applications to test (paper: all six).
    pub apps: Vec<String>,
    /// Network configurations (paper: all three).
    pub networks: Vec<String>,
    /// Repeats per (app, network) cell (paper: 6, for 90 calls).
    pub repeats: usize,
    /// Call duration in seconds (paper: 300).
    pub call_secs: u64,
    /// Traffic-rate multiplier in (0, 1].
    pub scale: f64,
    /// Campaign seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's full matrix at the given scale.
    pub fn paper_matrix(call_secs: u64, scale: f64, seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            apps: Application::ALL.iter().map(|a| a.slug().to_string()).collect(),
            networks: NetworkConfig::ALL.iter().map(|n| n.label().to_string()).collect(),
            repeats: 6,
            call_secs,
            scale,
            seed,
        }
    }

    /// A small matrix for tests: every app and network, one repeat, short
    /// calls, low rates.
    pub fn smoke(seed: u64) -> ExperimentConfig {
        let mut c = ExperimentConfig::paper_matrix(30, 0.1, seed);
        c.repeats = 1;
        c
    }

    /// Decode the application list.
    pub fn applications(&self) -> Vec<Application> {
        self.apps.iter().filter_map(|s| Application::from_slug(s)).collect()
    }

    /// Decode the network list.
    pub fn network_configs(&self) -> Vec<NetworkConfig> {
        self.networks.iter().filter_map(|s| NetworkConfig::from_label(s)).collect()
    }

    /// Total number of calls the campaign will run.
    pub fn total_calls(&self) -> usize {
        self.applications().len() * self.network_configs().len() * self.repeats
    }
}

/// Ground-truth metadata logged for one call (paper §3.1.2: event
/// timestamps and device addresses recorded manually during capture).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CallManifest {
    /// Application slug.
    pub app: String,
    /// Network configuration label.
    pub network: String,
    /// Repeat index within the (app, network) cell.
    pub repeat: usize,
    /// Seed this call was generated from.
    pub seed: u64,
    /// Capture start, microseconds.
    pub capture_start_us: u64,
    /// Call initiation time, microseconds.
    pub call_start_us: u64,
    /// Call termination time, microseconds.
    pub call_end_us: u64,
    /// Capture end, microseconds.
    pub capture_end_us: u64,
    /// Device addresses (caller, callee).
    pub device_ips: [IpAddr; 2],
}

impl CallManifest {
    /// The application under test.
    pub fn application(&self) -> Application {
        Application::from_slug(&self.app).expect("manifest app slug")
    }

    /// The network configuration.
    pub fn network_config(&self) -> NetworkConfig {
        NetworkConfig::from_label(&self.network).expect("manifest network label")
    }

    /// The call window as timestamps.
    pub fn call_window(&self) -> (Timestamp, Timestamp) {
        (Timestamp::from_micros(self.call_start_us), Timestamp::from_micros(self.call_end_us))
    }
}

/// One captured call: trace + manifest.
#[derive(Debug, Clone)]
pub struct CallCapture {
    /// Ground-truth metadata.
    pub manifest: CallManifest,
    /// The merged two-device capture.
    pub trace: Trace,
}

/// Build the scenario for one cell of the matrix.
pub fn scenario_for(
    config: &ExperimentConfig,
    app: Application,
    network: NetworkConfig,
    repeat: usize,
) -> CallScenario {
    let seed = config
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((repeat as u64) << 32)
        .wrapping_add(app.slug().len() as u64 * 131)
        .wrapping_add(repeat as u64);
    CallScenario::new(app, network, seed ^ (repeat as u64 + 1)).scaled(config.call_secs, config.scale)
}

/// Run a single call and capture it.
pub fn run_call(config: &ExperimentConfig, app: Application, network: NetworkConfig, repeat: usize) -> CallCapture {
    let scenario = scenario_for(config, app, network, repeat);
    synthesize_call(&scenario, repeat)
}

/// Synthesize one call outside the experiment matrix: an explicit
/// scenario plus the repeat index recorded in its manifest. The live
/// service's fleet driver materializes planned calls with this, so a
/// fleet call is reproducible from `(app, network, seed, repeat)` alone.
pub fn synthesize_call(scenario: &CallScenario, repeat: usize) -> CallCapture {
    let trace = generate_call_trace(scenario);
    let manifest = CallManifest {
        app: scenario.app.slug().to_string(),
        network: scenario.network.label().to_string(),
        repeat,
        seed: scenario.seed,
        capture_start_us: scenario.capture_start().as_micros(),
        call_start_us: scenario.call_start.as_micros(),
        call_end_us: scenario.call_end().as_micros(),
        capture_end_us: scenario.capture_end().as_micros(),
        device_ips: scenario.device_ips(),
    };
    CallCapture { manifest, trace }
}

/// Record an idle-phone capture: background activity only, no call
/// (paper §3.1.2 collects 30 minutes of background activities per
/// configuration; §3.2.2 derives the SNI blocklist from 7.5 h of such
/// traffic).
pub fn record_idle(network: NetworkConfig, duration_secs: u64, seed: u64) -> Trace {
    // Reuse the background generators with a nominal "call window" placed
    // mid-capture; no application traffic is generated.
    let scenario = CallScenario {
        app: Application::Zoom, // background noise does not depend on the app
        network,
        call_start: Timestamp::from_secs(duration_secs / 3),
        call_secs: duration_secs / 3,
        pre_secs: duration_secs / 3,
        post_secs: duration_secs - 2 * (duration_secs / 3),
        scale: 1.0,
        seed,
    };
    let mut sink = rtc_netemu::TrafficSink::new(network.path_profile(), scenario.rng().fork("idle-path"));
    rtc_apps::background::generate(&scenario, &mut sink);
    sink.finish()
}

/// Run the full campaign, parallelized across calls with scoped threads.
pub fn run_experiment(config: &ExperimentConfig) -> Vec<CallCapture> {
    let mut cells = Vec::new();
    for app in config.applications() {
        for network in config.network_configs() {
            for repeat in 0..config.repeats {
                cells.push((app, network, repeat));
            }
        }
    }
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(cells.len().max(1));
    let queue = crossbeam::queue::SegQueue::new();
    for (i, c) in cells.iter().enumerate() {
        queue.push((i, *c));
    }
    let mut results: Vec<Option<CallCapture>> = (0..cells.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let queue = &queue;
            handles.push(s.spawn(move || {
                let mut out = Vec::new();
                while let Some((i, (app, network, repeat))) = queue.pop() {
                    out.push((i, run_call(config, app, network, repeat)));
                }
                out
            }));
        }
        for h in handles {
            for (i, cap) in h.join().expect("worker panicked") {
                results[i] = Some(cap);
            }
        }
    });
    results.into_iter().map(|r| r.expect("all cells ran")).collect()
}

/// Persist a campaign to `dir`: one `.pcap` plus one `.json` manifest per
/// call (the released-dataset layout the paper promises).
pub fn save_experiment(dir: impl AsRef<std::path::Path>, captures: &[CallCapture]) -> std::io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    for cap in captures {
        save_call(dir, cap)?;
    }
    Ok(())
}

/// Persist one call into a campaign directory, atomically: the `.pcap`
/// and `.json` are each written to a temporary sibling and renamed into
/// place, so a writer killed mid-save never leaves a torn capture behind.
/// The sharded study runner depends on this — after a crash, every file
/// [`scan_experiment`] discovers is complete, and re-running the call
/// simply replaces it with identical bytes (generation is deterministic).
pub fn save_call(dir: impl AsRef<std::path::Path>, cap: &CallCapture) -> std::io::Result<()> {
    let dir = dir.as_ref();
    let stem = format!("{}_{}_{}", cap.manifest.app, cap.manifest.network, cap.manifest.repeat);
    let pcap_tmp = dir.join(format!("{stem}.pcap.tmp"));
    rtc_pcap::write_file(&pcap_tmp, &cap.trace).map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::rename(&pcap_tmp, dir.join(format!("{stem}.pcap")))?;
    // Manifest second: scan_experiment keys on `.json`, so a call becomes
    // discoverable only once its pcap is already in place.
    let json = serde_json::to_string_pretty(&cap.manifest)?;
    let json_tmp = dir.join(format!("{stem}.json.tmp"));
    std::fs::write(&json_tmp, json)?;
    std::fs::rename(&json_tmp, dir.join(format!("{stem}.json")))?;
    Ok(())
}

/// Scan a campaign directory saved by [`save_experiment`]: parse and
/// validate every `.json` manifest, and return `(pcap path, manifest)`
/// pairs sorted by `(app, network, repeat)`.
///
/// This is the single manifest→capture discovery path shared by the batch
/// loader ([`load_experiment`]), the streaming driver
/// (`rtc_core::StreamingStudy`), and the live service's offline
/// comparison runs — slug validation happens here, where the offending
/// file is known, rather than panicking deep inside the analysis.
pub fn scan_experiment(dir: impl AsRef<std::path::Path>) -> std::io::Result<Vec<(std::path::PathBuf, CallManifest)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir.as_ref())? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let manifest: CallManifest =
            serde_json::from_str(&std::fs::read_to_string(&path)?).map_err(std::io::Error::other)?;
        if Application::from_slug(&manifest.app).is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: unknown application slug {:?}", path.display(), manifest.app),
            ));
        }
        if NetworkConfig::from_label(&manifest.network).is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: unknown network label {:?}", path.display(), manifest.network),
            ));
        }
        out.push((path.with_extension("pcap"), manifest));
    }
    out.sort_by(|a, b| (&a.1.app, &a.1.network, a.1.repeat).cmp(&(&b.1.app, &b.1.network, b.1.repeat)));
    Ok(out)
}

/// Load a campaign saved by [`save_experiment`].
pub fn load_experiment(dir: impl AsRef<std::path::Path>) -> std::io::Result<Vec<CallCapture>> {
    let mut out = Vec::new();
    for (pcap_path, manifest) in scan_experiment(dir)? {
        let trace = rtc_pcap::read_file(&pcap_path).map_err(|e| std::io::Error::other(e.to_string()))?;
        out.push(CallCapture { manifest, trace });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            apps: vec!["zoom".into(), "discord".into()],
            networks: vec!["wifi-p2p".into()],
            repeats: 2,
            call_secs: 15,
            scale: 0.05,
            seed: 9,
        }
    }

    #[test]
    fn config_decoding() {
        let c = ExperimentConfig::paper_matrix(300, 1.0, 1);
        assert_eq!(c.applications().len(), 6);
        assert_eq!(c.network_configs().len(), 3);
        assert_eq!(c.total_calls(), 6 * 3 * 6);
    }

    #[test]
    fn run_call_produces_annotated_trace() {
        let c = tiny_config();
        let cap = run_call(&c, Application::Zoom, NetworkConfig::WifiP2p, 0);
        assert!(!cap.trace.records.is_empty());
        assert_eq!(cap.manifest.app, "zoom");
        let (start, end) = cap.manifest.call_window();
        assert!(end.micros_since(start) == 15_000_000);
        // Records span pre-call through post-call.
        let (first, last) = cap.trace.time_range().unwrap();
        assert!(first < start);
        assert!(last > end);
    }

    #[test]
    fn experiment_runs_all_cells_deterministically() {
        let c = tiny_config();
        let caps1 = run_experiment(&c);
        let caps2 = run_experiment(&c);
        assert_eq!(caps1.len(), 4);
        for (a, b) in caps1.iter().zip(&caps2) {
            assert_eq!(a.manifest, b.manifest);
            assert_eq!(a.trace.records.len(), b.trace.records.len());
        }
        // Different repeats differ.
        assert_ne!(caps1[0].trace.records.len(), caps1[1].trace.records.len());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let c = tiny_config();
        let caps = run_experiment(&c);
        let dir = std::env::temp_dir().join(format!("rtc-capture-test-{}", std::process::id()));
        save_experiment(&dir, &caps).unwrap();
        let loaded = load_experiment(&dir).unwrap();
        assert_eq!(loaded.len(), caps.len());
        for (a, b) in loaded.iter().zip(caps.iter().map(|c| &c.manifest)) {
            // load sorts by (app, network, repeat); compare via lookup.
            let orig = caps.iter().find(|c| c.manifest == a.manifest).unwrap();
            assert_eq!(a.trace.records.len(), orig.trace.records.len());
            let _ = b;
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_unknown_manifest_slugs() {
        let c = tiny_config();
        let cap = run_call(&c, Application::Zoom, NetworkConfig::WifiP2p, 0);
        for (field, value) in [("app", "zoom-web"), ("network", "starlink")] {
            let dir = std::env::temp_dir().join(format!("rtc-capture-slug-{}-{field}", std::process::id()));
            let mut bad = cap.clone();
            match field {
                "app" => bad.manifest.app = value.into(),
                _ => bad.manifest.network = value.into(),
            }
            save_experiment(&dir, &[bad]).unwrap();
            let err = load_experiment(&dir).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
            assert!(err.to_string().contains(value), "{err}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
