//! Umbrella library for the `rtc-suite` workspace package.
//!
//! The real functionality lives in the `crates/` members; this package only
//! hosts workspace-level integration tests (`tests/`) and runnable examples
//! (`examples/`).
